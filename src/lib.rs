//! # cloud-monitors — model-driven cloud security monitors
//!
//! A Rust reproduction of *"Generating Cloud Monitors from Models to
//! Secure Clouds"* (Rauf & Troubitsyna, DSN 2018): UML/OCL design models
//! of a REST cloud API are compiled into runtime **cloud monitors** —
//! contract-checking proxies that validate the functional and security
//! (RBAC) behaviour of a private cloud implementation.
//!
//! This facade crate re-exports the workspace members:
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`ocl`] | `cm-ocl` | the OCL subset (parser, evaluator, types) |
//! | [`model`] | `cm-model` | resource + behavioural UML models |
//! | [`xmi`] | `cm-xmi` | XMI interchange (hand-written XML layer) |
//! | [`rest`] | `cm-rest` | JSON, URIs, routes, abstract REST messages |
//! | [`rbac`] | `cm-rbac` | identity, tokens, policy.json, Table I |
//! | [`cloudsim`] | `cm-cloudsim` | the OpenStack-like private cloud |
//! | [`httpkit`] | `cm-httpkit` | HTTP/1.1 transport |
//! | [`contracts`] | `cm-contracts` | contract generation (Listing 1) |
//! | [`monitor`] | `cm-core` | **the cloud monitor** (Figure 2) |
//! | [`obs`] | `cm-obs` | observability: events, metrics, histograms |
//! | [`codegen`] | `cm-codegen` | `uml2django` code generation |
//! | [`mutation`] | `cm-mutation` | the Section VI-D mutation experiment |
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use cm_cloudsim as cloudsim;
pub use cm_codegen as codegen;
pub use cm_contracts as contracts;
pub use cm_core as monitor;
pub use cm_httpkit as httpkit;
pub use cm_model as model;
pub use cm_mutation as mutation;
pub use cm_obs as obs;
pub use cm_ocl as ocl;
pub use cm_rbac as rbac;
pub use cm_rest as rest;
pub use cm_xmi as xmi;
