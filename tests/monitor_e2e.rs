//! Cross-crate end-to-end tests of the monitor, including the full
//! network deployment (HTTP client → monitor proxy over TCP → cloud over
//! TCP) and the mutation experiment through the public API.

use cm_cloudsim::{Fault, FaultPlan, PrivateCloud};
use cm_core::{cinder_monitor, CloudMonitor, Mode, TestOracle, Verdict};
use cm_httpkit::{send, HttpServer, RemoteService};
use cm_model::{cinder, HttpMethod};
use cm_mutation::{paper_mutants, run_campaign};
use cm_rest::{Json, RestRequest, SharedRestService, StatusCode};
use std::sync::Arc;

fn volume_body(name: &str) -> Json {
    Json::object(vec![(
        "volume",
        Json::object(vec![
            ("name", Json::Str(name.into())),
            ("size", Json::Int(1)),
        ]),
    )])
}

#[test]
fn paper_experiment_all_three_mutants_killed() {
    let result = run_campaign(&paper_mutants());
    assert_eq!(result.killed(), 3, "{result}");
}

#[test]
fn oracle_is_clean_on_correct_cloud_and_detects_composite_faults() {
    let clean = TestOracle.run(PrivateCloud::my_project);
    assert!(!clean.killed(), "{clean}");

    // A composite mutant: two simultaneous faults.
    let plan = FaultPlan::none()
        .with(Fault::IgnoreQuota)
        .with(Fault::SkipAuthCheck {
            action: "volume:delete".into(),
        });
    let composite = TestOracle.run(move || PrivateCloud::my_project().with_faults(plan.clone()));
    assert!(composite.killed(), "{composite}");
    // Both faults are visible through different scenarios.
    let names: Vec<&str> = composite
        .violations()
        .iter()
        .map(|s| s.name.as_str())
        .collect();
    assert!(names.iter().any(|n| n.contains("full quota")), "{names:?}");
    assert!(
        names.iter().any(|n| n.contains("DELETE volume as")),
        "{names:?}"
    );
}

#[test]
fn monitored_network_deployment_end_to_end() {
    // Cloud behind HTTP.
    let cloud = Arc::new(PrivateCloud::my_project());
    let pid = cloud.project_id();
    let cloud_handle = Arc::clone(&cloud);
    let cloud_server =
        HttpServer::bind("127.0.0.1:0", Arc::new(move |req| cloud_handle.call(&req)))
            .expect("bind cloud");

    // Monitor wrapping the cloud over TCP, itself behind HTTP.
    let mut monitor = CloudMonitor::generate(
        &cinder::resource_model(),
        &cinder::behavioral_model(),
        None,
        RemoteService::new(cloud_server.local_addr()),
    )
    .expect("generates")
    .mode(Mode::Enforce);
    monitor
        .authenticate("alice", "alice-pw")
        .expect("admin credentials over TCP");
    let monitor = Arc::new(monitor);
    let monitor_handle = Arc::clone(&monitor);
    let monitor_server = HttpServer::bind(
        "127.0.0.1:0",
        Arc::new(move |req| monitor_handle.call(&req)),
    )
    .expect("bind monitor");
    let cm = monitor_server.local_addr();

    // Authenticate through the proxy.
    let auth = send(
        cm,
        &RestRequest::new(HttpMethod::Post, "/identity/auth/tokens").json(Json::object(vec![(
            "auth",
            Json::object(vec![
                ("user", Json::Str("alice".into())),
                ("password", Json::Str("alice-pw".into())),
            ]),
        )])),
    )
    .expect("auth over TCP");
    assert_eq!(auth.status, StatusCode::CREATED);
    let token = auth
        .body
        .unwrap()
        .get("token")
        .unwrap()
        .get("id")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();

    // Create + delete through the full network path.
    let created = send(
        cm,
        &RestRequest::new(HttpMethod::Post, format!("/v3/{pid}/volumes"))
            .auth_token(&token)
            .json(volume_body("net")),
    )
    .expect("create over TCP");
    assert_eq!(created.status, StatusCode::CREATED);

    let carol_auth = send(
        cm,
        &RestRequest::new(HttpMethod::Post, "/identity/auth/tokens").json(Json::object(vec![(
            "auth",
            Json::object(vec![
                ("user", Json::Str("carol".into())),
                ("password", Json::Str("carol-pw".into())),
            ]),
        )])),
    )
    .expect("carol auth");
    let carol = carol_auth
        .body
        .unwrap()
        .get("token")
        .unwrap()
        .get("id")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    let denied = send(
        cm,
        &RestRequest::new(HttpMethod::Delete, format!("/v3/{pid}/volumes/1")).auth_token(&carol),
    )
    .expect("denied over TCP");
    assert_eq!(denied.status, StatusCode::PRECONDITION_FAILED);

    let deleted = send(
        cm,
        &RestRequest::new(HttpMethod::Delete, format!("/v3/{pid}/volumes/1")).auth_token(&token),
    )
    .expect("delete over TCP");
    assert_eq!(deleted.status, StatusCode::NO_CONTENT);

    // Monitor saw exactly these modelled requests.
    let log = monitor.log();
    let verdicts: Vec<Verdict> = log.iter().map(|r| r.verdict.clone()).collect();
    assert!(verdicts.contains(&Verdict::PreBlocked));
    assert_eq!(verdicts.iter().filter(|v| **v == Verdict::Pass).count(), 2);

    monitor_server.shutdown();
    cloud_server.shutdown();
}

#[test]
fn observe_mode_is_transparent_to_clients() {
    // In observe mode the client sees exactly the cloud's responses, even
    // for violations — only the log differs.
    let plan = FaultPlan::single(Fault::PolicyOverride {
        action: "volume:delete".into(),
        rule: cm_rbac::Rule::Always,
    });
    let cloud = PrivateCloud::my_project().with_faults(plan);
    let pid = cloud.project_id();
    let carol = cloud.issue_token("carol", "carol-pw").unwrap();
    cloud.state_mut().create_volume(pid, "v", 1, false).unwrap();
    let mut monitor = cinder_monitor(cloud).unwrap().mode(Mode::Observe);
    monitor.authenticate("alice", "alice-pw").unwrap();

    let outcome = monitor.process(
        &RestRequest::new(HttpMethod::Delete, format!("/v3/{pid}/volumes/1"))
            .auth_token(&carol.token),
    );
    // The mutant cloud accepted carol's delete; observe mode forwards the
    // (faulty) 204 but records the wrong acceptance.
    assert_eq!(outcome.response.status, StatusCode::NO_CONTENT);
    assert_eq!(outcome.verdict, Verdict::WrongAcceptance);
}

#[test]
fn monitor_detects_externally_injected_role_change() {
    // Fault injected through the identity store (not the policy): the
    // business_analyst group is wrongly granted the admin role.
    let cloud = PrivateCloud::my_project();
    let pid = cloud.project_id();
    cloud
        .identity_mut()
        .set_group_role(pid, "business_analyst", "admin")
        .unwrap();
    let carol = cloud.issue_token("carol", "carol-pw").unwrap();
    cloud.state_mut().create_volume(pid, "v", 1, false).unwrap();

    let mut monitor = cinder_monitor(cloud).unwrap().mode(Mode::Observe);
    monitor.authenticate("alice", "alice-pw").unwrap();
    let outcome = monitor.process(
        &RestRequest::new(HttpMethod::Delete, format!("/v3/{pid}/volumes/1"))
            .auth_token(&carol.token),
    );
    // Subtlety: the monitor's user view comes from the cloud's own token
    // introspection, which now reports carol as admin — so from the
    // models' perspective the request *is* authorized. The role change is
    // visible in the identity data, not in the behavioural contract; the
    // monitor correctly passes the request. This documents the paper's
    // trust boundary: the monitor validates the API implementation against
    // the models, treating Keystone's role assignments as ground truth.
    assert_eq!(outcome.verdict, Verdict::Pass);
}

#[test]
fn unreachable_cloud_is_degraded_not_a_contract_verdict() {
    // Wrap a dead endpoint: every request (including the monitor's own
    // probes) fails in transport. The monitor must not attribute this to
    // the cloud's contract (a wrong denial); the pre-state is simply
    // untestable, so the verdict is Degraded with the affected
    // requirement ids attached.
    let dead_addr = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap()
    };
    let mut monitor = CloudMonitor::generate(
        &cinder::resource_model(),
        &cinder::behavioral_model(),
        None,
        RemoteService::new(dead_addr),
    )
    .unwrap()
    .mode(Mode::Observe);
    // Authentication against the dead cloud fails loudly.
    assert!(monitor.authenticate("alice", "alice-pw").is_err());

    let outcome = monitor
        .process(&RestRequest::new(HttpMethod::Delete, "/v3/1/volumes/1").auth_token("tok-x"));
    assert_eq!(outcome.verdict, Verdict::Degraded, "{:?}", outcome);
    assert!(!outcome.verdict.is_violation());
    assert!(outcome.response.is_transport_fault(), "{:?}", outcome);
    // Table I traceability: the untested requirement rides along.
    assert!(outcome.requirements.contains(&"1.4".to_string()));
}

#[test]
fn extended_monitor_over_the_network() {
    // The snapshot extension also works across a real TCP hop.
    let cloud = Arc::new(PrivateCloud::my_project());
    let pid = cloud.project_id();
    let vid = cloud
        .state_mut()
        .create_volume(pid, "v", 1, false)
        .unwrap()
        .id;
    assert_eq!(vid, 1);
    let cloud_handle = Arc::clone(&cloud);
    let server =
        HttpServer::bind("127.0.0.1:0", Arc::new(move |req| cloud_handle.call(&req))).unwrap();
    let mut monitor = cm_core::cinder_monitor_extended(RemoteService::new(server.local_addr()))
        .unwrap()
        .mode(Mode::Enforce);
    monitor.authenticate("alice", "alice-pw").unwrap();
    let admin_auth = monitor.call(
        &RestRequest::new(HttpMethod::Post, "/identity/auth/tokens").json(Json::object(vec![(
            "auth",
            Json::object(vec![
                ("user", Json::Str("alice".into())),
                ("password", Json::Str("alice-pw".into())),
            ]),
        )])),
    );
    let token = admin_auth
        .body
        .unwrap()
        .get("token")
        .unwrap()
        .get("id")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    let create = monitor.process(
        &RestRequest::new(HttpMethod::Post, format!("/v3/{pid}/volumes/1/snapshots"))
            .auth_token(&token)
            .json(Json::object(vec![(
                "snapshot",
                Json::object(vec![("name", Json::Str("net-snap".into()))]),
            )])),
    );
    assert_eq!(create.verdict, Verdict::Pass, "{create:?}");
    assert_eq!(create.response.status, StatusCode::CREATED);
    server.shutdown();
}
