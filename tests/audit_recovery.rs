//! Crash-injection battery for the durable audit log.
//!
//! The test re-invokes its own binary as a *child writer process*
//! (the `#[ignore]`d `crash_child_writer` test, gated on an env var),
//! lets it append and flush records against a fresh log directory,
//! then SIGKILLs it at a randomized point — including mid-group-commit
//! — and recovers the directory in-process. The durability contract
//! under test:
//!
//! * recovery never panics and never refuses to start;
//! * the recovered trace is an **exact prefix** of the deterministic
//!   record sequence the child was writing — no gaps, no duplicates,
//!   no altered bytes;
//! * nothing acknowledged by a `flush()` barrier before the kill is
//!   lost (the child persists its ack watermark to a side file after
//!   every flush);
//! * the directory reopens for appending afterwards and the offset
//!   watermark continues from the recovered prefix.

use cm_audit::{
    encode_record, read_records, recover, AuditLog, AuditLogOptions, AuditRecord, EnvProvenance,
    EnvSnapshot, MonitorMode, ReplayContext, VerdictCode,
};
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::Duration;

const CHILD_ENV: &str = "CM_AUDIT_CRASH_DIR";
const ACK_FILE: &str = "acked";

/// Deterministic record `i` — parent and child must agree byte-for-byte.
fn record(i: u64) -> AuditRecord {
    AuditRecord {
        seq: i,
        ts_nanos: i.wrapping_mul(1_000_003),
        method: "PUT".into(),
        path: format!("/v3/1/volumes/{i}"),
        route: Some("/v3/{project_id}/volumes/{volume_id}".into()),
        trigger: Some(("PUT".into(), "volume".into())),
        mode: MonitorMode::Enforce,
        degraded_policy: "fail-closed".into(),
        verdict: if i.is_multiple_of(7) {
            VerdictCode::PreBlocked
        } else {
            VerdictCode::Pass
        },
        requirements: vec!["1.1".into(), format!("2.{}", i % 5)],
        status: 200,
        diagnostics: String::new(),
        context: ReplayContext::Checked {
            pre_env: EnvSnapshot::default(),
            post_env: None,
            post_partial: false,
            probe_denials: vec![],
            forwarded: true,
            cloud_status: Some(200),
            provenance: EnvProvenance::default(),
        },
    }
}

fn writer_options() -> AuditLogOptions {
    AuditLogOptions {
        // Small segments so kills land across rotations too.
        segment_max_bytes: 8 * 1024,
        max_segments: 64,
        channel_capacity: 4096,
        group_max: 8,
        tail_capacity: 64,
        fsync: true,
        ..AuditLogOptions::default()
    }
}

/// xorshift64* — deterministic kill-point schedule, no external RNG.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

fn tmp_dir(tag: &str, case: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "cm-audit-crash-{tag}-{}-{case}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Durably record "everything up to `count` has been fsynced".
fn write_ack(dir: &Path, count: u64) {
    let tmp = dir.join("acked.tmp");
    if let Ok(mut file) = fs::File::create(&tmp) {
        if file.write_all(&count.to_le_bytes()).is_ok() && file.sync_data().is_ok() {
            let _ = fs::rename(&tmp, dir.join(ACK_FILE));
        }
    }
}

fn read_ack(dir: &Path) -> u64 {
    fs::read(dir.join(ACK_FILE))
        .ok()
        .and_then(|bytes| bytes.try_into().ok().map(u64::from_le_bytes))
        .unwrap_or(0)
}

/// The child writer process. Ignored in normal runs; the kill-matrix
/// test execs it with `--ignored --exact` and the directory in the
/// environment, then SIGKILLs it. It appends the deterministic record
/// sequence forever, flushing (and acking) every few records, so the
/// kill is equally likely to land mid-group-commit, between groups, or
/// mid-rotation.
#[test]
#[ignore = "crash-injection child; spawned by kill_matrix_recovers_committed_prefix"]
fn crash_child_writer() {
    let Ok(dir) = std::env::var(CHILD_ENV) else {
        return;
    };
    let dir = PathBuf::from(dir);
    let (log, _report) = AuditLog::open(&dir, writer_options(), None).expect("child open");
    let mut i = 0u64;
    loop {
        log.append(record(i));
        i += 1;
        if i.is_multiple_of(4) {
            if log.flush().is_err() {
                return;
            }
            write_ack(&dir, i);
        }
    }
}

fn spawn_child(dir: &Path) -> std::process::Child {
    let exe = std::env::current_exe().expect("current_exe");
    Command::new(exe)
        .args(["--ignored", "--exact", "crash_child_writer"])
        .env(CHILD_ENV, dir)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn crash child")
}

/// One kill: spawn, wait a randomized interval, SIGKILL, recover,
/// check the invariants. Returns how many records were recovered.
fn kill_once(case: u64, delay: Duration) -> u64 {
    let dir = tmp_dir("kill", case);
    let mut child = spawn_child(&dir);
    std::thread::sleep(delay);
    child.kill().expect("SIGKILL child");
    let _ = child.wait();

    let acked = read_ack(&dir);

    // Recovery must not panic and must not refuse to start.
    let (records, recovered) = recover(&dir).expect("recovery after SIGKILL");
    let n = records.len() as u64;

    // No loss before the last fsync barrier.
    assert!(
        n >= acked,
        "case {case}: recovered {n} records but {acked} were acked pre-kill"
    );
    assert_eq!(
        recovered.report.lost_committed, 0,
        "case {case}: recovery reported committed loss"
    );
    assert_eq!(recovered.report.next_offset, n, "case {case}: offset gap");

    // Exact prefix: no gaps, no duplicates, no altered bytes.
    for (i, got) in records.iter().enumerate() {
        let want = record(i as u64);
        assert_eq!(got.seq, i as u64, "case {case}: gap or duplicate at {i}");
        assert_eq!(
            encode_record(got),
            encode_record(&want),
            "case {case}: record {i} recovered with altered bytes"
        );
    }

    // A second scan sees the same (now clean) prefix: recovery
    // truncated the torn tail on disk rather than re-tolerating it.
    let again = read_records(&dir).expect("re-scan after recovery");
    assert_eq!(
        again.len() as u64,
        n,
        "case {case}: recovery not idempotent"
    );

    // The directory must reopen for writing and continue the offsets.
    {
        let (log, report) = AuditLog::open(&dir, writer_options(), None).expect("reopen");
        assert_eq!(report.next_offset, n, "case {case}: reopen offset");
        log.append(record(n));
        log.flush().expect("flush after reopen");
        assert_eq!(log.committed(), n + 1, "case {case}: watermark stuck");
    }
    let final_records = read_records(&dir).expect("read after reopen");
    assert_eq!(final_records.len() as u64, n + 1);

    let _ = fs::remove_dir_all(&dir);
    n
}

/// The kill matrix: SIGKILL the writer at randomized points — from
/// "barely started" to "hundreds of group commits and several segment
/// rotations in" — and require the committed-prefix property to hold
/// at every one of them.
#[test]
fn kill_matrix_recovers_committed_prefix() {
    let mut rng = Rng(0x5EED_CAFE_F00D_0001);
    let mut recovered_any = false;
    for case in 0..10 {
        // Spread delays across process startup (~a few ms) through
        // sustained writing, so kills land in every phase.
        let micros = 500 + rng.next() % 90_000;
        let n = kill_once(case, Duration::from_micros(micros));
        if n > 0 {
            recovered_any = true;
        }
    }
    // The schedule must actually exercise the interesting region; if
    // every kill landed before the first commit the matrix proved
    // nothing.
    assert!(
        recovered_any,
        "all kills landed before the first group commit; widen the delays"
    );
}

/// Kill while a torn frame is likely on disk, then make sure recovery
/// *reports* the truncation honestly: records + truncated bytes add up
/// and the quarantine list stays empty (a torn tail is normal, not
/// corruption).
#[test]
fn sigkill_truncation_is_reported_not_quarantined() {
    let mut rng = Rng(0xBAD5_EED5_0000_0002);
    for case in 100..104 {
        let dir = tmp_dir("report", case);
        let mut child = spawn_child(&dir);
        std::thread::sleep(Duration::from_micros(3_000 + rng.next() % 40_000));
        child.kill().expect("SIGKILL child");
        let _ = child.wait();

        let (_, recovered) = recover(&dir).expect("recovery");
        assert_eq!(
            recovered.report.quarantined_segments, 0,
            "case {case}: a SIGKILL tear must truncate, not quarantine"
        );
        assert_eq!(recovered.report.lost_committed, 0, "case {case}");
        let _ = fs::remove_dir_all(&dir);
    }
}
