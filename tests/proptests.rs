//! Enabled with `cargo test --features proptest`; a hermetic default
//! build skips these.
#![cfg(feature = "proptest")]

//! Property-based tests over the core data structures and invariants:
//! OCL printer/parser round-trips, evaluator laws, JSON and policy-rule
//! round-trips, URI template duality, and XMI interchange losslessness.

use cm_ocl::{
    parse as parse_ocl, to_string as ocl_to_string, BinOp, CollectionKind, EvalContext, Expr,
    IterOp, MapNavigator, UnOp, Value,
};
use cm_rest::{parse_json, Json, UriTemplate};
use proptest::prelude::*;

// ---------- strategies -------------------------------------------------

/// Identifiers that are not keywords of the OCL subset.
fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,6}".prop_filter("keyword", |s| {
        !matches!(
            s.as_str(),
            "and"
                | "or"
                | "xor"
                | "not"
                | "implies"
                | "true"
                | "false"
                | "null"
                | "if"
                | "then"
                | "else"
                | "endif"
                | "let"
                | "in"
                | "pre"
        )
    })
}

fn leaf_expr() -> impl Strategy<Value = Expr> {
    prop_oneof![
        any::<bool>().prop_map(Expr::Bool),
        (0i64..1000).prop_map(Expr::Int),
        (0u32..8000).prop_map(|i| Expr::Real(f64::from(i) / 8.0)),
        "[a-z ]{0,8}".prop_map(Expr::Str),
        Just(Expr::Null),
        ident().prop_map(Expr::Var),
    ]
}

fn binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Eq),
        Just(BinOp::Ne),
        Just(BinOp::Lt),
        Just(BinOp::Le),
        Just(BinOp::Gt),
        Just(BinOp::Ge),
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::And),
        Just(BinOp::Or),
        Just(BinOp::Xor),
        Just(BinOp::Implies),
    ]
}

fn iter_op() -> impl Strategy<Value = IterOp> {
    prop_oneof![
        Just(IterOp::Exists),
        Just(IterOp::ForAll),
        Just(IterOp::Select),
        Just(IterOp::Reject),
        Just(IterOp::Collect),
        Just(IterOp::One),
        Just(IterOp::Any),
        Just(IterOp::IsUnique),
        Just(IterOp::SortedBy),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    leaf_expr().prop_recursive(4, 48, 4, |inner| {
        prop_oneof![
            (binop(), inner.clone(), inner.clone()).prop_map(|(op, lhs, rhs)| Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            }),
            (inner.clone(), prop_oneof![Just(UnOp::Not), Just(UnOp::Neg)]).prop_map(|(e, op)| {
                Expr::Unary {
                    op,
                    operand: Box::new(e),
                }
            }),
            (inner.clone(), ident(), any::<bool>()).prop_map(|(src, prop, at_pre)| {
                Expr::Nav {
                    source: Box::new(src),
                    property: prop,
                    at_pre,
                }
            }),
            (inner.clone()).prop_map(|src| Expr::CollOp {
                source: Box::new(src),
                op: "size".to_string(),
                args: Vec::new(),
            }),
            (inner.clone(), inner.clone()).prop_map(|(src, arg)| Expr::CollOp {
                source: Box::new(src),
                op: "includes".to_string(),
                args: vec![arg],
            }),
            (inner.clone(), iter_op(), ident(), inner.clone()).prop_map(|(src, op, var, body)| {
                Expr::Iterate {
                    source: Box::new(src),
                    op,
                    var,
                    body: Box::new(body),
                }
            }),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, t, e)| Expr::If {
                cond: Box::new(c),
                then_branch: Box::new(t),
                else_branch: Box::new(e),
            }),
            (ident(), inner.clone(), inner.clone()).prop_map(|(name, value, body)| Expr::Let {
                name,
                value: Box::new(value),
                body: Box::new(body),
            }),
            inner.clone().prop_map(|e| Expr::Pre(Box::new(e))),
            (
                inner.clone(),
                ident(),
                ident(),
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(src, var, acc, init, body)| Expr::Fold {
                    source: Box::new(src),
                    var,
                    acc,
                    init: Box::new(init),
                    body: Box::new(body),
                }),
            (
                prop_oneof![
                    Just(CollectionKind::Set),
                    Just(CollectionKind::Bag),
                    Just(CollectionKind::Sequence)
                ],
                prop::collection::vec(inner, 0..4)
            )
                .prop_map(|(kind, elements)| Expr::CollectionLiteral { kind, elements }),
        ]
    })
}

fn arb_json() -> impl Strategy<Value = Json> {
    let leaf = prop_oneof![
        Just(Json::Null),
        any::<bool>().prop_map(Json::Bool),
        any::<i64>().prop_map(Json::Int),
        (-1_000_000i64..1_000_000).prop_map(|i| Json::Float(i as f64 / 64.0)),
        "[\\x20-\\x7e]{0,12}".prop_map(Json::Str),
        "\\PC{0,6}".prop_map(Json::Str),
    ];
    leaf.prop_recursive(4, 64, 6, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..6).prop_map(Json::Array),
            prop::collection::vec(("[a-zA-Z0-9_]{0,8}", inner), 0..6)
                .prop_map(|members| { Json::Object(members) }),
        ]
    })
}

// ---------- properties -------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The OCL printer's output re-parses to the identical AST.
    #[test]
    fn ocl_print_parse_roundtrip(expr in arb_expr()) {
        let printed = ocl_to_string(&expr);
        let reparsed = parse_ocl(&printed)
            .unwrap_or_else(|e| panic!("re-parse failed for `{printed}`: {e}"));
        prop_assert_eq!(reparsed, expr, "printed: {}", printed);
    }

    /// Lexing never panics on arbitrary input.
    #[test]
    fn ocl_lexer_total(input in "\\PC{0,64}") {
        let _ = cm_ocl::lex(&input);
    }

    /// node_count is positive and stable across print/parse.
    #[test]
    fn ocl_node_count_stable(expr in arb_expr()) {
        prop_assert!(expr.node_count() >= 1);
        let reparsed = parse_ocl(&ocl_to_string(&expr)).unwrap();
        prop_assert_eq!(reparsed.node_count(), expr.node_count());
    }

    /// Kleene laws on the evaluator: commutativity of and/or over the
    /// three-valued domain, and De Morgan.
    #[test]
    fn ocl_kleene_laws(a in 0u8..3, b in 0u8..3) {
        fn lit(v: u8) -> Expr {
            match v {
                0 => Expr::Bool(false),
                1 => Expr::Bool(true),
                _ => Expr::Null,
            }
        }
        let nav = MapNavigator::new();
        let eval = |e: &Expr| EvalContext::new(&nav).eval(e).unwrap();

        let ab = lit(a).and(lit(b));
        let ba = lit(b).and(lit(a));
        prop_assert_eq!(eval(&ab), eval(&ba));

        let ab_or = lit(a).or(lit(b));
        let ba_or = lit(b).or(lit(a));
        prop_assert_eq!(eval(&ab_or), eval(&ba_or));

        // not (a and b) == (not a) or (not b)
        let lhs = lit(a).and(lit(b)).negate();
        let rhs = lit(a).negate().or(lit(b).negate());
        prop_assert_eq!(eval(&lhs), eval(&rhs));

        // a implies b == (not a) or b
        let imp = lit(a).implies(lit(b));
        let disj = lit(a).negate().or(lit(b));
        prop_assert_eq!(eval(&imp), eval(&disj));
    }

    /// any_of/all_of agree with element-wise evaluation.
    #[test]
    fn ocl_any_all_of(bits in prop::collection::vec(any::<bool>(), 0..8)) {
        let nav = MapNavigator::new();
        let exprs: Vec<Expr> = bits.iter().map(|b| Expr::Bool(*b)).collect();
        let any = EvalContext::new(&nav).eval(&Expr::any_of(exprs.clone())).unwrap();
        let all = EvalContext::new(&nav).eval(&Expr::all_of(exprs)).unwrap();
        prop_assert_eq!(any, Value::Bool(bits.iter().any(|b| *b)));
        prop_assert_eq!(all, Value::Bool(bits.iter().all(|b| *b)));
    }

    /// Set semantics: the constructor deduplicates, and ->includes agrees
    /// with membership.
    #[test]
    fn ocl_set_dedup(values in prop::collection::vec(0i64..20, 0..16), probe in 0i64..20) {
        let set = Value::set(values.iter().map(|v| Value::Int(*v)).collect());
        let items = set.as_collection().unwrap();
        // No duplicates.
        for (i, a) in items.iter().enumerate() {
            for b in &items[i + 1..] {
                prop_assert!(!a.ocl_eq(b));
            }
        }
        // Membership preserved.
        let expected = values.contains(&probe);
        prop_assert_eq!(
            items.iter().any(|v| v.ocl_eq(&Value::Int(probe))),
            expected
        );
    }

    /// JSON serialisation round-trips.
    #[test]
    fn json_roundtrip(value in arb_json()) {
        let text = value.to_compact_string();
        let reparsed = parse_json(&text)
            .unwrap_or_else(|e| panic!("re-parse failed for `{text}`: {e}"));
        prop_assert_eq!(reparsed, value);
    }

    /// The JSON parser never panics on arbitrary input.
    #[test]
    fn json_parser_total(input in "\\PC{0,64}") {
        let _ = parse_json(&input);
    }

    /// Policy rules display/parse round-trip.
    #[test]
    fn policy_rule_roundtrip(
        roles in prop::collection::vec("[a-z]{1,8}", 1..5),
        negate in any::<bool>(),
    ) {
        use cm_rbac::{parse_rule, Rule};
        let mut rule = Rule::any_role(roles);
        if negate {
            rule = Rule::Not(Box::new(rule));
        }
        let printed = rule.to_string();
        let reparsed = parse_rule(&printed)
            .unwrap_or_else(|e| panic!("re-parse failed for `{printed}`: {e}"));
        prop_assert_eq!(reparsed, rule);
    }

    /// URI templates: render then match recovers the parameters.
    #[test]
    fn uri_render_match_duality(
        literals in prop::collection::vec("[a-z]{1,8}", 1..4),
        params in prop::collection::vec(("[a-z_]{1,8}", "[a-zA-Z0-9]{1,8}"), 0..3),
    ) {
        let mut template = UriTemplate::root();
        let mut expected = std::collections::HashMap::new();
        for (i, lit) in literals.iter().enumerate() {
            template = template.literal(lit.clone());
            if let Some((name, value)) = params.get(i) {
                // parameter names must be unique for exact recovery
                let unique = format!("{name}_{i}");
                template = template.param(unique.clone());
                expected.insert(unique, value.clone());
            }
        }
        let rendered = template.render(&expected).unwrap();
        let captured = template.match_path(&rendered).expect("own rendering matches");
        prop_assert_eq!(captured, expected);
    }

    /// XMI export/import is lossless for arbitrary well-formed resource
    /// models.
    #[test]
    fn xmi_resource_model_roundtrip(
        class_names in prop::collection::hash_set("[a-z][a-z0-9]{0,6}", 1..6),
        seed in any::<u64>(),
    ) {
        use cm_model::{Association, AttrType, Attribute, Multiplicity, ResourceDef, ResourceModel};
        let names: Vec<String> = class_names.into_iter().collect();
        let mut model = ResourceModel::new("prop");
        for (i, name) in names.iter().enumerate() {
            let ty = match i % 4 {
                0 => AttrType::Str,
                1 => AttrType::Int,
                2 => AttrType::Real,
                _ => AttrType::Bool,
            };
            model.define(ResourceDef::normal(name.clone(), vec![Attribute::new("a", ty)]));
        }
        // A few deterministic associations derived from the seed.
        for i in 0..names.len().saturating_sub(1) {
            let src = &names[i];
            let dst = &names[(i + 1 + (seed as usize % names.len())) % names.len()];
            model.associate(Association::new(
                format!("r{i}"),
                src.clone(),
                dst.clone(),
                if seed.wrapping_shr(i as u32) & 1 == 0 {
                    Multiplicity::ONE
                } else {
                    Multiplicity::ZERO_MANY
                },
            ));
        }
        let xml = cm_xmi::export(Some(&model), &[]);
        let doc = cm_xmi::import(&xml).expect("exported XMI imports");
        prop_assert_eq!(doc.resources, Some(model));
    }

    /// XML text content with arbitrary characters survives escaping.
    #[test]
    fn xml_escaping_roundtrip(text in "\\PC{0,32}", attr in "\\PC{0,32}") {
        use cm_xmi::Element;
        let e = Element::new("root").attr("a", attr.clone()).text(text.clone());
        let xml = e.to_xml();
        let parsed = cm_xmi::parse_document(&xml).expect("own output parses");
        prop_assert_eq!(parsed.attribute("a"), Some(attr.as_str()));
        // Leading/trailing whitespace is not significant in our tree model.
        prop_assert_eq!(parsed.text_content(), text.trim());
    }

    /// Multiplicity::admits is consistent with its bounds.
    #[test]
    fn multiplicity_admits_consistent(lower in 0u32..5, extra in 0u32..5, count in 0u32..12) {
        use cm_model::Multiplicity;
        let m = Multiplicity::new(lower, Some(lower + extra));
        prop_assert_eq!(m.admits(count), count >= lower && count <= lower + extra);
        let unbounded = Multiplicity::new(lower, None);
        prop_assert_eq!(unbounded.admits(count), count >= lower);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Simplification preserves semantics: whenever the original
    /// expression evaluates successfully, the simplified one evaluates to
    /// the same value. (The simplified form may *additionally* succeed
    /// where the original errors — constant folding can bypass an
    /// unknown variable behind a short-circuit — which is fine.)
    #[test]
    fn ocl_simplify_preserves_semantics(expr in arb_expr()) {
        let simplified = cm_ocl::simplify(&expr);
        let nav = MapNavigator::new();
        if let Ok(value) = EvalContext::new(&nav).eval(&expr) {
            let simplified_value = EvalContext::new(&nav)
                .eval(&simplified)
                .expect("simplified form must not introduce errors");
            prop_assert!(
                value.ocl_eq(&simplified_value) || (value.is_undefined() && simplified_value.is_undefined()),
                "original {:?} != simplified {:?} for {}",
                value, simplified_value, cm_ocl::to_string(&expr)
            );
        }
        // Simplification is idempotent.
        prop_assert_eq!(cm_ocl::simplify(&simplified), simplified);
    }

    /// The simplifier never grows the expression.
    #[test]
    fn ocl_simplify_never_grows(expr in arb_expr()) {
        prop_assert!(cm_ocl::simplify(&expr).node_count() <= expr.node_count());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Route resolution is total: arbitrary method/path never panics, and
    /// a `Matched` resolution's captured params re-render to a path that
    /// matches the same route.
    #[test]
    fn route_resolution_total(
        path in "/{0,1}[a-zA-Z0-9/._-]{0,40}",
        method_idx in 0usize..4,
    ) {
        use cm_model::cinder;
        use cm_rest::{Resolution, RouteTable};
        let table = RouteTable::derive(&cinder::extended_resource_model(), "/v3");
        let method = cm_model::HttpMethod::ALL[method_idx];
        match table.resolve(method, &path) {
            Resolution::Matched { route, params } => {
                let rendered = route.template.render(&params).expect("params complete");
                prop_assert!(route.template.match_path(&rendered).is_some());
            }
            Resolution::MethodNotAllowed { .. } | Resolution::NotFound => {}
        }
    }

    /// Slicing is sound: the slice's transitions are a subset of the
    /// original's, every slice state exists in the original, the slice is
    /// well-formed, and slicing is idempotent.
    #[test]
    fn slice_soundness(selector in prop::collection::vec(any::<bool>(), 4)) {
        use cm_model::{
            cinder, slice_behavioral_model, validate_behavioral_model, HttpMethod,
            SliceCriterion,
        };
        let methods: Vec<HttpMethod> = HttpMethod::ALL
            .iter()
            .zip(&selector)
            .filter(|(_, keep)| **keep)
            .map(|(m, _)| *m)
            .collect();
        let criterion = SliceCriterion::Methods(methods);
        let original = cinder::behavioral_model();
        let slice = slice_behavioral_model(&original, &criterion);

        for t in &slice.transitions {
            prop_assert!(original.transitions.contains(t));
        }
        for s in &slice.states {
            prop_assert!(original.states.contains(s));
        }
        prop_assert!(validate_behavioral_model(&slice, None).is_valid());
        let twice = slice_behavioral_model(&slice, &criterion);
        prop_assert_eq!(twice.transitions, slice.transitions);
    }

    /// The policy rule checker is monotone in the role set for
    /// negation-free rules: adding roles can only turn deny into allow.
    #[test]
    fn policy_monotonicity(
        rule_roles in prop::collection::vec("[a-c]", 1..4),
        held in prop::collection::vec("[a-c]", 0..3),
        extra in "[a-c]",
    ) {
        use cm_rbac::{Rule, TokenInfo};
        let rule = Rule::any_role(rule_roles);
        let token = |roles: Vec<String>| TokenInfo {
            token: "t".into(),
            user_id: 1,
            user_name: "u".into(),
            project_id: 1,
            roles,
            groups: vec![],
        };
        let before = rule.check(&token(held.clone()));
        let mut larger = held;
        larger.push(extra);
        let after = rule.check(&token(larger));
        prop_assert!(!before || after, "adding a role revoked access");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Concurrency determinism: requests over *disjoint* projects yield
    /// the same multiset of (method, path, verdict, requirements) whether
    /// the projects are driven round-robin from one thread or from one
    /// thread each, and within a project the threaded log — ordered by
    /// global sequence number — matches the serial submission order
    /// exactly.
    #[test]
    fn concurrent_disjoint_projects_match_serial(
        plans in prop::collection::vec(prop::collection::vec(0usize..3, 1..8), 3),
    ) {
        use cm_cloudsim::PrivateCloud;
        use cm_core::{cinder_monitor, CloudMonitor, Mode};
        use cm_model::HttpMethod;
        use cm_rest::{Json, RestRequest};
        use std::sync::Arc;

        const PROJECTS: usize = 3;

        fn fixture() -> (CloudMonitor<PrivateCloud>, Vec<String>) {
            let cloud = PrivateCloud::multi_project(PROJECTS);
            let mut tokens = Vec::new();
            for pid in 1..=PROJECTS as u64 {
                // Strided ids: the seeded volume's id equals the project id.
                cloud.state_of(pid).create_volume(pid, "seed", 1, false).unwrap();
                tokens.push(cloud.issue_token_scoped("alice", "alice-pw", pid).unwrap().token);
            }
            let mut monitor = cinder_monitor(cloud).unwrap().mode(Mode::Enforce);
            for pid in 1..=PROJECTS as u64 {
                monitor.authenticate_scoped("alice", "alice-pw", pid).unwrap();
            }
            (monitor, tokens)
        }

        fn request(op: usize, pid: u64, token: &str) -> RestRequest {
            match op {
                0 => RestRequest::new(HttpMethod::Post, format!("/v3/{pid}/volumes"))
                    .auth_token(token)
                    .json(Json::object(vec![(
                        "volume",
                        Json::object(vec![
                            ("name", Json::Str("prop".into())),
                            ("size", Json::Int(1)),
                        ]),
                    )])),
                1 => RestRequest::new(HttpMethod::Get, format!("/v3/{pid}/volumes/{pid}"))
                    .auth_token(token),
                _ => RestRequest::new(HttpMethod::Delete, format!("/v3/{pid}/volumes/{pid}"))
                    .auth_token(token),
            }
        }

        type Obs = (String, String, String, Vec<String>);
        fn observations(monitor: &CloudMonitor<PrivateCloud>) -> Vec<Obs> {
            monitor
                .log()
                .iter()
                .map(|r| {
                    (
                        r.method.to_string(),
                        r.path.clone(),
                        r.verdict.to_string(),
                        r.requirements.clone(),
                    )
                })
                .collect()
        }

        // Serial reference: round-robin the projects in one thread.
        let (serial, tokens) = fixture();
        let longest = plans.iter().map(Vec::len).max().unwrap_or(0);
        for step in 0..longest {
            for (i, plan) in plans.iter().enumerate() {
                if let Some(op) = plan.get(step) {
                    let _ = serial.process(&request(*op, i as u64 + 1, &tokens[i]));
                }
            }
        }
        let serial_log = observations(&serial);

        // Concurrent run on an identical fixture: one thread per project.
        let (threaded, tokens) = fixture();
        let threaded = Arc::new(threaded);
        let workers: Vec<_> = plans
            .iter()
            .enumerate()
            .map(|(i, plan)| {
                let monitor = Arc::clone(&threaded);
                let token = tokens[i].clone();
                let plan = plan.clone();
                std::thread::spawn(move || {
                    for op in plan {
                        let _ = monitor.process(&request(op, i as u64 + 1, &token));
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        let threaded_log = observations(&threaded);

        // Same multiset of observations regardless of interleaving…
        let mut serial_sorted = serial_log.clone();
        let mut threaded_sorted = threaded_log.clone();
        serial_sorted.sort();
        threaded_sorted.sort();
        prop_assert_eq!(&serial_sorted, &threaded_sorted);

        // …and per project the seq-ordered threaded log replays the
        // serial submission order exactly.
        for pid in 1..=PROJECTS as u64 {
            let prefix = format!("/v3/{pid}/");
            let by_project = |log: &[Obs]| -> Vec<Obs> {
                log.iter().filter(|o| o.1.starts_with(&prefix)).cloned().collect()
            };
            prop_assert_eq!(by_project(&serial_log), by_project(&threaded_log));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Differential oracle for the compile pipeline: on arbitrary request
    /// scripts against the extended Cinder scenario (volume + snapshot
    /// state machines), a monitor evaluating the interned compiled
    /// programs and one tree-walking the contract ASTs must produce
    /// identical verdicts, exercised requirement ids, statuses, and
    /// diagnostics at every step.
    #[test]
    fn compiled_pipeline_matches_interpreter(
        plan in prop::collection::vec((0usize..6, any::<bool>()), 1..12),
    ) {
        use cm_cloudsim::PrivateCloud;
        use cm_core::{cinder_monitor_extended, CloudMonitor, EvalStrategy, Mode};
        use cm_model::HttpMethod;
        use cm_rest::RestRequest;

        fn fixture(
            strategy: EvalStrategy,
        ) -> (CloudMonitor<PrivateCloud>, u64, u64, u64, String, String) {
            let cloud = PrivateCloud::my_project();
            let pid = cloud.project_id();
            let vid = cloud
                .state_mut()
                .create_volume(pid, "seed", 1, false)
                .unwrap()
                .id;
            let sid = cloud.state_mut().create_snapshot(pid, vid, "s").unwrap().id;
            let admin = cloud.issue_token("alice", "alice-pw").unwrap().token;
            let carol = cloud.issue_token("carol", "carol-pw").unwrap().token;
            let mut monitor = cinder_monitor_extended(cloud)
                .unwrap()
                .mode(Mode::Observe)
                .eval_strategy(strategy);
            monitor.authenticate("alice", "alice-pw").unwrap();
            (monitor, pid, vid, sid, admin, carol)
        }

        fn request(op: usize, pid: u64, vid: u64, sid: u64, token: &str) -> RestRequest {
            let base = match op {
                0 => RestRequest::new(HttpMethod::Post, format!("/v3/{pid}/volumes")).json(
                    Json::object(vec![(
                        "volume",
                        Json::object(vec![("name", Json::Str("prop".into()))]),
                    )]),
                ),
                1 => RestRequest::new(HttpMethod::Get, format!("/v3/{pid}/volumes/{vid}")),
                2 => RestRequest::new(HttpMethod::Delete, format!("/v3/{pid}/volumes/{vid}")),
                3 => RestRequest::new(
                    HttpMethod::Post,
                    format!("/v3/{pid}/volumes/{vid}/snapshots"),
                )
                .json(Json::object(vec![(
                    "snapshot",
                    Json::object(vec![("name", Json::Str("prop".into()))]),
                )])),
                4 => RestRequest::new(
                    HttpMethod::Get,
                    format!("/v3/{pid}/volumes/{vid}/snapshots/{sid}"),
                ),
                _ => RestRequest::new(
                    HttpMethod::Delete,
                    format!("/v3/{pid}/volumes/{vid}/snapshots/{sid}"),
                ),
            };
            base.auth_token(token)
        }

        let (compiled, pid, vid, sid, admin, carol) = fixture(EvalStrategy::Compiled);
        let (interp, _, _, _, _, _) = fixture(EvalStrategy::Interpreter);
        for (op, as_admin) in plan {
            let token = if as_admin { &admin } else { &carol };
            let req = request(op, pid, vid, sid, token);
            let a = compiled.process(&req);
            let b = interp.process(&req);
            prop_assert_eq!(a.verdict, b.verdict, "verdict diverged on {:?}", &req);
            prop_assert_eq!(
                &a.requirements, &b.requirements,
                "requirements diverged on {:?}", &req
            );
            prop_assert_eq!(a.response.status, b.response.status);
            let da = compiled.log().last().unwrap().diagnostics.clone();
            let db = interp.log().last().unwrap().diagnostics.clone();
            prop_assert_eq!(da, db, "diagnostics diverged on {:?}", &req);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Differential oracle for the shadow replica: on arbitrary request
    /// scripts against the extended Cinder scenario, a monitor binding
    /// the OCL environment from the model-derived replica (probing only
    /// to seed and on anti-entropy passes) and one probing a scoped
    /// snapshot for every request must produce identical verdicts,
    /// exercised requirement ids, and statuses at every step — and the
    /// replica side, with no out-of-band edits, must never report
    /// drift. The anti-entropy period is part of the generated input so
    /// scheduled reconciliation passes interleave with the script.
    #[test]
    fn replica_matches_scoped_snapshots(
        plan in prop::collection::vec((0usize..6, any::<bool>()), 1..12),
        anti_entropy_every in 0u64..5,
    ) {
        use cm_cloudsim::PrivateCloud;
        use cm_core::{cinder_monitor_extended, CloudMonitor, Mode, SnapshotPolicy, Verdict};
        use cm_model::HttpMethod;
        use cm_rest::RestRequest;

        fn fixture(
            policy: SnapshotPolicy,
            anti_entropy_every: u64,
        ) -> (CloudMonitor<PrivateCloud>, u64, u64, u64, String, String) {
            let cloud = PrivateCloud::my_project();
            let pid = cloud.project_id();
            let vid = cloud
                .state_mut()
                .create_volume(pid, "seed", 1, false)
                .unwrap()
                .id;
            let sid = cloud.state_mut().create_snapshot(pid, vid, "s").unwrap().id;
            let admin = cloud.issue_token("alice", "alice-pw").unwrap().token;
            let carol = cloud.issue_token("carol", "carol-pw").unwrap().token;
            let mut monitor = cinder_monitor_extended(cloud)
                .unwrap()
                .mode(Mode::Observe)
                .snapshot_policy(policy)
                .anti_entropy_every(anti_entropy_every);
            monitor.authenticate("alice", "alice-pw").unwrap();
            (monitor, pid, vid, sid, admin, carol)
        }

        fn request(op: usize, pid: u64, vid: u64, sid: u64, token: &str) -> RestRequest {
            let base = match op {
                0 => RestRequest::new(HttpMethod::Post, format!("/v3/{pid}/volumes")).json(
                    Json::object(vec![(
                        "volume",
                        Json::object(vec![("name", Json::Str("prop".into()))]),
                    )]),
                ),
                1 => RestRequest::new(HttpMethod::Get, format!("/v3/{pid}/volumes/{vid}")),
                2 => RestRequest::new(HttpMethod::Delete, format!("/v3/{pid}/volumes/{vid}")),
                3 => RestRequest::new(
                    HttpMethod::Post,
                    format!("/v3/{pid}/volumes/{vid}/snapshots"),
                )
                .json(Json::object(vec![(
                    "snapshot",
                    Json::object(vec![("name", Json::Str("prop".into()))]),
                )])),
                4 => RestRequest::new(
                    HttpMethod::Get,
                    format!("/v3/{pid}/volumes/{vid}/snapshots/{sid}"),
                ),
                _ => RestRequest::new(
                    HttpMethod::Delete,
                    format!("/v3/{pid}/volumes/{vid}/snapshots/{sid}"),
                ),
            };
            base.auth_token(token)
        }

        let (replica, pid, vid, sid, admin, carol) =
            fixture(SnapshotPolicy::Replica, anti_entropy_every);
        let (scoped, _, _, _, _, _) = fixture(SnapshotPolicy::Scoped, 0);
        for (op, as_admin) in plan {
            let token = if as_admin { &admin } else { &carol };
            let req = request(op, pid, vid, sid, token);
            let a = replica.process(&req);
            let b = scoped.process(&req);
            prop_assert_eq!(a.verdict, b.verdict, "verdict diverged on {:?}", &req);
            prop_assert_eq!(
                &a.requirements, &b.requirements,
                "requirements diverged on {:?}", &req
            );
            prop_assert_eq!(a.response.status, b.response.status);
        }
        let drifted: Vec<_> = replica
            .log()
            .into_iter()
            .filter(|r| r.verdict == Verdict::Drift)
            .collect();
        prop_assert!(drifted.is_empty(), "phantom drift: {:?}", drifted);
    }
}

/// Arbitrary policy rules over a tiny fixed vocabulary (roles a–c,
/// groups g–h, user ids 1–2) so runtime behaviour can be checked by
/// exhaustive token enumeration.
fn arb_policy_rule() -> impl Strategy<Value = cm_rbac::Rule> {
    use cm_rbac::Rule;
    let leaf = prop_oneof![
        Just(Rule::Always),
        Just(Rule::Never),
        "[a-c]".prop_map(Rule::Role),
        "[gh]".prop_map(Rule::Group),
        (1u64..3).prop_map(Rule::UserId),
    ];
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|r| Rule::Not(Box::new(r))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Rule::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Rule::Or(Box::new(a), Box::new(b))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The static policy analyzer agrees with the runtime checker, both
    /// ways: an action is flagged contradictory exactly when no possible
    /// token is granted at runtime (unless the deny is the explicit `!`),
    /// and a role is flagged unreachable exactly when no action admits a
    /// token holding just that role. In particular a diagnostics-clean
    /// policy never produces a runtime RBAC denial the analysis should
    /// have predicted.
    #[test]
    fn rbac_static_analysis_agrees_with_runtime(
        rules in prop::collection::vec(arb_policy_rule(), 1..4),
    ) {
        use cm_rbac::{analyze_policy, DiagnosticKind, PolicyFile, Rule, TokenInfo};

        let actions: Vec<String> =
            (0..rules.len()).map(|i| format!("res{i}:op")).collect();
        let mut policy = PolicyFile::new();
        for (action, rule) in actions.iter().zip(&rules) {
            policy.set(action.clone(), rule.clone());
        }
        let universe = ["a", "b", "c"];
        let analysis = analyze_policy(&policy, &universe);

        // Exhaustive token pool over the rule vocabulary: every subset of
        // roles x every subset of groups x {mentioned ids, one fresh id}.
        let mut pool = Vec::new();
        for rmask in 0u32..8 {
            for gmask in 0u32..4 {
                for id in [1u64, 2, 99] {
                    pool.push(TokenInfo {
                        token: "t".into(),
                        user_id: id,
                        user_name: "u".into(),
                        project_id: 1,
                        roles: ["a", "b", "c"]
                            .iter()
                            .enumerate()
                            .filter(|(i, _)| rmask >> i & 1 == 1)
                            .map(|(_, r)| (*r).to_string())
                            .collect(),
                        groups: ["g", "h"]
                            .iter()
                            .enumerate()
                            .filter(|(i, _)| gmask >> i & 1 == 1)
                            .map(|(_, g)| (*g).to_string())
                            .collect(),
                    });
                }
            }
        }

        // Contradiction <=> runtime denies every possible token (and the
        // deny was not spelled `!`, which is intentional).
        for (action, rule) in actions.iter().zip(&rules) {
            let grants_someone = pool.iter().any(|t| rule.check(t));
            let flagged = analysis
                .of_kind(DiagnosticKind::Contradiction)
                .iter()
                .any(|d| d.action.as_deref() == Some(action.as_str()));
            prop_assert_eq!(
                flagged,
                !grants_someone && *rule != Rule::Never,
                "action {}: rule {}", action, rule
            );
        }

        // UnreachableRole <=> no action grants a token holding exactly
        // that role.
        for role in universe {
            let reachable = rules.iter().any(|rule| {
                pool.iter()
                    .filter(|t| t.roles == [role.to_string()])
                    .any(|t| rule.check(t))
            });
            let flagged = analysis
                .of_kind(DiagnosticKind::UnreachableRole)
                .iter()
                .any(|d| d.subject == role);
            prop_assert_eq!(flagged, !reachable, "role {}", role);
        }

        // And therefore: clean analysis => every role reaches something.
        if analysis.is_clean() {
            for role in universe {
                let reachable = rules.iter().any(|rule| {
                    pool.iter()
                        .filter(|t| t.roles == [role.to_string()])
                        .any(|t| rule.check(t))
                });
                prop_assert!(reachable, "clean policy strands role {}", role);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// XMI round-trips arbitrary well-formed behavioural models (states
    /// with generated invariants, transitions with guards/effects/SecReq
    /// annotations).
    #[test]
    fn xmi_behavioral_model_roundtrip(
        n_states in 1usize..5,
        edges in prop::collection::vec((0usize..5, 0usize..5, 0usize..4, any::<bool>()), 0..8),
    ) {
        use cm_model::{BehavioralModel, HttpMethod, State, TransitionBuilder, Trigger};
        let mut model = BehavioralModel::new("prop", "project", "s0");
        for i in 0..n_states {
            model.state(State::new(
                format!("s{i}"),
                parse_ocl(&format!("project.volumes->size() >= {i}")).unwrap(),
            ));
        }
        for (k, (src, dst, m, with_guard)) in edges.iter().enumerate() {
            let src = format!("s{}", src % n_states);
            let dst = format!("s{}", dst % n_states);
            let method = cm_model::HttpMethod::ALL[m % 4];
            let mut b = TransitionBuilder::new(
                format!("t{k}"),
                src,
                Trigger::new(method, "volume"),
                dst,
            )
            .security_requirement(format!("{}.{}", k % 3 + 1, k % 4 + 1));
            if *with_guard {
                b = b
                    .guard(parse_ocl("user.groups = 'admin'").unwrap())
                    .effect(
                        parse_ocl(
                            "project.volumes->size() <= pre(project.volumes->size()) + 1",
                        )
                        .unwrap(),
                    );
            }
            model.transition(b.build());
            let _ = HttpMethod::ALL; // silence unused in some configurations
        }
        let xml = cm_xmi::export(None, &[&model]);
        let doc = cm_xmi::import(&xml).expect("exported XMI imports");
        prop_assert_eq!(doc.behaviors, vec![model]);
    }
}
