//! Observability end-to-end: the monitor's metrics registry and event
//! sink must agree exactly with its own request log — first checked
//! in-process over a mixed pass / pre-block / post-violation scenario,
//! then through the `/-/metrics` and `/-/events` admin endpoints of a
//! live HTTP deployment.

use cm_cloudsim::{Fault, FaultPlan, PrivateCloud};
use cm_core::{cinder_monitor, CloudMonitor, Mode, MonitorRecord, Verdict};
use cm_httpkit::{send, AdminRoutes, HttpServer, RemoteService};
use cm_model::{cinder, HttpMethod};
use cm_rest::{Json, RestRequest, SharedRestService, StatusCode};
use std::collections::BTreeMap;
use std::sync::Arc;

fn volume_body(name: &str) -> Json {
    Json::object(vec![(
        "volume",
        Json::object(vec![
            ("name", Json::Str(name.into())),
            ("size", Json::Int(1)),
        ]),
    )])
}

/// Independent recount of the monitor's log: verdict-label counts and
/// per-requirement counts, the ground truth the metrics must match.
fn recount(log: &[MonitorRecord]) -> (BTreeMap<String, u64>, BTreeMap<String, u64>) {
    let mut verdicts: BTreeMap<String, u64> = BTreeMap::new();
    let mut requirements: BTreeMap<String, u64> = BTreeMap::new();
    for record in log {
        *verdicts.entry(record.verdict.to_string()).or_default() += 1;
        for requirement in &record.requirements {
            *requirements.entry(requirement.clone()).or_default() += 1;
        }
    }
    (verdicts, requirements)
}

/// A monitor over a faulty cloud (lost update on volume create) that has
/// processed a pass, a post-violation, a pre-block, and an unmodelled
/// request.
fn mixed_scenario_monitor() -> (CloudMonitor<PrivateCloud>, u64) {
    let plan = FaultPlan::single(Fault::DropStateChange {
        action: "volume:post".into(),
    });
    let cloud = PrivateCloud::my_project().with_faults(plan);
    let pid = cloud.project_id();
    let alice = cloud.issue_token("alice", "alice-pw").unwrap();
    let carol = cloud.issue_token("carol", "carol-pw").unwrap();
    cloud
        .state_mut()
        .create_volume(pid, "seed", 1, false)
        .unwrap();
    let mut monitor = cinder_monitor(cloud).unwrap().mode(Mode::Enforce);
    monitor.authenticate("alice", "alice-pw").unwrap();

    // pass
    let outcome = monitor.process(
        &RestRequest::new(HttpMethod::Get, format!("/v3/{pid}/volumes/1")).auth_token(&alice.token),
    );
    assert_eq!(outcome.verdict, Verdict::Pass, "{outcome:?}");
    // post-violation: the cloud claims success but dropped the update
    let outcome = monitor.process(
        &RestRequest::new(HttpMethod::Post, format!("/v3/{pid}/volumes"))
            .auth_token(&alice.token)
            .json(volume_body("lost")),
    );
    assert_eq!(outcome.verdict, Verdict::PostViolation, "{outcome:?}");
    // pre-block: carol may not delete (SecReq 1.4)
    let outcome = monitor.process(
        &RestRequest::new(HttpMethod::Delete, format!("/v3/{pid}/volumes/1"))
            .auth_token(&carol.token),
    );
    assert_eq!(outcome.verdict, Verdict::PreBlocked, "{outcome:?}");
    // unmodelled: identity API passes through
    let outcome = monitor.process(
        &RestRequest::new(HttpMethod::Post, "/identity/auth/tokens").json(Json::object(vec![(
            "auth",
            Json::object(vec![
                ("user", Json::Str("bob".into())),
                ("password", Json::Str("bob-pw".into())),
            ]),
        )])),
    );
    assert_eq!(outcome.verdict, Verdict::NotModelled, "{outcome:?}");
    (monitor, pid)
}

#[test]
fn metrics_equal_an_independent_recount_of_the_log() {
    let (monitor, _pid) = mixed_scenario_monitor();
    let metrics = monitor.metrics();
    let log = monitor.log();
    assert_eq!(log.len(), 4);

    let (verdicts, requirements) = recount(&log);
    assert_eq!(
        metrics.requests(),
        log.len() as u64,
        "every processed request is counted"
    );
    assert_eq!(
        metrics.violations(),
        log.iter().filter(|r| r.verdict.is_violation()).count() as u64
    );
    let metric_verdicts: BTreeMap<String, u64> = metrics.verdicts.snapshot().into_iter().collect();
    assert_eq!(metric_verdicts, verdicts);
    let metric_requirements: BTreeMap<String, u64> =
        metrics.requirements.snapshot().into_iter().collect();
    assert_eq!(metric_requirements, requirements);
    // The scenario exercised real requirements (the woven Table I ids).
    assert!(
        !requirements.is_empty(),
        "scenario exercised no requirements"
    );

    // Phase histograms saw every request; percentiles are defined.
    assert_eq!(metrics.total.count(), log.len() as u64);
    assert!(metrics.total.p50().unwrap() > 0);
    assert!(metrics.total.p95().unwrap() >= metrics.total.p50().unwrap());
    assert!(metrics.total.p99().unwrap() >= metrics.total.p95().unwrap());
    // Every event records every phase (skipped phases record 0 ns, in
    // bucket 0), so the per-phase counts also equal the request count.
    assert_eq!(metrics.forward.count(), log.len() as u64);
    assert_eq!(metrics.snapshot.count(), log.len() as u64);
    // The pre-blocked request never reached the cloud: at least one
    // forward sample is an exact 0.
    assert!(metrics
        .forward
        .nonzero_buckets()
        .iter()
        .any(|&(le, _)| le == 0));
}

#[test]
fn event_tail_mirrors_the_log_in_order() {
    let (monitor, pid) = mixed_scenario_monitor();
    let events = monitor.events().tail(100);
    let log = monitor.log();
    assert_eq!(events.len(), log.len());
    for (event, record) in events.iter().zip(&log) {
        assert_eq!(event.path, record.path);
        assert_eq!(event.verdict, record.verdict.to_string());
        assert_eq!(event.requirements, record.requirements);
        assert_eq!(event.status, record.status.0);
        assert_eq!(event.violation, record.verdict.is_violation());
    }
    // Sequence numbers are emission-ordered.
    let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
    assert_eq!(seqs, vec![0, 1, 2, 3]);
    // The modelled requests carry their resolved route; the identity
    // call does not.
    assert_eq!(
        events[0].route.as_deref(),
        Some("/v3/{project_id}/volumes/{volume_id}")
    );
    assert!(events[3].route.is_none());
    assert!(events[0].path.contains(&format!("/v3/{pid}")));
    // Total phase time covers the sum of the measured phases.
    for event in &events {
        let t = &event.timings;
        assert!(
            t.total >= t.pre_check + t.forward + t.snapshot + t.post_check,
            "{t:?}"
        );
    }
}

#[test]
fn admin_endpoints_serve_live_metrics_over_http() {
    // Cloud behind HTTP, monitor proxy with admin routes in front.
    let cloud = Arc::new(PrivateCloud::my_project());
    let pid = cloud.project_id();
    let cloud_handle = Arc::clone(&cloud);
    let cloud_server =
        HttpServer::bind("127.0.0.1:0", Arc::new(move |req| cloud_handle.call(&req)))
            .expect("bind cloud");

    let mut monitor = CloudMonitor::generate(
        &cinder::resource_model(),
        &cinder::behavioral_model(),
        None,
        RemoteService::new(cloud_server.local_addr()),
    )
    .expect("generates")
    .mode(Mode::Enforce);
    monitor
        .authenticate("alice", "alice-pw")
        .expect("authenticates");
    let admin = AdminRoutes::new(monitor.metrics(), monitor.events());
    let monitor = Arc::new(monitor);
    let monitor_handle = Arc::clone(&monitor);
    let monitor_server = HttpServer::bind(
        "127.0.0.1:0",
        admin.wrap(Arc::new(move |req| monitor_handle.call(&req))),
    )
    .expect("bind monitor");
    let cm = monitor_server.local_addr();

    // Drive traffic through the proxy: one auth (unmodelled), one
    // create (pass), one forbidden delete (pre-blocked).
    let auth = send(
        cm,
        &RestRequest::new(HttpMethod::Post, "/identity/auth/tokens").json(Json::object(vec![(
            "auth",
            Json::object(vec![
                ("user", Json::Str("alice".into())),
                ("password", Json::Str("alice-pw".into())),
            ]),
        )])),
    )
    .expect("auth over TCP");
    let token = auth
        .body
        .unwrap()
        .get("token")
        .unwrap()
        .get("id")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    let carol_auth = send(
        cm,
        &RestRequest::new(HttpMethod::Post, "/identity/auth/tokens").json(Json::object(vec![(
            "auth",
            Json::object(vec![
                ("user", Json::Str("carol".into())),
                ("password", Json::Str("carol-pw".into())),
            ]),
        )])),
    )
    .expect("carol auth");
    let carol = carol_auth
        .body
        .unwrap()
        .get("token")
        .unwrap()
        .get("id")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    let created = send(
        cm,
        &RestRequest::new(HttpMethod::Post, format!("/v3/{pid}/volumes"))
            .auth_token(&token)
            .json(volume_body("observed")),
    )
    .expect("create over TCP");
    assert_eq!(created.status, StatusCode::CREATED);
    let denied = send(
        cm,
        &RestRequest::new(HttpMethod::Delete, format!("/v3/{pid}/volumes/1")).auth_token(&carol),
    )
    .expect("denied over TCP");
    assert_eq!(denied.status, StatusCode::PRECONDITION_FAILED);

    // /-/metrics answers with counts that exactly match the log.
    let metrics_response =
        send(cm, &RestRequest::new(HttpMethod::Get, "/-/metrics")).expect("metrics over TCP");
    assert_eq!(metrics_response.status, StatusCode::OK);
    let body = metrics_response.body.expect("metrics body");
    let log = monitor.log();
    let (verdicts, requirements) = recount(&log);
    assert_eq!(
        body.get("requests").unwrap().as_int(),
        Some(log.len() as i64)
    );
    for (label, count) in &verdicts {
        assert_eq!(
            body.get("verdicts")
                .unwrap()
                .get(label)
                .and_then(Json::as_int),
            Some(*count as i64),
            "verdict {label}"
        );
    }
    for (requirement, count) in &requirements {
        assert_eq!(
            body.get("requirements")
                .unwrap()
                .get(requirement)
                .and_then(Json::as_int),
            Some(*count as i64),
            "requirement {requirement}"
        );
    }
    assert!(!requirements.is_empty(), "no requirements exercised");
    // Phase histograms are populated, with percentile summaries.
    let phases = body.get("phases").unwrap();
    for phase in ["pre_check", "forward", "snapshot", "post_check", "total"] {
        let histogram = phases.get(phase).unwrap();
        assert_eq!(
            histogram.get("count").unwrap().as_int(),
            Some(log.len() as i64),
            "phase {phase}"
        );
        for quantile in ["p50_ns", "p95_ns", "p99_ns"] {
            assert!(
                histogram.get(quantile).unwrap().as_int().is_some(),
                "{phase} {quantile}"
            );
        }
    }
    assert!(
        phases
            .get("total")
            .unwrap()
            .get("p50_ns")
            .unwrap()
            .as_int()
            .unwrap()
            > 0
    );

    // /-/events serves the most recent events, honouring tail.
    let events_response =
        send(cm, &RestRequest::new(HttpMethod::Get, "/-/events?tail=2")).expect("events over TCP");
    let events_body = events_response.body.expect("events body");
    let events = events_body.get("events").unwrap().as_array().unwrap();
    assert_eq!(events.len(), 2);
    assert_eq!(
        events[1].get("path").unwrap().as_str(),
        Some(format!("/v3/{pid}/volumes/1").as_str())
    );
    assert_eq!(
        events[1].get("verdict").unwrap().as_str(),
        Some("pre-blocked")
    );
    assert_eq!(events_body.get("dropped").unwrap().as_int(), Some(0));

    // Unknown admin paths 404 without reaching the monitor.
    let before = monitor.log().len();
    let missing = send(cm, &RestRequest::new(HttpMethod::Get, "/-/nope")).expect("404 over TCP");
    assert_eq!(missing.status, StatusCode::NOT_FOUND);
    assert_eq!(monitor.log().len(), before);

    monitor_server.shutdown();
    cloud_server.shutdown();
}
