//! Streaming-tail integration: `/-/events/stream` over a real
//! [`cm_audit::AuditLog`] wired through [`cm_httpkit::AdminRoutes`].
//!
//! The contract under test: a slow or disconnected consumer never
//! blocks the writer or the serve path — the in-memory tail is bounded,
//! overruns are reported as `lagged` (and counted under
//! `audit.stream_lagged` in `/-/metrics`), and a reconnecting consumer
//! resumes from its last acked `next` cursor without gaps or
//! duplicates.

use cm_audit::{
    AuditLog, AuditLogOptions, AuditRecord, EnvProvenance, EnvSnapshot, MonitorMode, ReplayContext,
    VerdictCode,
};
use cm_httpkit::AdminRoutes;
use cm_model::HttpMethod;
use cm_obs::{MetricsRegistry, NullSink, TailStream};
use cm_rest::{Json, RestRequest, RestResponse, StatusCode};
use std::fs;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn record(i: u64) -> AuditRecord {
    AuditRecord {
        seq: i,
        ts_nanos: i,
        method: "PUT".into(),
        path: format!("/v3/1/volumes/{i}"),
        route: None,
        trigger: Some(("PUT".into(), "volume".into())),
        mode: MonitorMode::Enforce,
        degraded_policy: "fail-closed".into(),
        verdict: VerdictCode::Pass,
        requirements: vec!["1.1".into()],
        status: 200,
        diagnostics: String::new(),
        context: ReplayContext::Checked {
            pre_env: EnvSnapshot::default(),
            post_env: None,
            post_partial: false,
            probe_denials: vec![],
            forwarded: true,
            cloud_status: Some(200),
            provenance: EnvProvenance::default(),
        },
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cm-audit-stream-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn options(tail_capacity: usize) -> AuditLogOptions {
    AuditLogOptions {
        segment_max_bytes: 1024 * 1024,
        max_segments: 4,
        channel_capacity: 1024,
        group_max: 16,
        tail_capacity,
        fsync: false, // logic-only tests; durability is covered elsewhere
        ..AuditLogOptions::default()
    }
}

/// A monitor-shaped admin stack: metrics + events + the audit stream.
fn stack(tag: &str, tail_capacity: usize) -> (Arc<AuditLog>, Arc<MetricsRegistry>, AdminRoutes) {
    let metrics = Arc::new(MetricsRegistry::new());
    let (log, _report) = AuditLog::open(
        &tmp_dir(tag),
        options(tail_capacity),
        Some(Arc::clone(&metrics)),
    )
    .expect("open log");
    let log = Arc::new(log);
    let routes = AdminRoutes::new(Arc::clone(&metrics), Arc::new(NullSink))
        .with_stream(Arc::clone(&log) as Arc<dyn TailStream>);
    (log, metrics, routes)
}

fn get(routes: &AdminRoutes, path: &str) -> RestResponse {
    routes
        .try_handle(&RestRequest::new(HttpMethod::Get, path))
        .expect("admin route handled")
}

fn batch_field(body: &Json, field: &str) -> i64 {
    body.get(field)
        .and_then(Json::as_int)
        .unwrap_or_else(|| panic!("missing {field} in {body:?}"))
}

fn batch_offsets(body: &Json) -> Vec<i64> {
    body.get("records")
        .and_then(Json::as_array)
        .expect("records array")
        .iter()
        .map(|r| r.get("offset").and_then(Json::as_int).expect("offset"))
        .collect()
}

#[test]
fn slow_consumer_sees_bounded_lag_and_metrics_count_it() {
    let (log, _metrics, routes) = stack("lag", 8);
    for i in 0..50 {
        log.append(record(i));
    }
    log.flush().unwrap();
    assert_eq!(log.committed(), 50);

    // A consumer that never kept up asks from 0: the ring only holds
    // the last 8, so the gap is reported as `lagged`, never served as
    // stale or invented data.
    let resp = get(&routes, "/-/events/stream?from=0&max=100");
    assert_eq!(resp.status, StatusCode::OK);
    let body = resp.body.unwrap();
    assert_eq!(batch_field(&body, "end"), 50);
    assert_eq!(batch_field(&body, "start"), 42);
    assert_eq!(batch_field(&body, "lagged"), 42);
    assert_eq!(batch_field(&body, "next"), 50);
    let offsets = batch_offsets(&body);
    assert_eq!(offsets, (42..50).collect::<Vec<i64>>());

    // The overrun is visible to operators in /-/metrics.
    let metrics_body = get(&routes, "/-/metrics").body.unwrap();
    let audit = metrics_body.get("audit").expect("audit family");
    assert_eq!(
        audit.get("stream_lagged").and_then(Json::as_int),
        Some(42),
        "dropped stream records must be counted: {audit:?}"
    );
    assert_eq!(audit.get("appended").and_then(Json::as_int), Some(50));
}

#[test]
fn parked_long_poll_never_blocks_the_writer() {
    let (log, _metrics, routes) = stack("park", 64);
    for i in 0..3 {
        log.append(record(i));
    }
    log.flush().unwrap();

    // Park a consumer at the head with a generous wait budget.
    let routes = Arc::new(routes);
    let parked_routes = Arc::clone(&routes);
    let parked = std::thread::spawn(move || {
        get(
            &parked_routes,
            "/-/events/stream?from=3&max=10&wait_ms=10000",
        )
    });
    // Give the long-poll a moment to actually park.
    std::thread::sleep(Duration::from_millis(50));

    // The writer must proceed at full speed while the consumer waits.
    let started = Instant::now();
    for i in 3..20 {
        log.append(record(i));
    }
    log.flush().unwrap();
    assert_eq!(log.committed(), 20);
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "writer stalled behind a parked long-poll"
    );

    // The parked consumer wakes on commit with the new records — it
    // did not time out and it resumes exactly at its cursor.
    let resp = parked.join().expect("long-poll thread");
    let body = resp.body.unwrap();
    assert_eq!(batch_field(&body, "start"), 3);
    assert_eq!(batch_field(&body, "lagged"), 0);
    let offsets = batch_offsets(&body);
    assert!(!offsets.is_empty(), "long-poll woke with no records");
    assert_eq!(offsets[0], 3);
}

#[test]
fn reconnect_resumes_from_last_acked_cursor() {
    let (log, _metrics, routes) = stack("resume", 64);
    for i in 0..10 {
        log.append(record(i));
    }
    log.flush().unwrap();

    // Page through with a small window, acking `next` each time —
    // exactly what a reconnecting consumer persists.
    let mut cursor = 0i64;
    let mut seen = Vec::new();
    loop {
        let resp = get(&routes, &format!("/-/events/stream?from={cursor}&max=4"));
        let body = resp.body.unwrap();
        let offsets = batch_offsets(&body);
        if offsets.is_empty() {
            break;
        }
        assert_eq!(offsets[0], cursor, "resume must continue at the cursor");
        seen.extend(offsets);
        cursor = batch_field(&body, "next");
    }
    assert_eq!(seen, (0..10).collect::<Vec<i64>>(), "gaps or duplicates");

    // "Disconnect", commit more, reconnect from the acked cursor: only
    // the new records arrive, in order, with no replays of old ones.
    for i in 10..15 {
        log.append(record(i));
    }
    log.flush().unwrap();
    let resp = get(&routes, &format!("/-/events/stream?from={cursor}&max=100"));
    let body = resp.body.unwrap();
    assert_eq!(batch_field(&body, "lagged"), 0);
    assert_eq!(batch_offsets(&body), (10..15).collect::<Vec<i64>>());
    assert_eq!(batch_field(&body, "next"), 15);

    // A cursor past the head (e.g. acked just before a crash that lost
    // an uncommitted group) clamps cleanly instead of erroring.
    let resp = get(&routes, "/-/events/stream?from=999&max=10");
    let body = resp.body.unwrap();
    assert_eq!(batch_field(&body, "next"), 15);
    assert!(batch_offsets(&body).is_empty());
}
