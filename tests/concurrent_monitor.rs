//! Concurrency battery for the shared-state monitor.
//!
//! `CloudMonitor::process` takes `&self`: one monitor instance serves
//! many threads at once, serializing only per resource shard. These
//! tests hammer a shared monitor — over a live TCP server and
//! in-process — and assert that nothing deadlocks, every request is
//! accounted for exactly once, and fault verdicts stay attributed to
//! the requests that caused them.

use cm_cloudsim::{Fault, FaultPlan, PrivateCloud};
use cm_core::{cinder_monitor, CloudMonitor, Mode, Verdict};
use cm_httpkit::{ClientConfig, HttpServer, PooledClient, RemoteService, ServerConfig};
use cm_model::{cinder, HttpMethod};
use cm_rest::{Json, RestRequest, SharedRestService};
use std::sync::Arc;
use std::time::Duration;

fn volume_body(name: &str) -> Json {
    Json::object(vec![(
        "volume",
        Json::object(vec![
            ("name", Json::Str(name.into())),
            ("size", Json::Int(1)),
        ]),
    )])
}

/// 8 client threads × 200 requests through a live `HttpServer` in front
/// of a shared (un-mutexed) monitor. Every request must come back
/// well-formed, and the monitor's own accounting — log, per-verdict
/// metrics, event sink including its `dropped` counter — must sum to
/// exactly the 1600 requests sent.
///
/// The clients share one `PooledClient`, so the whole soak must ride on
/// a handful of keep-alive connections and the server's bounded worker
/// pool — not 1600 connects or 1600 threads.
#[test]
fn soak_eight_threads_against_live_server() {
    const THREADS: usize = 8;
    const REQUESTS_PER_THREAD: usize = 200;
    const TOTAL: u64 = (THREADS * REQUESTS_PER_THREAD) as u64;

    let cloud = PrivateCloud::my_project();
    let pid = cloud.project_id();
    let alice = cloud.issue_token("alice", "alice-pw").unwrap().token;
    let carol = cloud.issue_token("carol", "carol-pw").unwrap().token;
    cloud
        .state_mut()
        .create_volume(pid, "seed", 1, false)
        .unwrap();

    let mut monitor = cinder_monitor(cloud).unwrap().mode(Mode::Enforce);
    monitor.authenticate("alice", "alice-pw").unwrap();
    // Grab the shared observability handles before sharing the monitor.
    let metrics = monitor.metrics();
    let events = monitor.events();
    let monitor = Arc::new(monitor);

    let handler = Arc::clone(&monitor);
    let server = HttpServer::bind("127.0.0.1:0", Arc::new(move |req| handler.call(&req)))
        .expect("bind monitor server");
    let addr = server.local_addr();
    let client = Arc::new(PooledClient::default());

    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let alice = alice.clone();
            let carol = carol.clone();
            let client = Arc::clone(&client);
            std::thread::spawn(move || {
                for i in 0..REQUESTS_PER_THREAD {
                    let req = match (t + i) % 3 {
                        // Authorized read of the seeded volume: pass.
                        0 => RestRequest::new(HttpMethod::Get, format!("/v3/{pid}/volumes/1"))
                            .auth_token(&alice),
                        // Forbidden delete: pre-blocked, volume survives.
                        1 => RestRequest::new(HttpMethod::Delete, format!("/v3/{pid}/volumes/1"))
                            .auth_token(&carol),
                        // Outside the model: transparent proxying.
                        _ => RestRequest::new(HttpMethod::Get, format!("/unmodelled/{t}/{i}")),
                    };
                    let resp = client.request(addr, &req).expect("live response");
                    assert!(resp.status.0 >= 100, "malformed status: {resp:?}");
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("no client thread panicked");
    }

    // Keep-alive transport: 1600 requests must not mean 1600 connects,
    // and the server's thread budget — pool workers or reactor shards —
    // stays at its configured bound instead of a thread per connection.
    assert!(
        server.connections_accepted() <= (THREADS as u64) + 2,
        "soak should ride on at most one connection per client thread, got {}",
        server.connections_accepted()
    );
    assert!(
        (1..=ServerConfig::default().workers).contains(&server.worker_count()),
        "dispatch thread budget must stay bounded, got {}",
        server.worker_count()
    );
    server.shutdown();

    // Exactly one log record and one metrics observation per request.
    let log = monitor.log();
    assert_eq!(log.len() as u64, TOTAL);
    assert_eq!(metrics.requests(), TOTAL);
    let verdict_sum: u64 = metrics.verdicts.snapshot().iter().map(|(_, n)| n).sum();
    assert_eq!(verdict_sum, TOTAL, "per-verdict counts must sum to total");

    // The bounded event sink dropped the overflow and kept the rest:
    // retained + dropped covers every request, nothing double-counted.
    let retained = events.tail(usize::MAX).len() as u64;
    assert_eq!(events.dropped() + retained, TOTAL);

    // Global sequence numbers are unique, and the merged log is sorted.
    let seqs: Vec<u64> = log.iter().map(|r| r.seq).collect();
    let mut sorted = seqs.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len() as u64, TOTAL, "seq numbers must be unique");
    assert!(seqs.windows(2).all(|w| w[0] < w[1]), "log sorted by seq");

    // The verdict mix is the expected one: no violations on a correct
    // cloud, and the pre-blocked deletes never reached it.
    assert!(
        log.iter().all(|r| !r.verdict.is_violation()),
        "no false positives"
    );
    assert!(monitor
        .cloud()
        .state()
        .project(pid)
        .unwrap()
        .volumes
        .iter()
        .any(|v| v.id == 1));
}

/// Fault injection under concurrency: a lost-update fault on volume
/// creation in one project, while other threads read volumes in other
/// projects. Every post-violation must be attributed to a faulty POST
/// — never to a concurrent read — proving one request's snapshots do
/// not leak into another's post-condition, and per-project log order
/// must follow the global sequence numbers.
#[test]
fn fault_verdicts_stay_attributed_under_concurrency() {
    const WRITERS: usize = 2;
    const READERS: usize = 2;
    const OPS: usize = 30;

    let plan = FaultPlan::single(Fault::DropStateChange {
        action: "volume:post".into(),
    });
    let cloud = PrivateCloud::multi_project(4).with_faults(plan);
    // Seed one readable volume in each reader project (2 and 3).
    for pid in [2u64, 3] {
        cloud
            .state_of(pid)
            .create_volume(pid, "seed", 1, false)
            .unwrap();
    }
    let writer_token = cloud
        .issue_token_scoped("alice", "alice-pw", 1)
        .unwrap()
        .token;
    let reader_tokens: Vec<String> = [2u64, 3]
        .iter()
        .map(|pid| {
            cloud
                .issue_token_scoped("alice", "alice-pw", *pid)
                .unwrap()
                .token
        })
        .collect();

    let mut monitor = CloudMonitor::generate(
        &cinder::resource_model(),
        &cinder::behavioral_model(),
        None,
        cloud,
    )
    .unwrap()
    .mode(Mode::Observe);
    for pid in 1..=3 {
        monitor
            .authenticate_scoped("alice", "alice-pw", pid)
            .unwrap();
    }
    let monitor = Arc::new(monitor);

    let mut workers = Vec::new();
    for w in 0..WRITERS {
        let monitor = Arc::clone(&monitor);
        let token = writer_token.clone();
        workers.push(std::thread::spawn(move || {
            for i in 0..OPS {
                let outcome = monitor.process(
                    &RestRequest::new(HttpMethod::Post, "/v3/1/volumes")
                        .auth_token(&token)
                        .json(volume_body(&format!("lost-{w}-{i}"))),
                );
                // The faulty cloud claims success but drops the write:
                // this exact request must be flagged.
                assert_eq!(outcome.verdict, Verdict::PostViolation, "{outcome:?}");
            }
        }));
    }
    for (r, reader_token) in reader_tokens.iter().enumerate().take(READERS) {
        let monitor = Arc::clone(&monitor);
        let pid = r as u64 + 2;
        let token = reader_token.clone();
        workers.push(std::thread::spawn(move || {
            for _ in 0..OPS {
                let outcome = monitor.process(
                    &RestRequest::new(HttpMethod::Get, format!("/v3/{pid}/volumes/{}", pid))
                        .auth_token(&token),
                );
                // Reads in healthy projects must never inherit the
                // writer project's violation.
                assert_eq!(outcome.verdict, Verdict::Pass, "{outcome:?}");
            }
        }));
    }
    for w in workers {
        w.join().expect("no worker panicked");
    }

    let log = monitor.log();
    assert_eq!(log.len(), WRITERS * OPS + READERS * OPS);
    let posts: Vec<_> = log
        .iter()
        .filter(|r| r.method == HttpMethod::Post)
        .collect();
    assert_eq!(posts.len(), WRITERS * OPS);
    assert!(
        posts
            .iter()
            .all(|r| r.verdict == Verdict::PostViolation && r.path == "/v3/1/volumes"),
        "every post-violation belongs to the faulty project-1 POSTs"
    );
    assert!(
        log.iter()
            .filter(|r| r.method == HttpMethod::Get)
            .all(|r| r.verdict == Verdict::Pass),
        "no violation leaked into a concurrent read"
    );
    // Same-resource requests keep serial order: within each project the
    // global seq numbers of its records are strictly increasing.
    for pid in 1..=3u64 {
        let prefix = format!("/v3/{pid}/");
        let seqs: Vec<u64> = log
            .iter()
            .filter(|r| r.path.starts_with(&prefix))
            .map(|r| r.seq)
            .collect();
        assert!(
            seqs.windows(2).all(|w| w[0] < w[1]),
            "project {pid} log out of order: {seqs:?}"
        );
    }
}

/// Backend flap under concurrency: the cloud dies mid-soak and comes
/// back. While it is down every request must come out `Degraded` —
/// never a violation, never a false pass — and once it is back the very
/// first request must recover through a single half-open breaker probe.
/// The verdict ledger is exact: healthy passes + degraded outage
/// requests + recovery + post-recovery passes account for every request.
#[test]
fn backend_flap_yields_exact_degraded_and_pass_counts() {
    const THREADS: usize = 4;
    const HEALTHY: usize = 3; // requests per thread, phase 1
    const OUTAGE: usize = 3; // requests per thread, phase 2
    const RECOVERED: usize = 3; // requests per thread, phase 4

    let cloud = Arc::new(PrivateCloud::my_project());
    let pid = cloud.project_id();
    let alice = cloud.issue_token("alice", "alice-pw").unwrap().token;
    cloud
        .state_mut()
        .create_volume(pid, "seed", 1, false)
        .unwrap();

    let handle = Arc::clone(&cloud);
    let server = HttpServer::bind("127.0.0.1:0", Arc::new(move |req| handle.call(&req)))
        .expect("bind cloud server");
    let addr = server.local_addr();

    // Fail fast during the outage: no retries, tight deadline, breaker
    // trips after 2 fresh failures and probes again after 150ms.
    let client = Arc::new(PooledClient::new(ClientConfig {
        read_timeout: Duration::from_millis(200),
        request_deadline: Duration::from_millis(500),
        max_retries: 0,
        breaker_threshold: 2,
        breaker_cooldown: Duration::from_millis(150),
        ..ClientConfig::default()
    }));
    let mut monitor = cinder_monitor(RemoteService::with_client(addr, Arc::clone(&client)))
        .unwrap()
        .mode(Mode::Enforce);
    monitor.authenticate("alice", "alice-pw").unwrap();
    let monitor = Arc::new(monitor);

    fn read_req(pid: u64, token: &str) -> RestRequest {
        RestRequest::new(HttpMethod::Get, format!("/v3/{pid}/volumes/1")).auth_token(token)
    }
    let run_phase = |per_thread: usize| {
        let workers: Vec<_> = (0..THREADS)
            .map(|_| {
                let monitor = Arc::clone(&monitor);
                let token = alice.clone();
                std::thread::spawn(move || {
                    (0..per_thread)
                        .map(|_| monitor.process(&read_req(pid, &token)).verdict)
                        .collect::<Vec<Verdict>>()
                })
            })
            .collect();
        workers
            .into_iter()
            .flat_map(|w| w.join().expect("no worker panicked"))
            .collect::<Vec<Verdict>>()
    };

    // Phase 1 — healthy backend: every authorized read passes.
    let healthy = run_phase(HEALTHY);
    assert!(
        healthy.iter().all(|v| *v == Verdict::Pass),
        "healthy phase: {healthy:?}"
    );

    // Phase 2 — the backend dies. Every request degrades; none may be
    // classified as a contract violation and none may falsely pass.
    server.shutdown();
    let outage = run_phase(OUTAGE);
    assert!(
        outage.iter().all(|v| *v == Verdict::Degraded),
        "outage phase must be uniformly degraded: {outage:?}"
    );
    assert!(
        client
            .stats()
            .breaker_opened
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1,
        "the outage must trip the breaker: {:?}",
        client.stats().snapshot()
    );

    // Phase 3 — the backend comes back on the same address. The OS may
    // have reassigned the port meanwhile; bail out gracefully if so.
    let handle = Arc::clone(&cloud);
    let Ok(revived) = HttpServer::bind(addr, Arc::new(move |req| handle.call(&req))) else {
        eprintln!("skipping recovery phases: could not rebind {addr}");
        return;
    };
    std::thread::sleep(Duration::from_millis(300)); // past the cooldown

    // Recovery happens within ONE half-open probe: the first sequential
    // request after the cooldown must already pass.
    let recovery = monitor.process(&read_req(pid, &alice));
    assert_eq!(recovery.verdict, Verdict::Pass, "{recovery:?}");
    assert!(
        client
            .stats()
            .breaker_half_opened
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1
            && client
                .stats()
                .breaker_closed
                .load(std::sync::atomic::Ordering::Relaxed)
                >= 1,
        "recovery must go through a half-open probe: {:?}",
        client.stats().snapshot()
    );

    // Phase 4 — recovered: concurrent reads all pass again.
    let recovered = run_phase(RECOVERED);
    assert!(
        recovered.iter().all(|v| *v == Verdict::Pass),
        "recovered phase: {recovered:?}"
    );

    // Exact ledger: every request is accounted for in the expected bucket.
    let log = monitor.log();
    let total = THREADS * (HEALTHY + OUTAGE + RECOVERED) + 1;
    assert_eq!(log.len(), total);
    let degraded = log
        .iter()
        .filter(|r| r.verdict == Verdict::Degraded)
        .count();
    let passes = log.iter().filter(|r| r.verdict == Verdict::Pass).count();
    assert_eq!(degraded, THREADS * OUTAGE);
    assert_eq!(passes, THREADS * (HEALTHY + RECOVERED) + 1);
    assert!(log.iter().all(|r| !r.verdict.is_violation()));
    revived.shutdown();
}
