//! Robustness soak test: bombard the monitored cloud with randomly
//! generated requests (valid, invalid, malformed paths, wrong tokens,
//! random bodies) and assert the monitor never panics, always answers,
//! and never reports a violation — a correct cloud under arbitrary
//! traffic must not produce false positives.

use cm_cloudsim::PrivateCloud;
use cm_core::{cinder_monitor_extended, Mode, Verdict};
use cm_model::HttpMethod;
use cm_obs::XorShift64Star;
use cm_rest::{Json, RestRequest};

fn random_path(rng: &mut XorShift64Star, pid: u64) -> String {
    let templates = [
        format!("/v3/{pid}"),
        format!("/v3/{pid}/volumes"),
        format!("/v3/{pid}/volumes/{}", rng.gen_usize(0..6)),
        format!("/v3/{pid}/volumes/{}/snapshots", rng.gen_usize(0..6)),
        format!(
            "/v3/{pid}/volumes/{}/snapshots/{}",
            rng.gen_usize(0..6),
            rng.gen_usize(0..6)
        ),
        format!("/v3/{pid}/quota_sets"),
        format!("/v3/{pid}/usergroup"),
        format!("/v3/{}/volumes", rng.gen_usize(0..4)),
        "/v3/not-a-number/volumes".to_string(),
        "/identity/tokens/tok-00000001".to_string(),
        format!("/totally/unknown/{}", rng.gen_usize(0..100)),
        "/".to_string(),
        "/v3".to_string(),
        format!("/v3/{pid}/volumes/999999999999999999999"),
    ];
    templates[rng.gen_usize(0..templates.len())].clone()
}

fn random_body(rng: &mut XorShift64Star) -> Option<Json> {
    match rng.gen_usize(0..4) {
        0 => None,
        1 => Some(Json::object(vec![(
            "volume",
            Json::object(vec![
                ("name", Json::Str(format!("v{}", rng.gen_usize(0..100)))),
                ("size", Json::Int(rng.gen_i64(-5..50))),
            ]),
        )])),
        2 => Some(Json::object(vec![(
            "snapshot",
            Json::object(vec![("name", Json::Str("s".into()))]),
        )])),
        _ => Some(Json::Array(vec![Json::Null, Json::Bool(true)])),
    }
}

#[test]
fn monitor_survives_random_traffic_without_false_positives() {
    let mut rng = XorShift64Star::new(0xC10D_2018);
    let cloud = PrivateCloud::my_project();
    let pid = cloud.project_id();
    let tokens: Vec<String> = ["alice", "bob", "carol", "mallory"]
        .iter()
        .map(|u| cloud.issue_token(u, &format!("{u}-pw")).unwrap().token)
        .collect();
    let mut monitor = cinder_monitor_extended(cloud).unwrap().mode(Mode::Observe);
    monitor.authenticate("alice", "alice-pw").unwrap();

    const ROUNDS: usize = 600;
    for i in 0..ROUNDS {
        let method = HttpMethod::ALL[rng.gen_usize(0..4)];
        let path = random_path(&mut rng, pid);
        let mut req = RestRequest::new(method, path);
        match rng.gen_usize(0..4) {
            0 => {} // no token
            1 => req = req.auth_token("tok-bogus"),
            _ => req = req.auth_token(&tokens[rng.gen_usize(0..tokens.len())]),
        }
        if let Some(body) = random_body(&mut rng) {
            req = req.json(body);
        }
        let outcome = monitor.process(&req);
        assert!(
            !outcome.verdict.is_violation(),
            "false positive at round {i}: {:?} for {:?}",
            monitor.log().last(),
            req
        );
        // ContractError is acceptable only for unparsable ids (bad project
        // id → 400), never for well-formed requests.
        if outcome.verdict == Verdict::ContractError {
            assert_eq!(outcome.response.status.0, 400, "{:?}", monitor.log().last());
        }
    }
    assert_eq!(monitor.log().len(), ROUNDS);
    // The soak exercised a healthy mix of verdict classes.
    let passes = monitor
        .log()
        .iter()
        .filter(|r| r.verdict == Verdict::Pass)
        .count();
    let unmodelled = monitor
        .log()
        .iter()
        .filter(|r| r.verdict == Verdict::NotModelled)
        .count();
    assert!(passes > 50, "only {passes} passes");
    assert!(unmodelled > 20, "only {unmodelled} unmodelled");
}
