//! Property-based corruption battery for the durable audit log
//! (`cargo test --features proptest`; the hermetic default build skips
//! these — deterministic variants live in `cm-audit`'s unit tests).
//!
//! Invariants under test:
//!
//! * the record codec round-trips and re-encodes **byte-identically**
//!   (decode is a left inverse of encode, encode of the decoded value
//!   reproduces the input bytes);
//! * a frame scan over a corrupted stream yields a byte-identical
//!   *prefix* of the original frames — bit flips, truncated length
//!   headers, and torn tails are detected by the CRC/length checks,
//!   never silently decoded;
//! * directory-level recovery of a torn segment returns exactly the
//!   committed prefix and physically truncates the tail, so a
//!   subsequent scan is clean.
#![cfg(feature = "proptest")]

use cm_audit::recover::{segment_file_name, segment_header};
use cm_audit::{
    decode_record, encode_frame, encode_record, next_frame, read_records, recover, AuditRecord,
    EnvProvenance, EnvSnapshot, FrameEnd, MonitorMode, ReplayContext, VerdictCode, FRAME_HEADER,
};
use cm_ocl::{CollectionKind, MapNavigator, ObjRef, Value};
use proptest::prelude::*;
use proptest::BoxedStrategy;

// ---------- strategies -------------------------------------------------

/// `Option<T>` strategy (the vendored shim has no `proptest::option`).
fn option_of<S>(s: S) -> BoxedStrategy<Option<S::Value>>
where
    S: Strategy + 'static,
    S::Value: Clone + 'static,
{
    prop_oneof![Just(None), s.prop_map(Some)]
}

/// One of a fixed set of literal strings (the shim's patterns have no
/// `|` alternation).
fn literal(choices: &'static [&'static str]) -> BoxedStrategy<String> {
    (0..choices.len() as u64)
        .prop_map(move |i| choices[i as usize].to_string())
        .boxed()
}

fn scalar_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Undefined),
        any::<bool>().prop_map(Value::Bool),
        (-1000i64..1000).prop_map(Value::Int),
        (0u32..8000).prop_map(|i| Value::Real(f64::from(i) / 8.0)),
        "[a-z0-9 _-]{0,12}".prop_map(Value::Str),
        ("[a-z]{1,8}", 0u64..64).prop_map(|(class, id)| Value::Obj(ObjRef::new(class, id))),
    ]
}

fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        scalar_value().boxed(),
        (
            prop_oneof![
                Just(CollectionKind::Set),
                Just(CollectionKind::Bag),
                Just(CollectionKind::Sequence),
                Just(CollectionKind::OrderedSet),
            ],
            prop::collection::vec(scalar_value(), 0..5),
        )
            .prop_map(|(kind, elements)| Value::Coll(kind, elements))
            .boxed(),
    ]
}

fn env_snapshot() -> impl Strategy<Value = EnvSnapshot> {
    (
        prop::collection::vec(("[a-z]{1,8}", value()), 0..4),
        prop::collection::vec((("[a-z]{1,6}", 0u64..32), "[a-z]{1,8}", value()), 0..6),
    )
        .prop_map(|(vars, attrs)| {
            let mut nav = MapNavigator::new();
            for (name, v) in vars {
                nav.set_variable(name, v);
            }
            for ((class, id), prop, v) in attrs {
                nav.set_attribute(ObjRef::new(class, id), prop, v);
            }
            EnvSnapshot::capture(&nav)
        })
}

fn verdict() -> impl Strategy<Value = VerdictCode> {
    prop_oneof![
        Just(VerdictCode::Pass),
        Just(VerdictCode::NotModelled),
        Just(VerdictCode::PreBlocked),
        Just(VerdictCode::WrongAcceptance),
        Just(VerdictCode::WrongDenial),
        Just(VerdictCode::PostViolation),
        (100u16..600, 100u16..600)
            .prop_map(|(expected, actual)| VerdictCode::WrongStatus { expected, actual }),
        Just(VerdictCode::ContractError),
        Just(VerdictCode::Degraded),
        Just(VerdictCode::Drift),
    ]
}

fn context() -> impl Strategy<Value = ReplayContext> {
    prop_oneof![
        Just(ReplayContext::Unmodelled),
        (any::<bool>(), option_of(100u16..600)).prop_map(|(enforced, cloud_status)| {
            ReplayContext::MethodNotAllowed {
                enforced,
                cloud_status,
            }
        }),
        Just(ReplayContext::BadTarget),
        (
            any::<bool>(),
            prop::collection::vec("[a-z :/0-9]{0,16}", 0..3),
        )
            .prop_map(|(forwarded, faults)| ReplayContext::DegradedPre { forwarded, faults }),
        Just(ReplayContext::DegradedForward),
        prop::collection::vec("[a-z._0-9]{1,16}", 0..4)
            .prop_map(|attributes| ReplayContext::Drift { attributes }),
        (
            (env_snapshot(), option_of(env_snapshot()), any::<bool>()),
            (
                prop::collection::vec("[a-z :/0-9]{0,16}", 0..3),
                any::<bool>(),
                option_of(100u16..600),
                any::<bool>(),
            ),
        )
            .prop_map(
                |(
                    (pre_env, post_env, post_partial),
                    (probe_denials, forwarded, cloud_status, replica),
                )| {
                    ReplayContext::Checked {
                        pre_env,
                        post_env,
                        post_partial,
                        probe_denials,
                        forwarded,
                        cloud_status,
                        provenance: if replica {
                            EnvProvenance::Replica
                        } else {
                            EnvProvenance::Probe
                        },
                    }
                },
            ),
    ]
}

fn record() -> impl Strategy<Value = AuditRecord> {
    (
        (
            any::<u64>(),
            any::<u64>(),
            literal(&["GET", "PUT", "POST", "DELETE", "PATCH"]),
            "/[a-z0-9/]{0,20}",
        ),
        (
            option_of("/[a-z/]{0,20}"),
            option_of((literal(&["GET", "DELETE"]), "[a-z]{1,8}".boxed())),
            any::<bool>(),
            literal(&["fail-closed", "fail-open:3"]),
        ),
        (
            verdict(),
            prop::collection::vec("[0-9]\\.[0-9]", 0..4),
            100u16..600,
            "[a-z :/0-9]{0,24}",
            context(),
        ),
    )
        .prop_map(
            |(
                (seq, ts_nanos, method, path),
                (route, trigger, observe, degraded_policy),
                (verdict, requirements, status, diagnostics, context),
            )| AuditRecord {
                seq,
                ts_nanos,
                method,
                path,
                route,
                trigger,
                mode: if observe {
                    MonitorMode::Observe
                } else {
                    MonitorMode::Enforce
                },
                degraded_policy,
                verdict,
                requirements,
                status,
                diagnostics,
                context,
            },
        )
}

// ---------- helpers ----------------------------------------------------

/// Scan every clean frame from `bytes`, returning the payloads.
fn scan_frames(bytes: &[u8]) -> (Vec<Vec<u8>>, FrameEnd) {
    let mut offset = 0;
    let mut payloads = Vec::new();
    loop {
        match next_frame(bytes, offset) {
            Ok((payload, consumed)) => {
                payloads.push(payload.to_vec());
                offset = consumed;
            }
            Err(end) => return (payloads, end),
        }
    }
}

fn tmp_dir(tag: &str, case: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "cm-audit-corruption-{tag}-{}-{case}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

// ---------- properties -------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    /// decode(encode(r)) == r, and re-encoding the decoded record
    /// reproduces the payload byte for byte (the determinism the
    /// differential-replay trail depends on).
    fn codec_round_trips_byte_identically(r in record()) {
        let payload = encode_record(&r);
        let decoded = decode_record(&payload).expect("decode of fresh encode");
        prop_assert_eq!(&decoded, &r);
        prop_assert_eq!(encode_record(&decoded), payload);
    }

    /// Framing round-trips: a stream of frames scans back to exactly
    /// the payloads written, ending Clean.
    #[test]
    fn frame_stream_round_trips(records in prop::collection::vec(record(), 1..6)) {
        let mut stream = Vec::new();
        let mut payloads = Vec::new();
        for r in &records {
            let payload = encode_record(r);
            encode_frame(&payload, &mut stream);
            payloads.push(payload);
        }
        let (scanned, end) = scan_frames(&stream);
        prop_assert_eq!(scanned, payloads);
        prop_assert_eq!(end, FrameEnd::Clean);
    }

    /// A truncated stream yields exactly the frames wholly before the
    /// cut — never a partial or invented frame.
    #[test]
    fn truncation_yields_exact_prefix(
        records in prop::collection::vec(record(), 1..6),
        cut_fraction in 0u32..1000,
    ) {
        let mut stream = Vec::new();
        let mut boundaries = Vec::new(); // frame end offsets
        for r in &records {
            let payload = encode_record(r);
            encode_frame(&payload, &mut stream);
            boundaries.push(stream.len());
        }
        let cut = (stream.len() as u64 * u64::from(cut_fraction) / 1000) as usize;
        let (scanned, end) = scan_frames(&stream[..cut]);
        let expected = boundaries.iter().filter(|&&b| b <= cut).count();
        prop_assert_eq!(scanned.len(), expected);
        if boundaries.contains(&cut) || cut == 0 {
            prop_assert_eq!(end, FrameEnd::Clean);
        } else {
            prop_assert!(end == FrameEnd::Torn || end == FrameEnd::BadLength);
        }
    }

    /// A single flipped bit anywhere in the stream is detected: the
    /// scan still yields only byte-identical original frames (a prefix),
    /// and every frame before the flip survives.
    #[test]
    fn bit_flip_never_silently_decodes(
        records in prop::collection::vec(record(), 1..5),
        flip_fraction in 0u32..1000,
        bit in 0u8..8,
    ) {
        let mut stream = Vec::new();
        let mut payloads = Vec::new();
        for r in &records {
            let payload = encode_record(r);
            encode_frame(&payload, &mut stream);
            payloads.push(payload);
        }
        let pos = (stream.len() as u64 * u64::from(flip_fraction) / 1000) as usize;
        let pos = pos.min(stream.len() - 1);
        stream[pos] ^= 1 << bit;

        let (scanned, _end) = scan_frames(&stream);
        // The scan result must be a prefix of the original payloads:
        // corruption truncates, it never fabricates or alters.
        prop_assert!(scanned.len() <= payloads.len());
        // Find which frame the flip landed in; everything before it
        // must be intact.
        let mut offset = 0;
        let mut flipped_frame = payloads.len();
        for (i, payload) in payloads.iter().enumerate() {
            let end = offset + FRAME_HEADER + payload.len();
            if pos < end {
                flipped_frame = i;
                break;
            }
            offset = end;
        }
        prop_assert!(scanned.len() >= flipped_frame);
        for (i, scanned_payload) in scanned.iter().enumerate() {
            prop_assert_eq!(scanned_payload, &payloads[i]);
        }
    }

    /// Directory-level recovery: a segment torn at an arbitrary byte
    /// recovers exactly the committed prefix, truncates the tail on
    /// disk, and a second scan is clean with the same records.
    #[test]
    fn torn_segment_recovers_committed_prefix(
        records in prop::collection::vec(record(), 1..5),
        cut_fraction in 0u32..1000,
        case in any::<u64>(),
    ) {
        let dir = tmp_dir("torn", case);
        let mut bytes = segment_header(0);
        let header_len = bytes.len();
        let mut boundaries = Vec::new();
        for r in &records {
            encode_frame(&encode_record(r), &mut bytes);
            boundaries.push(bytes.len());
        }
        let body = bytes.len() - header_len;
        let cut = header_len + (body as u64 * u64::from(cut_fraction) / 1000) as usize;
        std::fs::write(dir.join(segment_file_name(0)), &bytes[..cut]).unwrap();

        let (recovered, outcome) = recover(&dir).unwrap();
        let expected = boundaries.iter().filter(|&&b| b <= cut).count();
        prop_assert_eq!(recovered.len(), expected);
        for (r, original) in recovered.iter().zip(records.iter()) {
            prop_assert_eq!(r, original);
        }
        prop_assert_eq!(outcome.report.next_offset, expected as u64);
        // The torn tail is physically gone: a plain read now sees the
        // same committed prefix with nothing to truncate.
        let reread = read_records(&dir).unwrap();
        prop_assert_eq!(reread.len(), expected);
        let (again, second) = recover(&dir).unwrap();
        prop_assert_eq!(again.len(), expected);
        prop_assert_eq!(second.report.truncated_bytes, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
