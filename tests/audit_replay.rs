//! Differential replay: a recorded monitor session re-evaluated by
//! [`cm_core::ReplayEngine`] against the *same* contract set must
//! reproduce the verdict sequence exactly — including `Degraded`
//! verdicts and requirement ids — and against a *mutated* contract set
//! must surface diffs, never errors.

use cm_audit::{AuditRecorder, MemoryRecorder, VerdictCode};
use cm_cloudsim::PrivateCloud;
use cm_core::{cinder_monitor, Mode, ReplayEngine, Verdict};
use cm_model::{cinder, HttpMethod};
use cm_rest::{Json, RestRequest, RestResponse, SharedRestService, StatusCode};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Pass-through cloud that, once armed, fails every model-state probe
/// (GETs under `/v3`) with a transport fault — the recorded session's
/// source of honest `Degraded` verdicts.
struct FlakyProbes {
    inner: PrivateCloud,
    armed: AtomicBool,
}

impl SharedRestService for FlakyProbes {
    fn call(&self, request: &RestRequest) -> RestResponse {
        if self.armed.load(Ordering::Relaxed)
            && request.method == HttpMethod::Get
            && request.path.starts_with("/v3")
        {
            return RestResponse::transport_fault(StatusCode::BAD_GATEWAY, "probe fault");
        }
        self.inner.call(request)
    }
}

fn volume_body(name: &str) -> Json {
    Json::object(vec![(
        "volume",
        Json::object(vec![
            ("name", Json::Str(name.into())),
            ("size", Json::Int(1)),
        ]),
    )])
}

/// Run a monitor_e2e-style session with a tee into [`MemoryRecorder`]
/// and return the captured trace plus the verdicts the live monitor
/// actually returned.
fn recorded_session() -> (Vec<cm_audit::AuditRecord>, Vec<Verdict>) {
    let cloud = PrivateCloud::my_project();
    let pid = cloud.project_id();
    let admin = cloud.issue_token("alice", "alice-pw").unwrap().token;
    let carol = cloud.issue_token("carol", "carol-pw").unwrap().token;
    let seeded = cloud
        .state_mut()
        .create_volume(pid, "s", 1, false)
        .unwrap()
        .id;
    let victim = cloud
        .state_mut()
        .create_volume(pid, "t", 1, false)
        .unwrap()
        .id;

    let recorder = Arc::new(MemoryRecorder::new());
    let mut monitor = cinder_monitor(FlakyProbes {
        inner: cloud,
        armed: AtomicBool::new(false),
    })
    .unwrap()
    .mode(Mode::Enforce)
    .audit_recorder(Arc::clone(&recorder) as Arc<dyn AuditRecorder>);
    monitor.authenticate("alice", "alice-pw").unwrap();

    let mut verdicts = Vec::new();
    let mut run = |req: &RestRequest| {
        verdicts.push(monitor.process(req).verdict);
    };

    // 1. Modelled create: Pass (201).
    run(
        &RestRequest::new(HttpMethod::Post, format!("/v3/{pid}/volumes"))
            .auth_token(&admin)
            .json(volume_body("rec")),
    );
    // 2. Unauthorized delete: PreBlocked (enforce).
    run(
        &RestRequest::new(HttpMethod::Delete, format!("/v3/{pid}/volumes/{seeded}"))
            .auth_token(&carol),
    );
    // 3. Authorized delete: Pass (204).
    run(
        &RestRequest::new(HttpMethod::Delete, format!("/v3/{pid}/volumes/{seeded}"))
            .auth_token(&admin),
    );
    // 4. Unmodelled read (no `limits` resource in the model): proxied.
    run(&RestRequest::new(HttpMethod::Get, format!("/v3/{pid}/limits")).auth_token(&admin));
    // 5. Probes go dark: authorized delete degrades (fail-closed).
    monitor.cloud().armed.store(true, Ordering::Relaxed);
    run(
        &RestRequest::new(HttpMethod::Delete, format!("/v3/{pid}/volumes/{victim}"))
            .auth_token(&admin),
    );

    assert_eq!(
        verdicts,
        vec![
            Verdict::Pass,
            Verdict::PreBlocked,
            Verdict::Pass,
            Verdict::NotModelled,
            Verdict::Degraded,
        ],
        "live session did not produce the expected verdict mix"
    );
    let records = recorder.records();
    assert_eq!(
        records.len(),
        verdicts.len(),
        "one audit record per request"
    );
    (records, verdicts)
}

#[test]
fn replay_against_same_contracts_reproduces_the_session() {
    let (records, verdicts) = recorded_session();
    let mut engine = ReplayEngine::from_behaviors(&[&cinder::behavioral_model()], None)
        .expect("contract generation");
    let report = engine.replay(&records);

    assert!(
        report.is_clean(),
        "replay against the unchanged contract set must be diff-free:\n{}",
        report.to_json().to_pretty_string()
    );
    assert_eq!(report.matched(), records.len());
    // Verdict-for-verdict, including Degraded, and requirement ids.
    for (entry, (record, live)) in report.entries.iter().zip(records.iter().zip(&verdicts)) {
        assert_eq!(entry.recorded, VerdictCode::from(live));
        let replayed = entry.replayed.as_verdict().expect("no indeterminates");
        assert_eq!(replayed, &record.verdict, "seq {}", record.seq);
    }
    // The degraded record carried Table-I requirement ids and replay
    // re-derived the same set (is_clean already compared them; spot-
    // check the traceability id survives the round trip).
    let degraded = records.last().unwrap();
    assert_eq!(degraded.verdict, VerdictCode::Degraded);
    assert!(degraded.requirements.contains(&"1.4".to_string()));
}

#[test]
fn replay_against_mutated_contracts_surfaces_diffs_not_errors() {
    let (records, _) = recorded_session();

    // Invert every transition guard: authority flips, so recorded
    // PreBlocked/Pass verdicts disagree with the new contract set.
    let mut mutated = cinder::behavioral_model();
    for t in &mut mutated.transitions {
        if let Some(g) = t.guard.take() {
            t.guard = Some(g.negate());
        }
    }
    let mut engine =
        ReplayEngine::from_behaviors(&[&mutated], None).expect("mutated set still compiles");
    let report = engine.replay(&records);

    // Diffs, not errors: every record gets a verdict-or-indeterminate
    // entry, the report renders, and at least the authorization
    // decisions flip.
    assert_eq!(report.entries.len(), records.len());
    assert!(
        report.diff_count() > 0,
        "guard inversion must surface diffs:\n{}",
        report.to_json().to_pretty_string()
    );
    let flipped: Vec<&str> = report.diffs().map(|e| e.method.as_str()).collect();
    assert!(
        flipped.contains(&"DELETE") || flipped.contains(&"POST"),
        "expected an authorization flip among the diffs, got {flipped:?}"
    );
    // Structural entries (NotModelled) replay identically even under
    // mutation — the diff set is precise, not everything-differs.
    assert!(report.matched() > 0, "unmodelled entries must still match");
}

#[test]
fn replay_of_empty_trace_is_clean() {
    let mut engine = ReplayEngine::from_behaviors(&[&cinder::behavioral_model()], None)
        .expect("contract generation");
    let report = engine.replay(&[]);
    assert!(report.is_clean());
    assert_eq!(report.matched(), 0);
    assert_eq!(report.diff_count(), 0);
}
