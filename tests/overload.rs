//! Overload-control end-to-end: deadline-aware admission on the
//! reactor transport keeps a saturated server useful instead of
//! uniformly slow.
//!
//! Contracts under test:
//!
//! * a shed storm marks every refusal with `503 X-CM-Overload` — no
//!   silent drops — and the shed observer sees each one;
//! * the admin lane (`/-/health`, `/-/metrics`, `/-/events/stream`)
//!   never sheds, so the node stays observable *while* it is shedding;
//! * with overload control enabled but the server unloaded, responses
//!   are byte-for-byte what the disabled server produces (the feature
//!   is inert until it is needed);
//! * a parked `/-/events/stream` long-poll survives a shed storm and
//!   still receives its records;
//! * a slow-loris connection trickling header bytes is cut by the
//!   read timer at its fixed origin, not re-armed per byte.

#![cfg(unix)]

use cm_audit::{
    AuditLog, AuditLogOptions, AuditRecord, EnvProvenance, EnvSnapshot, MonitorMode, ReplayContext,
    VerdictCode,
};
use cm_httpkit::{
    send, AdminRoutes, HttpServer, OverloadConfig, ServerConfig, ShedDecision, ShedObserver,
    Transport,
};
use cm_model::HttpMethod;
use cm_obs::{BrownoutSignal, Lane, MetricsRegistry, NullSink, OverloadStats, TailStream};
use cm_rest::{Json, RestRequest, RestResponse, StatusCode};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// A single-shard reactor with overload control and a handler that
/// takes `service` per request — the slow backend every storm needs.
fn overload_config(deadline_ms: u64, queue_limit: usize) -> OverloadConfig {
    OverloadConfig {
        enabled: true,
        deadline: Duration::from_millis(deadline_ms),
        queue_limit,
        ..OverloadConfig::default()
    }
}

fn server_config(overload: OverloadConfig) -> ServerConfig {
    ServerConfig {
        transport: Transport::Reactor,
        shards: 1,
        overload,
        ..ServerConfig::default()
    }
}

type ShedLog = Arc<Mutex<Vec<(String, Lane, String)>>>;

fn shed_collector() -> (ShedLog, ShedObserver) {
    let log: ShedLog = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&log);
    let observer = ShedObserver::new(move |request: &RestRequest, decision: &ShedDecision| {
        sink.lock().unwrap().push((
            request.path.clone(),
            decision.lane,
            decision.cause.label().to_string(),
        ));
    });
    (log, observer)
}

#[test]
fn shed_storm_marks_503s_and_never_touches_the_admin_lane() {
    let stats = Arc::new(OverloadStats::new());
    let brownout = Arc::new(BrownoutSignal::new());
    let (shed_log, observer) = shed_collector();
    let mut config = server_config(OverloadConfig {
        stats: Some(Arc::clone(&stats)),
        ..overload_config(25, 512)
    });
    config.shed_observer = Some(observer);

    let metrics = Arc::new(MetricsRegistry::new());
    let admin = AdminRoutes::new(Arc::clone(&metrics), Arc::new(NullSink))
        .with_overload(Arc::clone(&stats), Arc::clone(&brownout));
    let app = Arc::new(|_req: RestRequest| {
        // A slow backend: every request costs real shard time, so
        // concurrent clients build genuine queue wait.
        thread::sleep(Duration::from_millis(3));
        RestResponse::ok(Json::Str("slow".into()))
    });
    let server = HttpServer::bind_with("127.0.0.1:0", admin.wrap(app), config).expect("bind");
    let addr = server.local_addr();

    // The storm: 12 concurrent clients, each a stream of one-shot GETs.
    let stop_health = Arc::new(AtomicBool::new(false));
    let health_stop = Arc::clone(&stop_health);
    let health_poller = thread::spawn(move || {
        let mut bodies = Vec::new();
        while !health_stop.load(Ordering::Relaxed) {
            let resp = send(addr, &RestRequest::new(HttpMethod::Get, "/-/health"))
                .expect("health answers even mid-storm");
            assert_eq!(
                resp.status,
                StatusCode::OK,
                "the admin lane must never shed"
            );
            assert!(!resp.is_overload_shed());
            bodies.push(resp.body.expect("health body"));
            thread::sleep(Duration::from_millis(5));
        }
        bodies
    });
    let storm: Vec<_> = (0..12)
        .map(|_| {
            thread::spawn(move || {
                let mut ok = 0u64;
                let mut shed = 0u64;
                for _ in 0..25 {
                    let resp =
                        send(addr, &RestRequest::new(HttpMethod::Get, "/app")).expect("send");
                    if resp.is_overload_shed() {
                        assert_eq!(resp.status, StatusCode::SERVICE_UNAVAILABLE);
                        shed += 1;
                    } else {
                        assert_eq!(resp.status, StatusCode::OK);
                        ok += 1;
                    }
                }
                (ok, shed)
            })
        })
        .collect();
    let mut total_ok = 0;
    let mut total_shed = 0;
    for worker in storm {
        let (ok, shed) = worker.join().unwrap();
        total_ok += ok;
        total_shed += shed;
    }
    stop_health.store(true, Ordering::Relaxed);
    let health_bodies = health_poller.join().unwrap();
    server.shutdown();

    assert!(total_shed > 0, "storm produced no sheds — not a storm");
    assert!(total_ok > 0, "server stopped serving entirely under load");
    assert_eq!(
        stats.shed(Lane::Admin),
        0,
        "admin lane shed count must be exactly zero"
    );
    assert_eq!(stats.shed_total(), total_shed);
    // Every shed reached the observer, none was an admin route.
    let observed = shed_log.lock().unwrap();
    assert_eq!(observed.len() as u64, total_shed);
    assert!(observed
        .iter()
        .all(|(path, lane, _)| path == "/app" && *lane == Lane::Read));
    // /-/health carried the live machine-readable overload block.
    let last = health_bodies.last().expect("at least one health poll");
    let overload = last.get("overload").expect("overload block in health");
    assert!(overload.get("lane_depths").is_some());
    assert!(overload.get("shed_rate_percent").is_some());
    assert_eq!(
        overload
            .get("brownout")
            .and_then(|b| b.get("step"))
            .and_then(Json::as_int),
        Some(0)
    );
}

#[test]
fn overload_control_is_inert_without_queueing_pressure() {
    // Same app behind two servers: overload enabled vs disabled. A
    // single sequential client never builds queue wait, so every
    // response pair must be identical — statuses, bodies, headers.
    let app = || {
        Arc::new(|req: RestRequest| match req.method {
            HttpMethod::Get => RestResponse::ok(Json::Str(req.path)),
            _ => RestResponse::error(StatusCode::BAD_REQUEST, "writes rejected"),
        })
    };
    let stats = Arc::new(OverloadStats::new());
    let enabled = HttpServer::bind_with(
        "127.0.0.1:0",
        app(),
        server_config(OverloadConfig {
            stats: Some(Arc::clone(&stats)),
            ..overload_config(50, 8)
        }),
    )
    .expect("bind enabled");
    let disabled = HttpServer::bind_with(
        "127.0.0.1:0",
        app(),
        server_config(OverloadConfig::default()),
    )
    .expect("bind disabled");

    for i in 0..40 {
        let request = if i % 3 == 0 {
            RestRequest::new(HttpMethod::Post, format!("/w/{i}"))
        } else {
            RestRequest::new(HttpMethod::Get, format!("/r/{i}"))
        };
        let a = send(enabled.local_addr(), &request).expect("enabled");
        let b = send(disabled.local_addr(), &request).expect("disabled");
        assert_eq!(a.status, b.status, "request {i}");
        assert_eq!(a.body, b.body, "request {i}");
        assert!(!a.is_overload_shed());
    }
    assert_eq!(stats.shed_total(), 0, "no pressure, no sheds");
    assert_eq!(stats.admitted_total(), 40);
    enabled.shutdown();
    disabled.shutdown();
}

fn audit_record(i: u64) -> AuditRecord {
    AuditRecord {
        seq: i,
        ts_nanos: i,
        method: "PUT".into(),
        path: format!("/v3/1/volumes/{i}"),
        route: None,
        trigger: Some(("PUT".into(), "volume".into())),
        mode: MonitorMode::Enforce,
        degraded_policy: "fail-closed".into(),
        verdict: VerdictCode::Pass,
        requirements: vec!["1.1".into()],
        status: 200,
        diagnostics: String::new(),
        context: ReplayContext::Checked {
            pre_env: EnvSnapshot::default(),
            post_env: None,
            post_partial: false,
            probe_denials: vec![],
            forwarded: true,
            cloud_status: Some(200),
            provenance: EnvProvenance::default(),
        },
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cm-overload-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn parked_stream_longpoll_survives_a_shed_storm() {
    let dir = tmp_dir("parked");
    let (log, _report) = AuditLog::open(
        &dir,
        AuditLogOptions {
            fsync: false,
            ..AuditLogOptions::default()
        },
        None,
    )
    .expect("open log");
    let log = Arc::new(log);
    let stats = Arc::new(OverloadStats::new());
    let admin = AdminRoutes::new(Arc::new(MetricsRegistry::new()), Arc::new(NullSink))
        .with_stream(Arc::clone(&log) as Arc<dyn TailStream>)
        .with_overload(Arc::clone(&stats), Arc::new(BrownoutSignal::new()));
    let app = Arc::new(|_req: RestRequest| {
        thread::sleep(Duration::from_millis(3));
        RestResponse::ok(Json::Str("slow".into()))
    });
    let config = server_config(OverloadConfig {
        stats: Some(Arc::clone(&stats)),
        ..overload_config(20, 256)
    });
    let server = HttpServer::bind_with("127.0.0.1:0", admin.wrap(app), config).expect("bind");
    let addr = server.local_addr();

    // Park a long-poll on the empty log; it waits on the shard's timer
    // wheel, outside every run queue.
    let poller = thread::spawn(move || {
        send(
            addr,
            &RestRequest::new(HttpMethod::Get, "/-/events/stream?from=0&wait_ms=5000"),
        )
        .expect("parked poll answers")
    });
    thread::sleep(Duration::from_millis(100));

    // Shed storm around the parked connection.
    let storm: Vec<_> = (0..10)
        .map(|_| {
            thread::spawn(move || {
                let mut shed = 0u64;
                for _ in 0..20 {
                    let resp =
                        send(addr, &RestRequest::new(HttpMethod::Get, "/app")).expect("send");
                    if resp.is_overload_shed() {
                        shed += 1;
                    }
                }
                shed
            })
        })
        .collect();
    let total_shed: u64 = storm.into_iter().map(|t| t.join().unwrap()).sum();

    // The records the parked poller is waiting for arrive after the
    // storm; its connection must still be alive to receive them.
    for i in 0..3 {
        log.append(audit_record(i));
    }
    log.flush().unwrap();
    let resp = poller.join().unwrap();
    server.shutdown();

    assert!(total_shed > 0, "storm produced no sheds");
    assert_eq!(stats.shed(Lane::Admin), 0);
    assert_eq!(resp.status, StatusCode::OK);
    assert!(!resp.is_overload_shed(), "a parked poll must never shed");
    let body = resp.body.expect("stream body");
    let records = body.get("records").and_then(Json::as_array).unwrap();
    assert_eq!(records.len(), 3, "parked poll lost records: {body:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn slow_loris_trickle_is_cut_at_the_read_timers_fixed_origin() {
    let config = ServerConfig {
        transport: Transport::Reactor,
        shards: 1,
        read_timeout: Duration::from_millis(400),
        overload: overload_config(50, 64),
        ..ServerConfig::default()
    };
    let server = HttpServer::bind_with(
        "127.0.0.1:0",
        Arc::new(|_req: RestRequest| RestResponse::ok(Json::Str("ok".into()))),
        config,
    )
    .expect("bind");
    let addr = server.local_addr();

    // Trickle header bytes every 80ms: each write re-enters the read
    // path well inside the 400ms window, so a timer re-armed from
    // `now` would never fire and the connection would live for the
    // full (unbounded) trickle. The fixed-origin timer must cut it
    // ~400ms after the FIRST byte.
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let started = Instant::now();
    let preamble = b"GET /app HTTP/1.1\r\n";
    conn.write_all(preamble).expect("preamble");
    let mut cut_after = None;
    for chunk in b"X-Padding: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
        .chunks(1)
        .cycle()
        .take(100)
    {
        thread::sleep(Duration::from_millis(80));
        if conn.write_all(chunk).and_then(|()| conn.flush()).is_err() {
            cut_after = Some(started.elapsed());
            break;
        }
        // The server answers the timeout with a 400 and closes; a
        // successful local write only proves the socket buffer took
        // the byte, so also probe for the server's goodbye.
        let mut buf = [0u8; 1024];
        conn.set_read_timeout(Some(Duration::from_millis(1)))
            .unwrap();
        match conn.read(&mut buf) {
            Ok(0) => {
                cut_after = Some(started.elapsed());
                break;
            }
            Ok(_) => {
                // Response bytes (the 400) — the server gave up on us.
                cut_after = Some(started.elapsed());
                break;
            }
            Err(_) => {} // nothing yet; keep trickling
        }
    }
    server.shutdown();
    let cut_after = cut_after.expect("trickling connection was never cut");
    assert!(
        cut_after >= Duration::from_millis(300),
        "cut too early ({cut_after:?}) — healthy slow clients must get the full window"
    );
    assert!(
        cut_after < Duration::from_millis(2000),
        "trickle survived {cut_after:?}: read timer was re-armed per byte instead of \
         keeping its origin"
    );
}
