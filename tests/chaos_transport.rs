//! Transport chaos soak: the monitor must keep the two fault families
//! apart end to end.
//!
//! A [`ChaosListener`] proxy between the monitor and its cloud injects
//! wire-level faults (resets, truncated and garbage responses, stalls
//! past the read timeout, gateway 5xx bursts) on a deterministic seeded
//! schedule. The invariants under soak:
//!
//! * an injected **transport** fault must never surface as a pre/post
//!   contract-violation verdict — it degrades ([`Verdict::Degraded`]);
//! * a **semantic** mutant (the paper's Section VI-D faults) over a
//!   healthy transport must never hide behind a degraded verdict — it
//!   still dies as a proper violation.

use cm_audit::{AuditRecorder, MemoryRecorder, ReplayContext, VerdictCode};
use cm_cloudsim::{ChaosListener, ChaosPlan, Fault, FaultPlan, PrivateCloud};
use cm_core::{cinder_monitor, Mode, Verdict};
use cm_httpkit::{ClientConfig, HttpServer, PooledClient, RemoteService, ShedCause, ShedDecision};
use cm_model::HttpMethod;
use cm_obs::{BrownoutSignal, Lane, BROWNOUT_MAX_STEP};
use cm_rest::{Json, RestRequest, SharedRestService, StatusCode};
use std::sync::Arc;
use std::time::Duration;

fn volume_body(name: &str) -> Json {
    Json::object(vec![(
        "volume",
        Json::object(vec![
            ("name", Json::Str(name.into())),
            ("size", Json::Int(1)),
        ]),
    )])
}

/// A client tuned for chaos weather: short read timeout (so stalls cost
/// 100ms, not 10s), a roomy deadline so retries never race the budget
/// (keeping the schedule deterministic), and the breaker disabled —
/// breaker behaviour has its own test; here every scheduled slot must be
/// consumed predictably.
fn chaos_client() -> Arc<PooledClient> {
    Arc::new(PooledClient::new(ClientConfig {
        read_timeout: Duration::from_millis(100),
        request_deadline: Duration::from_secs(5),
        max_retries: 2,
        backoff_base: Duration::from_millis(2),
        backoff_cap: Duration::from_millis(10),
        breaker_threshold: 0,
        ..ClientConfig::default()
    }))
}

/// Cloud behind HTTP, chaos proxy in front, monitor probing and
/// forwarding through the proxy.
fn chaos_stack(
    cloud: Arc<PrivateCloud>,
    plan: ChaosPlan,
) -> (
    HttpServer,
    ChaosListener,
    cm_core::CloudMonitor<RemoteService>,
) {
    let handle = Arc::clone(&cloud);
    let server = HttpServer::bind("127.0.0.1:0", Arc::new(move |req| handle.call(&req)))
        .expect("bind cloud server");
    let proxy = ChaosListener::spawn(server.local_addr(), plan).expect("spawn chaos proxy");
    let mut monitor = cinder_monitor(RemoteService::with_client(
        proxy.local_addr(),
        chaos_client(),
    ))
    .expect("generate monitor")
    .mode(Mode::Observe);
    monitor
        .authenticate("alice", "alice-pw")
        .expect("authenticate through the clean grace slots");
    (server, proxy, monitor)
}

#[test]
fn chaos_soak_never_mislabels_transport_faults_as_violations() {
    let cloud = Arc::new(PrivateCloud::my_project());
    let pid = cloud.project_id();
    let alice = cloud.issue_token("alice", "alice-pw").unwrap().token;
    // A prime-length schedule so cycling never aligns with the request
    // pattern; 15% of slots inject one of the five fault kinds.
    let (server, proxy, monitor) =
        chaos_stack(Arc::clone(&cloud), ChaosPlan::seeded(0xC7A05, 97, 0.15));

    for round in 0..40 {
        // Ground truth read locally — the test owns the cloud; only the
        // monitor's traffic goes through the weather.
        let volumes: Vec<u64> = cloud
            .state()
            .project(pid)
            .unwrap()
            .volumes
            .iter()
            .map(|v| v.id)
            .collect();
        if (volumes.len() as u32) < cm_cloudsim::DEFAULT_VOLUME_QUOTA {
            monitor.process(
                &RestRequest::new(HttpMethod::Post, format!("/v3/{pid}/volumes"))
                    .auth_token(&alice)
                    .json(volume_body(&format!("chaos-{round}"))),
            );
        }
        if let Some(vid) = volumes.first() {
            monitor.process(
                &RestRequest::new(HttpMethod::Delete, format!("/v3/{pid}/volumes/{vid}"))
                    .auth_token(&alice),
            );
        }
    }

    assert!(
        proxy.stats().faults_injected() > 0,
        "the soak must actually exercise injected faults: {:?}",
        proxy.stats().snapshot()
    );
    let log = monitor.log();
    // The one invariant that matters: transport weather never turns into
    // a contract verdict against the cloud.
    assert!(
        log.iter().all(|r| !r.verdict.is_violation()),
        "transport fault surfaced as a violation: {:?}",
        log.iter().find(|r| r.verdict.is_violation())
    );
    let degraded = log
        .iter()
        .filter(|r| r.verdict == Verdict::Degraded)
        .count();
    let passes = log.iter().filter(|r| r.verdict == Verdict::Pass).count();
    assert!(degraded >= 1, "soak injected faults but nothing degraded");
    assert!(passes >= 1, "soak must also see clean passes");
    // Degraded records carry the untested requirement ids (Table I).
    assert!(
        log.iter()
            .filter(|r| r.verdict == Verdict::Degraded && r.method == HttpMethod::Delete)
            .all(|r| r.requirements.contains(&"1.4".to_string())),
        "degraded verdicts must carry their untestable requirements"
    );
    proxy.shutdown();
    server.shutdown();
}

#[test]
fn overload_sheds_interleaved_with_chaos_never_become_violations() {
    // The worst weather: wire faults from the chaos proxy, the brownout
    // ladder climbing and descending mid-soak, and transport-level sheds
    // landing between monitored requests. Three things must stay true
    // throughout: no verdict is ever a violation (neither weather nor
    // shedding incriminates the cloud), every shed reaches the audit
    // trail as `Degraded` with overload provenance, and brownout rungs
    // only gate optional work — they never change how an admitted
    // request is classified.
    let cloud = Arc::new(PrivateCloud::my_project());
    let pid = cloud.project_id();
    let alice = cloud.issue_token("alice", "alice-pw").unwrap().token;
    let handle = Arc::clone(&cloud);
    let server = HttpServer::bind("127.0.0.1:0", Arc::new(move |req| handle.call(&req)))
        .expect("bind cloud server");
    let proxy = ChaosListener::spawn(server.local_addr(), ChaosPlan::seeded(0x0DD10AD, 89, 0.2))
        .expect("spawn chaos proxy");
    let recorder = Arc::new(MemoryRecorder::new());
    let brownout = Arc::new(BrownoutSignal::new());
    let mut monitor = cinder_monitor(RemoteService::with_client(
        proxy.local_addr(),
        chaos_client(),
    ))
    .expect("generate monitor")
    .mode(Mode::Observe)
    .audit_recorder(Arc::clone(&recorder) as Arc<dyn AuditRecorder>)
    .brownout_signal(Arc::clone(&brownout));
    monitor
        .authenticate("alice", "alice-pw")
        .expect("authenticate through the clean grace slots");

    let mut sheds_reported = 0u64;
    for round in 0..40u8 {
        // Walk the whole brownout ladder during the soak: up one rung
        // every five rounds, back down across the last stretch.
        brownout.set_step((round / 5).min(BROWNOUT_MAX_STEP));
        let volumes: Vec<u64> = cloud
            .state()
            .project(pid)
            .unwrap()
            .volumes
            .iter()
            .map(|v| v.id)
            .collect();
        if (volumes.len() as u32) < cm_cloudsim::DEFAULT_VOLUME_QUOTA {
            monitor.process(
                &RestRequest::new(HttpMethod::Post, format!("/v3/{pid}/volumes"))
                    .auth_token(&alice)
                    .json(volume_body(&format!("storm-{round}"))),
            );
        }
        if let Some(vid) = volumes.first() {
            monitor.process(
                &RestRequest::new(HttpMethod::Delete, format!("/v3/{pid}/volumes/{vid}"))
                    .auth_token(&alice),
            );
        }
        // Interleave a transport-level shed every third round, exactly
        // as the reactor's shed observer would deliver it.
        if round % 3 == 0 {
            monitor.record_shed(
                &RestRequest::new(HttpMethod::Get, format!("/v3/{pid}/volumes")).auth_token(&alice),
                &ShedDecision {
                    lane: Lane::Read,
                    queue_wait: Duration::from_millis(42),
                    budget: Duration::from_millis(25),
                    cause: ShedCause::BudgetExhausted,
                },
            );
            sheds_reported += 1;
        }
    }
    brownout.set_step(0);

    assert!(
        proxy.stats().faults_injected() > 0,
        "the soak must actually exercise injected faults"
    );
    // Invariant 1: nothing — weather, rung changes, or sheds — produces
    // a contract violation.
    assert!(
        monitor.log().iter().all(|r| !r.verdict.is_violation()),
        "overload+chaos interleaving surfaced a violation: {:?}",
        monitor.log().iter().find(|r| r.verdict.is_violation())
    );
    // Invariant 2: every shed is on the audit trail as Degraded with
    // overload provenance — never dropped, never anything stronger.
    let records = recorder.records();
    let shed_records: Vec<_> = records
        .iter()
        .filter(|r| match &r.context {
            ReplayContext::DegradedPre { faults, .. } => {
                faults.iter().any(|f| f.contains("overload shed"))
            }
            _ => false,
        })
        .collect();
    assert_eq!(shed_records.len() as u64, sheds_reported, "lost sheds");
    for shed in &shed_records {
        assert_eq!(shed.verdict, VerdictCode::Degraded, "{shed:?}");
        assert_eq!(shed.status, 503);
        assert_eq!(shed.method, "GET");
        match &shed.context {
            ReplayContext::DegradedPre { forwarded, faults } => {
                assert!(!forwarded, "a shed request must never reach the cloud");
                assert!(
                    faults
                        .iter()
                        .any(|f| f.contains("lane=read") && f.contains("cause=budget_exhausted")),
                    "missing overload provenance: {faults:?}"
                );
            }
            other => panic!("shed recorded under the wrong context: {other:?}"),
        }
    }
    // Invariant 3: admitted traffic still produced real verdicts around
    // the sheds — the ladder degraded optional work, not the monitor.
    assert!(
        records
            .iter()
            .any(|r| r.verdict == VerdictCode::Pass && r.method == "POST"),
        "no clean pass recorded during the interleaving"
    );
    proxy.shutdown();
    server.shutdown();
}

#[test]
fn semantic_mutants_still_die_and_never_hide_as_degraded() {
    // Wrong-authorization mutant (the paper's classic): carol may
    // suddenly delete volumes. The transport is healthy — an empty chaos
    // plan forwards every request — so the monitor must classify the
    // mutant as a WrongAcceptance, never as Degraded.
    let plan = FaultPlan::single(Fault::PolicyOverride {
        action: "volume:delete".into(),
        rule: cm_rbac::Rule::Always,
    });
    let cloud = Arc::new(PrivateCloud::my_project().with_faults(plan));
    let pid = cloud.project_id();
    let carol = cloud.issue_token("carol", "carol-pw").unwrap().token;
    cloud.state_mut().create_volume(pid, "v", 1, false).unwrap();
    let (server, proxy, monitor) = chaos_stack(Arc::clone(&cloud), ChaosPlan::cycle(Vec::new()));

    let outcome = monitor.process(
        &RestRequest::new(HttpMethod::Delete, format!("/v3/{pid}/volumes/1")).auth_token(&carol),
    );
    assert_eq!(outcome.verdict, Verdict::WrongAcceptance, "{outcome:?}");
    assert!(
        monitor.log().iter().all(|r| r.verdict != Verdict::Degraded),
        "a semantic mutant must never be reported as transport degradation"
    );
    proxy.shutdown();
    server.shutdown();
}

#[test]
fn wrong_status_mutant_is_not_degraded_over_the_network() {
    // A wrong-success-status mutant: DELETE answers 200 instead of 204.
    // 200 is a success code, not a gateway error, so the transport layer
    // must leave it alone and the contract layer must flag it.
    let plan = FaultPlan::single(Fault::WrongStatusCode {
        action: "volume:delete".into(),
        code: 200,
    });
    let cloud = Arc::new(PrivateCloud::my_project().with_faults(plan));
    let pid = cloud.project_id();
    let alice = cloud.issue_token("alice", "alice-pw").unwrap().token;
    cloud.state_mut().create_volume(pid, "v", 1, false).unwrap();
    let (server, proxy, monitor) = chaos_stack(Arc::clone(&cloud), ChaosPlan::cycle(Vec::new()));

    let outcome = monitor.process(
        &RestRequest::new(HttpMethod::Delete, format!("/v3/{pid}/volumes/1")).auth_token(&alice),
    );
    assert_eq!(outcome.response.status, StatusCode::OK);
    assert!(
        matches!(outcome.verdict, Verdict::WrongStatus { .. }),
        "{outcome:?}"
    );
    assert!(monitor.log().iter().all(|r| r.verdict != Verdict::Degraded));
    proxy.shutdown();
    server.shutdown();
}
