//! Experiment F1 — the full Figure 1/Figure 4 architecture, end to end:
//! design models → validation → XMI interchange → code generation →
//! generated runtime monitor → monitored requests against the simulated
//! private cloud.

use cm_cloudsim::PrivateCloud;
use cm_codegen::{uml2django, Uml2DjangoOptions};
use cm_contracts::{generate, render_listing, TraceabilityMatrix};
use cm_core::{CloudMonitor, Mode, Verdict};
use cm_model::{cinder, validate_behavioral_model, validate_resource_model, HttpMethod, Trigger};
use cm_rbac::cinder_table1;
use cm_rest::{Json, RestRequest};
use cm_xmi::{export, import};

#[test]
fn full_pipeline_from_models_to_monitored_requests() {
    // Step 1: the analyst's models validate.
    let resources = cinder::resource_model();
    let behavior = cinder::behavioral_model();
    assert!(validate_resource_model(&resources).is_valid());
    assert!(validate_behavioral_model(&behavior, Some(&resources)).is_valid());

    // Step 2: XMI interchange is lossless.
    let xmi = export(Some(&resources), &[&behavior]);
    let doc = import(&xmi).expect("exported XMI imports");
    assert_eq!(doc.resources.as_ref(), Some(&resources));
    assert_eq!(doc.behaviors.as_slice(), std::slice::from_ref(&behavior));

    // Step 3: code generation emits the Django artifacts of Listings 2–3.
    let project =
        uml2django("CMonitor", &xmi, &Uml2DjangoOptions::default()).expect("pipeline generates");
    let views = project
        .file("cmonitor/views.py")
        .expect("views.py generated");
    assert!(views.contains("def volume_delete"));
    assert!(views.contains("HttpResponseNotAllowed"));

    // Step 4: the same models drive the native monitor over the cloud.
    let cloud = PrivateCloud::my_project();
    let pid = cloud.project_id();
    let admin = cloud.issue_token("alice", "alice-pw").expect("fixture");
    let user = cloud.issue_token("carol", "carol-pw").expect("fixture");
    let mut monitor = CloudMonitor::generate(
        &doc.resources.expect("resources imported"),
        &doc.behaviors[0],
        None,
        cloud,
    )
    .expect("monitor generates from imported models")
    .mode(Mode::Enforce);
    monitor.authenticate("alice", "alice-pw").expect("fixture");

    let created = monitor.process(
        &RestRequest::new(HttpMethod::Post, format!("/v3/{pid}/volumes"))
            .auth_token(&admin.token)
            .json(Json::object(vec![(
                "volume",
                Json::object(vec![("name", Json::Str("e2e".into()))]),
            )])),
    );
    assert_eq!(created.verdict, Verdict::Pass);

    let blocked = monitor.process(
        &RestRequest::new(HttpMethod::Delete, format!("/v3/{pid}/volumes/1"))
            .auth_token(&user.token),
    );
    assert_eq!(blocked.verdict, Verdict::PreBlocked);

    let deleted = monitor.process(
        &RestRequest::new(HttpMethod::Delete, format!("/v3/{pid}/volumes/1"))
            .auth_token(&admin.token),
    );
    assert_eq!(deleted.verdict, Verdict::Pass);
}

#[test]
fn contracts_match_listing1_shape_after_xmi_roundtrip() {
    let behavior = cinder::behavioral_model();
    let xmi = export(None, &[&behavior]);
    let doc = import(&xmi).expect("imports");
    let set = generate(&doc.behaviors[0]).expect("generates");
    let delete = set
        .contract_for(&Trigger::new(HttpMethod::Delete, "volume"))
        .expect("DELETE modelled");
    assert_eq!(delete.clauses.len(), 3);
    let listing = render_listing(delete, ".../v3/{project_id}/volumes");
    assert!(listing.contains("pre(project.volumes->size())"));
    assert!(listing.contains("user.groups = 'admin'"));
}

#[test]
fn traceability_covers_every_table1_requirement() {
    let set = generate(&cinder::behavioral_model()).expect("generates");
    let matrix = TraceabilityMatrix::from_contracts(&set);
    let table = cinder_table1();
    let specified: Vec<String> = table.requirements.iter().map(|r| r.id.clone()).collect();
    assert!(
        matrix.uncovered(&specified).is_empty(),
        "{}",
        matrix.render()
    );
}

#[test]
fn table1_policy_and_model_guards_agree() {
    // The authorization encoded in the Figure 3 guards must match the
    // Table I policy: generate contracts twice — once from the model's own
    // guards, once with the table woven in — and check both accept/reject
    // the same role vectors.
    use cm_ocl::{EvalContext, MapNavigator, ObjRef, Value};

    let table = cinder_table1();
    let set = generate(&cinder::behavioral_model()).expect("generates");

    for (method, roles_allowed) in [
        (HttpMethod::Get, vec!["admin", "member", "user"]),
        (HttpMethod::Put, vec!["admin", "member"]),
        (HttpMethod::Post, vec!["admin", "member"]),
        (HttpMethod::Delete, vec!["admin"]),
    ] {
        let req = table.requirement_for("volume", method).expect("table row");
        assert_eq!(req.roles(), roles_allowed, "{method}");

        // Build a state where the functional side of the pre-condition
        // holds, then vary the role.
        let contract = set
            .contract_for(&Trigger::new(method, "volume"))
            .expect("modelled");
        for role in ["admin", "member", "user", "intruder"] {
            let mut nav = MapNavigator::new();
            let project = ObjRef::new("project", 1);
            let volume = ObjRef::new("volume", 1);
            let quota = ObjRef::new("quota_sets", 1);
            let user_obj = ObjRef::new("user", 1);
            nav.set_variable("project", project.clone());
            nav.set_variable("volume", volume.clone());
            nav.set_variable("quota_sets", quota.clone());
            nav.set_variable("user", user_obj.clone());
            nav.set_attribute(project.clone(), "id", Value::set(vec![Value::Int(1)]));
            nav.set_attribute(
                project,
                "volumes",
                Value::set(vec![Value::Obj(volume.clone())]),
            );
            nav.set_attribute(volume.clone(), "id", Value::set(vec![Value::Int(1)]));
            nav.set_attribute(volume, "status", "available");
            nav.set_attribute(quota, "volume", 10i64);
            nav.set_attribute(user_obj, "groups", role);

            let model_allows = EvalContext::new(&nav).eval_bool(&contract.pre).unwrap();
            let table_allows = roles_allowed.contains(&role);
            assert_eq!(
                model_allows, table_allows,
                "role `{role}` on {method}(volume): model guard and Table I disagree"
            );
        }
    }
}
