//! Replica-mode end-to-end tests: snapshot-free monitoring against the
//! model-derived shadow replica, anti-entropy drift detection, and the
//! chaos invariant that transport weather during reconciliation makes
//! the replica *stale*, never *wrong*.

use cm_cloudsim::{PrivateCloud, VolumeStatus};
use cm_core::{cinder_monitor, CloudMonitor, Mode, SnapshotPolicy, Verdict};
use cm_model::HttpMethod;
use cm_rest::{Json, RestRequest, RestResponse, SharedRestService, StatusCode};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Shares the in-process cloud with the test while counting backend GETs
/// (the replica's whole point is driving these to zero in steady state)
/// and optionally eating probe-only requests (transport chaos aimed at
/// the anti-entropy path — the `quota_sets` probe is never a forwarded
/// client request, so failing it hits reconciliation and nothing else).
struct Instrumented {
    cloud: Arc<PrivateCloud>,
    gets: Arc<AtomicU64>,
    fail_quota_probes: Arc<AtomicBool>,
}

impl SharedRestService for Instrumented {
    fn call(&self, request: &RestRequest) -> RestResponse {
        if request.method == HttpMethod::Get {
            self.gets.fetch_add(1, Ordering::Relaxed);
            if self.fail_quota_probes.load(Ordering::Relaxed) && request.path.contains("quota_sets")
            {
                return RestResponse::transport_fault(
                    StatusCode::BAD_GATEWAY,
                    "chaos: probe eaten",
                );
            }
        }
        self.cloud.call(request)
    }
}

struct Fixture {
    cloud: Arc<PrivateCloud>,
    monitor: CloudMonitor<Instrumented>,
    gets: Arc<AtomicU64>,
    fail_quota_probes: Arc<AtomicBool>,
    pid: u64,
    vid: u64,
    token: String,
}

fn fixture(anti_entropy_every: u64) -> Fixture {
    let cloud = Arc::new(PrivateCloud::my_project());
    let pid = cloud.project_id();
    let vid = cloud
        .state_mut()
        .create_volume(pid, "seed", 1, false)
        .unwrap()
        .id;
    let token = cloud.issue_token("alice", "alice-pw").unwrap().token;
    let gets = Arc::new(AtomicU64::new(0));
    let fail_quota_probes = Arc::new(AtomicBool::new(false));
    let mut monitor = cinder_monitor(Instrumented {
        cloud: Arc::clone(&cloud),
        gets: Arc::clone(&gets),
        fail_quota_probes: Arc::clone(&fail_quota_probes),
    })
    .unwrap()
    .mode(Mode::Observe)
    .snapshot_policy(SnapshotPolicy::Replica)
    .anti_entropy_every(anti_entropy_every);
    monitor.authenticate("alice", "alice-pw").unwrap();
    Fixture {
        cloud,
        monitor,
        gets,
        fail_quota_probes,
        pid,
        vid,
        token,
    }
}

fn get_volume(f: &Fixture) -> RestRequest {
    RestRequest::new(HttpMethod::Get, format!("/v3/{}/volumes/{}", f.pid, f.vid))
        .auth_token(&f.token)
}

fn drift_records(f: &Fixture) -> Vec<cm_core::MonitorRecord> {
    f.monitor
        .log()
        .into_iter()
        .filter(|r| r.verdict == Verdict::Drift)
        .collect()
}

/// The headline property: after the replica is seeded by the first
/// (miss) request, every further monitored GET costs exactly one
/// backend GET — the forward itself. Zero probe round-trips.
#[test]
fn steady_state_serves_with_zero_probe_gets() {
    let f = fixture(0); // on-demand reconciliation only
                        // First request seeds the replica (probe batch + identity).
    assert_eq!(f.monitor.process(&get_volume(&f)).verdict, Verdict::Pass);
    let seeded = f.gets.load(Ordering::Relaxed);
    assert!(seeded > 1, "seeding must have probed ({seeded} GETs)");
    for _ in 0..10 {
        assert_eq!(f.monitor.process(&get_volume(&f)).verdict, Verdict::Pass);
    }
    let steady = f.gets.load(Ordering::Relaxed) - seeded;
    assert_eq!(steady, 10, "10 monitored GETs must cost 10 backend GETs");
    assert!(drift_records(&f).is_empty());
}

/// Monitored mutations keep the replica in lockstep through the
/// observed request/response transition function: POST then DELETE a
/// volume, each checked against replica state, and a scheduled
/// anti-entropy pass afterwards finds nothing to repair.
#[test]
fn monitored_mutations_keep_replica_in_lockstep() {
    let f = fixture(3);
    assert_eq!(f.monitor.process(&get_volume(&f)).verdict, Verdict::Pass);
    let body = Json::object(vec![(
        "volume",
        Json::object(vec![
            ("name", Json::Str("obs".into())),
            ("size", Json::Int(1)),
        ]),
    )]);
    let post = RestRequest::new(HttpMethod::Post, format!("/v3/{}/volumes", f.pid))
        .auth_token(&f.token)
        .json(body);
    let created = f.monitor.process(&post);
    assert_eq!(created.verdict, Verdict::Pass, "{created:?}");
    let new_vid = created
        .response
        .body
        .unwrap()
        .get("volume")
        .unwrap()
        .get("id")
        .unwrap()
        .as_int()
        .unwrap() as u64;
    let del = RestRequest::new(
        HttpMethod::Delete,
        format!("/v3/{}/volumes/{new_vid}", f.pid),
    )
    .auth_token(&f.token);
    assert_eq!(f.monitor.process(&del).verdict, Verdict::Pass);
    // Ride through at least two scheduled anti-entropy passes: a replica
    // kept honest by transitions alone has nothing drift.
    for _ in 0..8 {
        assert_eq!(f.monitor.process(&get_volume(&f)).verdict, Verdict::Pass);
    }
    assert!(drift_records(&f).is_empty(), "{:?}", drift_records(&f));
}

/// A silent out-of-band cloud edit (no monitored request ever saw it)
/// must surface as exactly one `Verdict::Drift` detection within one
/// anti-entropy period, naming the mutated attribute and the security
/// requirements whose contracts read it — and the repair restores
/// parity, so later passes stay quiet.
#[test]
fn out_of_band_mutation_is_detected_attributed_and_repaired() {
    let f = fixture(3);
    // Seed, then a couple of steady-state serves.
    for _ in 0..2 {
        assert_eq!(f.monitor.process(&get_volume(&f)).verdict, Verdict::Pass);
    }
    // An operator edits the database behind the monitored API.
    let (pid, vid) = (f.pid, f.vid);
    f.cloud.mutate_out_of_band(pid, |state| {
        state.volume_mut(pid, vid).unwrap().status = VolumeStatus::Error;
    });
    // Within one anti-entropy period (3 replica serves) the scheduled
    // pass diffs replica against cloud and reports the edit.
    for _ in 0..3 {
        let outcome = f.monitor.process(&get_volume(&f));
        assert!(!outcome.verdict.is_violation(), "{outcome:?}");
    }
    let drifts = drift_records(&f);
    assert_eq!(drifts.len(), 1, "{drifts:?}");
    assert!(
        drifts[0].diagnostics.contains("volume.status"),
        "drift must name the mutated attribute: {:?}",
        drifts[0]
    );
    // volume.status is read by the DELETE volume pre-condition, so the
    // detection is traceable to that contract's requirements.
    assert!(
        !drifts[0].requirements.is_empty(),
        "drift must attribute requirements: {:?}",
        drifts[0]
    );
    // The same pass repaired the replica: further periods stay quiet and
    // verdicts agree with the (now error-status) cloud.
    for _ in 0..6 {
        assert_eq!(f.monitor.process(&get_volume(&f)).verdict, Verdict::Pass);
    }
    assert_eq!(drift_records(&f).len(), 1, "repair must restore parity");
}

/// Chaos invariant: transport faults during anti-entropy reconciliation
/// degrade the verdict and mark the replica stale — they never surface
/// as contract violations and never fabricate drift.
#[test]
fn probe_faults_during_anti_entropy_degrade_and_never_fabricate_drift() {
    let f = fixture(2);
    assert_eq!(f.monitor.process(&get_volume(&f)).verdict, Verdict::Pass);
    // Storm: every probe-only request fails at the wire.
    f.fail_quota_probes.store(true, Ordering::Relaxed);
    let mut saw_degraded = false;
    for _ in 0..6 {
        let outcome = f.monitor.process(&get_volume(&f));
        assert!(
            matches!(outcome.verdict, Verdict::Pass | Verdict::Degraded),
            "chaos must degrade, not misjudge: {outcome:?}"
        );
        saw_degraded |= outcome.verdict == Verdict::Degraded;
    }
    assert!(saw_degraded, "the scheduled pass must have hit the storm");
    // The storm clears: the stale replica re-seeds on the next request
    // and steady state resumes.
    f.fail_quota_probes.store(false, Ordering::Relaxed);
    for _ in 0..4 {
        assert_eq!(f.monitor.process(&get_volume(&f)).verdict, Verdict::Pass);
    }
    assert!(
        drift_records(&f).is_empty(),
        "faults must not be reported as drift: {:?}",
        drift_records(&f)
    );
}
