//! Cinder monitoring walkthrough — the *cloud developer* user story
//! (Section III-B, user 1): validate an implementation against its design
//! models during development, exercising every Figure 3 state.
//!
//! Run with: `cargo run --example cinder_monitoring`

use cm_cloudsim::{PrivateCloud, DEFAULT_VOLUME_QUOTA};
use cm_core::{cinder_monitor, Mode};
use cm_model::HttpMethod;
use cm_rest::{Json, RestRequest};

fn volume_body(name: &str, size: i64) -> Json {
    Json::object(vec![(
        "volume",
        Json::object(vec![
            ("name", Json::Str(name.into())),
            ("size", Json::Int(size)),
        ]),
    )])
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cloud = PrivateCloud::my_project();
    let pid = cloud.project_id();
    let admin = cloud.issue_token("alice", "alice-pw")?;
    let member = cloud.issue_token("bob", "bob-pw")?;

    let mut monitor = cinder_monitor(cloud)?.mode(Mode::Enforce);
    monitor.authenticate("alice", "alice-pw")?;

    println!("walking the Figure 3 state machine through the monitor:");
    println!("(project quota = {DEFAULT_VOLUME_QUOTA} volumes)\n");

    // project_with_no_volume --POST--> not_full --POST--> ... --POST--> full
    for i in 1..=DEFAULT_VOLUME_QUOTA {
        let token = if i % 2 == 0 {
            &member.token
        } else {
            &admin.token
        };
        let outcome = monitor.process(
            &RestRequest::new(HttpMethod::Post, format!("/v3/{pid}/volumes"))
                .auth_token(token)
                .json(volume_body(&format!("vol{i}"), 5)),
        );
        println!(
            "POST volume #{i}: {} [{}] — state now {}",
            outcome.response.status,
            outcome.verdict,
            if i == DEFAULT_VOLUME_QUOTA {
                "project_with_volume_and_full_quota"
            } else {
                "project_with_volume_and_not_full_quota"
            }
        );
    }

    // At full quota a further POST must be refused (no enabled transition).
    let over = monitor.process(
        &RestRequest::new(HttpMethod::Post, format!("/v3/{pid}/volumes"))
            .auth_token(&admin.token)
            .json(volume_body("overflow", 1)),
    );
    println!(
        "POST over quota: {} [{}]",
        over.response.status, over.verdict
    );

    // Reads and updates on the full state (SecReq 1.1, 1.2).
    let get = monitor.process(
        &RestRequest::new(HttpMethod::Get, format!("/v3/{pid}/volumes/1"))
            .auth_token(&member.token),
    );
    println!("GET volume 1:    {} [{}]", get.response.status, get.verdict);
    let put = monitor.process(
        &RestRequest::new(HttpMethod::Put, format!("/v3/{pid}/volumes/1"))
            .auth_token(&member.token)
            .json(volume_body("renamed", 5)),
    );
    println!("PUT volume 1:    {} [{}]", put.response.status, put.verdict);

    // full --DELETE--> not_full --DELETE--> ... --DELETE--> no_volume
    for vid in 1..=DEFAULT_VOLUME_QUOTA {
        let outcome = monitor.process(
            &RestRequest::new(HttpMethod::Delete, format!("/v3/{pid}/volumes/{vid}"))
                .auth_token(&admin.token),
        );
        println!(
            "DELETE volume {vid}: {} [{}]",
            outcome.response.status, outcome.verdict
        );
    }

    println!("\nmonitor log ({} requests):", monitor.log().len());
    for r in monitor.log() {
        println!(
            "  {} {:<24} -> {:<22} [{}] {}",
            r.method,
            r.path,
            r.status.to_string(),
            r.verdict,
            if r.requirements.is_empty() {
                String::new()
            } else {
                format!("SecReq {}", r.requirements.join(","))
            }
        );
    }
    println!("\n{}", monitor.coverage());
    Ok(())
}
