//! Quickstart: generate a cloud monitor from the paper's Cinder models,
//! wrap a simulated private cloud, and watch it enforce Table I.
//!
//! Run with: `cargo run --example quickstart`

use cm_cloudsim::PrivateCloud;
use cm_core::{cinder_monitor, Mode, Verdict};
use cm_model::HttpMethod;
use cm_rest::{Json, RestRequest};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A private cloud with the paper's `myProject` setup: three
    //    usergroups (proj_administrator/admin, service_architect/member,
    //    business_analyst/user) and a volume quota.
    let cloud = PrivateCloud::my_project();
    let pid = cloud.project_id();
    let alice = cloud.issue_token("alice", "alice-pw")?; // admin
    let carol = cloud.issue_token("carol", "carol-pw")?; // user

    // 2. Generate the monitor from the Figure 3 design models and put it
    //    in front of the cloud (Figure 2 workflow, enforce mode).
    let mut monitor = cinder_monitor(cloud)?.mode(Mode::Enforce);
    monitor.authenticate("alice", "alice-pw")?;

    // 3. alice (admin) creates a volume — SecReq 1.3 permits this.
    let create = monitor.process(
        &RestRequest::new(HttpMethod::Post, format!("/v3/{pid}/volumes"))
            .auth_token(&alice.token)
            .json(Json::object(vec![(
                "volume",
                Json::object(vec![
                    ("name", Json::Str("data".into())),
                    ("size", Json::Int(10)),
                ]),
            )])),
    );
    println!(
        "alice POST /volumes  -> {} [{}]",
        create.response.status, create.verdict
    );
    assert_eq!(create.verdict, Verdict::Pass);

    // 4. carol (role `user`) tries to DELETE it — SecReq 1.4 only permits
    //    admin, so the monitor blocks the request before the cloud sees it.
    let blocked = monitor.process(
        &RestRequest::new(HttpMethod::Delete, format!("/v3/{pid}/volumes/1"))
            .auth_token(&carol.token),
    );
    println!(
        "carol DELETE /volumes/1 -> {} [{}]",
        blocked.response.status, blocked.verdict
    );
    assert_eq!(blocked.verdict, Verdict::PreBlocked);

    // 5. alice deletes it — permitted, contract checked end to end.
    let deleted = monitor.process(
        &RestRequest::new(HttpMethod::Delete, format!("/v3/{pid}/volumes/1"))
            .auth_token(&alice.token),
    );
    println!(
        "alice DELETE /volumes/1 -> {} [{}]",
        deleted.response.status, deleted.verdict
    );
    assert_eq!(deleted.verdict, Verdict::Pass);

    println!("\ncoverage so far:\n{}", monitor.coverage());
    Ok(())
}
