//! Code generation — the paper's `uml2django ProjectName DiagramsFileinXML`
//! pipeline (Figure 4): export the design models as XMI, feed them to the
//! generator, and write the Django monitor skeleton to disk.
//!
//! Run with: `cargo run --example uml2django_codegen`

use cm_codegen::{uml2django, Uml2DjangoOptions};
use cm_model::cinder;
use cm_xmi::export;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The analyst's models (Figure 3), exported as an XMI interchange file
    // — in the paper this file comes from MagicDraw.
    let xmi = export(
        Some(&cinder::resource_model()),
        &[&cinder::behavioral_model()],
    );
    let xmi_path = std::path::Path::new("target/cinder-models.xmi");
    std::fs::create_dir_all("target")?;
    std::fs::write(xmi_path, &xmi)?;
    println!(
        "wrote design models to {} ({} bytes)",
        xmi_path.display(),
        xmi.len()
    );

    // uml2django CMonitor target/cinder-models.xmi
    let project = uml2django(
        "CMonitor",
        &std::fs::read_to_string(xmi_path)?,
        &Uml2DjangoOptions {
            cloud_base_url: "http://130.232.85.9".to_string(),
            security: None,
        },
    )?;

    let out_dir = std::path::Path::new("target/generated-cmonitor");
    project.write_to(out_dir)?;
    println!("generated Django project under {}:", out_dir.display());
    for (path, content) in &project.files {
        println!("  {:<24} {:>6} bytes", path, content.len());
    }

    // Show the Listing 2 excerpt.
    let views = project.file("cmonitor/views.py").expect("views generated");
    println!("\nexcerpt of cmonitor/views.py (Listing 2):\n");
    for line in views
        .lines()
        .skip_while(|l| !l.starts_with("def volume_delete"))
        .take(14)
    {
        println!("{line}");
    }
    Ok(())
}
