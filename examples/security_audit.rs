//! Security audit — the *security expert* and *automated testing script*
//! user stories (Section III-B, users 3–4): use the monitor as a test
//! oracle to audit a cloud implementation, then reproduce the paper's
//! Section VI-D mutation validation.
//!
//! Run with: `cargo run --example security_audit`

use cm_cloudsim::PrivateCloud;
use cm_core::TestOracle;
use cm_mutation::{paper_mutants, run_campaign, standard_catalog};

fn main() {
    // 1. Audit the correct implementation: the oracle suite must be clean.
    println!("== auditing the correct cloud implementation ==\n");
    let baseline = TestOracle.run(PrivateCloud::my_project);
    print!("{baseline}");
    assert!(!baseline.killed(), "false positives on the correct cloud");

    // 2. The paper's experiment: three wrong-authorization mutants.
    println!("\n== Section VI-D: the paper's three mutants ==\n");
    let paper = run_campaign(&paper_mutants());
    for row in &paper.rows {
        println!(
            "{}: {} — {}",
            row.mutant.id,
            if row.killed { "KILLED" } else { "survived" },
            row.mutant.description
        );
        if let Some(first) = row.killing_scenarios.first() {
            println!("    detected by: {first}");
        }
    }
    println!(
        "\nresult: {}/{} killed (paper reports 3/3)",
        paper.killed(),
        paper.total()
    );

    // 3. Extended campaign with per-operator kill rates.
    println!("\n== extended systematic campaign ==\n");
    let extended = run_campaign(&standard_catalog());
    for (class, killed, total) in extended.by_class() {
        println!("  {:<22} {killed}/{total}", class.name());
    }
    println!(
        "\noverall mutation score: {:.0}%  (authorization operators: {:.0}%)",
        extended.score() * 100.0,
        extended.authorization_score() * 100.0
    );
    for s in extended.survivors() {
        println!("survivor: {} — {}", s.mutant.id, s.mutant.description);
    }
}
