//! Network proxy deployment — the paper's actual topology: the private
//! cloud runs in one place (OpenStack in VirtualBox), the cloud monitor in
//! another (the laptop), and clients drive it with cURL-style HTTP.
//!
//! Here both ends are real TCP servers on localhost: the simulated cloud
//! is served over HTTP, the monitor wraps it through a pooled
//! keep-alive remote-service adapter and is itself served over HTTP,
//! and the client drives it through a persistent `PooledClient`
//! connection.
//!
//! Run with: `cargo run --example http_proxy`

use cm_cloudsim::PrivateCloud;
use cm_core::CloudMonitor;
use cm_httpkit::{AdminRoutes, HttpServer, PooledClient, RemoteService, ServerConfig};
use cm_model::{cinder, HttpMethod};
use cm_rest::{Json, RestRequest, SharedRestService};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The private cloud, served over HTTP (the "VirtualBox VM").
    // No Mutex around it: `PrivateCloud` synchronizes internally per
    // project shard, so connection threads proceed in parallel.
    let cloud = Arc::new(PrivateCloud::my_project());
    let pid = cloud.project_id();
    let cloud_for_server = Arc::clone(&cloud);
    let cloud_server = HttpServer::bind_with(
        "127.0.0.1:0",
        Arc::new(move |req| cloud_for_server.call(&req)),
        ServerConfig::default(),
    )?;
    println!(
        "private cloud listening on http://{}",
        cloud_server.local_addr()
    );

    // 2. The generated monitor, wrapping the cloud over the network and
    //    itself served over HTTP (the paper's port 8000).
    let remote_cloud = RemoteService::new(cloud_server.local_addr());
    let mut monitor = CloudMonitor::generate(
        &cinder::resource_model(),
        &cinder::behavioral_model(),
        None,
        remote_cloud,
    )?;
    monitor.authenticate("alice", "alice-pw")?;
    let admin = AdminRoutes::new(monitor.metrics(), monitor.events());
    // Shared, not locked: `process(&self)` is concurrently callable.
    let monitor = Arc::new(monitor);
    let monitor_for_server = Arc::clone(&monitor);
    let monitor_server = HttpServer::bind(
        "127.0.0.1:0",
        admin.wrap(Arc::new(move |req| monitor_for_server.call(&req))),
    )?;
    let cm = monitor_server.local_addr();
    println!("cloud monitor listening on http://{cm}\n");

    // 3. Clients authenticate *through* the monitor. The client keeps one
    //    TCP connection alive across all of these requests.
    let client = PooledClient::default();
    let send = |req: &RestRequest| client.request(cm, req);
    let auth = send(
        &RestRequest::new(HttpMethod::Post, "/identity/auth/tokens").json(Json::object(vec![(
            "auth",
            Json::object(vec![
                ("user", Json::Str("alice".into())),
                ("password", Json::Str("alice-pw".into())),
            ]),
        )])),
    )?;
    let alice = auth
        .body
        .as_ref()
        .unwrap()
        .get("token")
        .unwrap()
        .get("id")
        .unwrap();
    let alice = alice.as_str().unwrap().to_string();
    let carol_auth = send(
        &RestRequest::new(HttpMethod::Post, "/identity/auth/tokens").json(Json::object(vec![(
            "auth",
            Json::object(vec![
                ("user", Json::Str("carol".into())),
                ("password", Json::Str("carol-pw".into())),
            ]),
        )])),
    )?;
    let carol = carol_auth
        .body
        .as_ref()
        .unwrap()
        .get("token")
        .unwrap()
        .get("id")
        .unwrap();
    let carol = carol.as_str().unwrap().to_string();

    // …and drive the volume API, e.g. the paper's
    //   curl -X DELETE -d id=4 http://127.0.0.1:8000/cmonitor/volumes/4
    let create = send(
        &RestRequest::new(HttpMethod::Post, format!("/v3/{pid}/volumes"))
            .auth_token(&alice)
            .json(Json::object(vec![(
                "volume",
                Json::object(vec![("name", Json::Str("net-vol".into()))]),
            )])),
    )?;
    println!("alice POST /v3/{pid}/volumes          -> {}", create.status);

    let denied = send(
        &RestRequest::new(HttpMethod::Delete, format!("/v3/{pid}/volumes/1")).auth_token(&carol),
    )?;
    println!(
        "carol DELETE /v3/{pid}/volumes/1      -> {} ({})",
        denied.status,
        denied.error_message().unwrap_or("-")
    );

    let deleted = send(
        &RestRequest::new(HttpMethod::Delete, format!("/v3/{pid}/volumes/1")).auth_token(&alice),
    )?;
    println!(
        "alice DELETE /v3/{pid}/volumes/1      -> {}",
        deleted.status
    );

    println!("\nmonitor verdicts:");
    for r in monitor.log() {
        println!(
            "  {} {:<20} -> {} [{}]",
            r.method, r.path, r.status, r.verdict
        );
    }

    // 4. The same numbers, as any operator would fetch them: the admin
    //    endpoints in front of the monitor server.
    let metrics = send(&RestRequest::new(HttpMethod::Get, "/-/metrics"))?;
    println!("\nGET /-/metrics:");
    println!("{}", metrics.body.as_ref().unwrap().to_pretty_string());
    let events = send(&RestRequest::new(HttpMethod::Get, "/-/events?tail=3"))?;
    let shown = events
        .body
        .as_ref()
        .unwrap()
        .get("events")
        .unwrap()
        .as_array()
        .unwrap()
        .len();
    println!("GET /-/events?tail=3 returned {shown} events");
    println!(
        "client transport: {} connection(s) opened, {} request(s) reused an idle one",
        client.connections_opened(),
        client.connections_reused()
    );

    monitor_server.shutdown();
    cloud_server.shutdown();
    Ok(())
}
