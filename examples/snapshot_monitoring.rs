//! Multi-resource monitoring — the extended Cinder scenario: one monitor
//! generated from *two* behavioural state machines (the volume lifecycle
//! of Figure 3 plus a snapshot lifecycle), enforcing SecReq 1.x and 2.x
//! over nested URIs (`/v3/{project}/volumes/{volume}/snapshots/{snap}`).
//!
//! Run with: `cargo run --example snapshot_monitoring`

use cm_cloudsim::PrivateCloud;
use cm_core::{cinder_monitor_extended, Mode};
use cm_model::HttpMethod;
use cm_rest::{Json, RestRequest};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cloud = PrivateCloud::my_project();
    let pid = cloud.project_id();
    let admin = cloud.issue_token("alice", "alice-pw")?;
    let carol = cloud.issue_token("carol", "carol-pw")?;

    let mut monitor = cinder_monitor_extended(cloud)?.mode(Mode::Enforce);
    monitor.authenticate("alice", "alice-pw")?;
    println!(
        "extended monitor: {} routes, {} contracts covering SecReq {:?}\n",
        monitor.routes().routes().len(),
        monitor.contracts().contracts.len(),
        monitor.contracts().covered_requirements()
    );

    // Create a volume, then walk the snapshot lifecycle on it.
    let create_vol = monitor.process(
        &RestRequest::new(HttpMethod::Post, format!("/v3/{pid}/volumes"))
            .auth_token(&admin.token)
            .json(Json::object(vec![(
                "volume",
                Json::object(vec![("name", Json::Str("data".into()))]),
            )])),
    );
    println!(
        "POST volume                    -> {} [{}]",
        create_vol.response.status, create_vol.verdict
    );

    let create_snap = monitor.process(
        &RestRequest::new(HttpMethod::Post, format!("/v3/{pid}/volumes/1/snapshots"))
            .auth_token(&admin.token)
            .json(Json::object(vec![(
                "snapshot",
                Json::object(vec![("name", Json::Str("nightly".into()))]),
            )])),
    );
    println!(
        "POST snapshot                  -> {} [{}] SecReq {:?}",
        create_snap.response.status, create_snap.verdict, create_snap.requirements
    );

    // carol may read snapshots (SecReq 2.1)…
    let get = monitor.process(
        &RestRequest::new(HttpMethod::Get, format!("/v3/{pid}/volumes/1/snapshots/1"))
            .auth_token(&carol.token),
    );
    println!(
        "GET snapshot as carol          -> {} [{}]",
        get.response.status, get.verdict
    );

    // …but not delete them (SecReq 2.3) — blocked before the cloud.
    let blocked = monitor.process(
        &RestRequest::new(
            HttpMethod::Delete,
            format!("/v3/{pid}/volumes/1/snapshots/1"),
        )
        .auth_token(&carol.token),
    );
    println!(
        "DELETE snapshot as carol       -> {} [{}]",
        blocked.response.status, blocked.verdict
    );

    // A volume with snapshots cannot be deleted (Cinder semantics). The
    // extended volume model carries the refinement conjunct
    // `volume.snapshots->size() = 0` on its DELETE guards, so the monitor
    // blocks this request outright instead of mistaking the cloud's 409
    // for a wrong denial — extending the system means refining the models.
    let vol_del = monitor.process(
        &RestRequest::new(HttpMethod::Delete, format!("/v3/{pid}/volumes/1"))
            .auth_token(&admin.token),
    );
    println!(
        "DELETE volume with snapshot    -> {} [{}]",
        vol_del.response.status, vol_del.verdict
    );

    // Clean up the snapshot, then the volume deletes cleanly.
    let snap_del = monitor.process(
        &RestRequest::new(
            HttpMethod::Delete,
            format!("/v3/{pid}/volumes/1/snapshots/1"),
        )
        .auth_token(&admin.token),
    );
    println!(
        "DELETE snapshot as alice       -> {} [{}]",
        snap_del.response.status, snap_del.verdict
    );
    let vol_del2 = monitor.process(
        &RestRequest::new(HttpMethod::Delete, format!("/v3/{pid}/volumes/1"))
            .auth_token(&admin.token),
    );
    println!(
        "DELETE volume (no snapshots)   -> {} [{}]",
        vol_del2.response.status, vol_del2.verdict
    );

    println!("\ninvocation log as JSON (fault-localization export):");
    println!("{}", monitor.log_json().to_compact_string());
    Ok(())
}
