//! # cm-codegen — `uml2django`: generating the monitor's code skeletons
//!
//! The paper's tool emits a Django project whose three files realise the
//! monitor: `models.py` (local copies of the resource structures),
//! `urls.py` (URI → view mapping, Listing 3) and `views.py` (method
//! dispatch with embedded contracts and forwarding, Listing 2). This crate
//! reproduces that emission from the same inputs — an XMI interchange file
//! of the design models — while the *executable* semantics of the monitor
//! live natively in `cm-core`.
//!
//! ## Example
//!
//! ```
//! use cm_codegen::{uml2django, Uml2DjangoOptions};
//! use cm_model::cinder;
//! use cm_xmi::export;
//!
//! let xmi = export(Some(&cinder::resource_model()), &[&cinder::behavioral_model()]);
//! let project = uml2django("CMonitor", &xmi, &Uml2DjangoOptions::default())?;
//! assert!(project.file("cmonitor/views.py").unwrap().contains("def volume_delete"));
//! # Ok::<(), cm_codegen::Uml2DjangoError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod django;
pub mod project;

pub use django::{models_py, urls_py, views_py};
pub use project::{uml2django, GeneratedProject, Uml2DjangoError, Uml2DjangoOptions};

use cm_model::HttpMethod;

/// The success code the generated views check for (Listing 2 checks 204
/// for DELETE).
#[must_use]
pub fn expected_code(method: HttpMethod) -> u16 {
    match method {
        HttpMethod::Get | HttpMethod::Put => 200,
        HttpMethod::Post => 201,
        HttpMethod::Delete => 204,
    }
}
