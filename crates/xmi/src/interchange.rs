//! XMI import/export for resource and behavioural models.
//!
//! The paper's toolchain exports MagicDraw models as XMI and feeds the file
//! to the generator (Figure 4). This module defines the XMI subset we
//! interchange: a `xmi:XMI` root wrapping a `uml:Model`, with
//! `packagedElement` entries of `xmi:type` `uml:Class`, `uml:Association`
//! and `uml:StateMachine`. OCL (invariants, guards, effects) is embedded as
//! element text; security-requirement annotations travel as `ownedComment`
//! elements, exactly as they appear as comments in the paper's diagrams.

use crate::xml::{parse_document, Element, XmlError};
use cm_model::{
    Association, AttrType, Attribute, BehavioralModel, HttpMethod, Multiplicity, ResourceDef,
    ResourceModel, State, Transition, TransitionBuilder, Trigger, UpperBound,
};
use cm_ocl::{parse as parse_ocl, to_string as ocl_to_string, Expr};
use std::fmt;

/// Namespace attributes stamped on exported documents.
const XMI_NS: &str = "http://www.omg.org/XMI";
const UML_NS: &str = "http://www.omg.org/spec/UML";

/// An error raised while importing an XMI document.
#[derive(Debug, Clone, PartialEq)]
pub struct XmiError {
    /// What went wrong.
    pub message: String,
}

impl XmiError {
    fn new(message: impl Into<String>) -> Self {
        XmiError {
            message: message.into(),
        }
    }
}

impl fmt::Display for XmiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XMI error: {}", self.message)
    }
}

impl std::error::Error for XmiError {}

impl From<XmlError> for XmiError {
    fn from(e: XmlError) -> Self {
        XmiError::new(e.to_string())
    }
}

impl From<cm_ocl::ParseError> for XmiError {
    fn from(e: cm_ocl::ParseError) -> Self {
        XmiError::new(format!("embedded OCL does not parse: {e}"))
    }
}

/// A pair of models as interchanged in one XMI document. Either part may be
/// absent (the analyst may model only the critical viewpoint).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct XmiDocument {
    /// The resource model, if present.
    pub resources: Option<ResourceModel>,
    /// The behavioural models, in document order.
    pub behaviors: Vec<BehavioralModel>,
}

/// Export a resource model and any number of behavioural models into one
/// XMI document string.
#[must_use]
pub fn export(resources: Option<&ResourceModel>, behaviors: &[&BehavioralModel]) -> String {
    let mut model_el = Element::new("uml:Model");
    if let Some(r) = resources {
        model_el.attributes.push(("name".into(), r.name.clone()));
        for d in &r.definitions {
            model_el
                .children
                .push(crate::xml::Node::Element(export_class(d)));
        }
        for a in &r.associations {
            model_el
                .children
                .push(crate::xml::Node::Element(export_association(a)));
        }
    } else {
        model_el.attributes.push(("name".into(), "model".into()));
    }
    for b in behaviors {
        model_el
            .children
            .push(crate::xml::Node::Element(export_state_machine(b)));
    }
    Element::new("xmi:XMI")
        .attr("xmi:version", "2.1")
        .attr("xmlns:xmi", XMI_NS)
        .attr("xmlns:uml", UML_NS)
        .child(model_el)
        .to_xml()
}

fn export_class(d: &ResourceDef) -> Element {
    let mut e = Element::new("packagedElement")
        .attr("xmi:type", "uml:Class")
        .attr("name", &d.name)
        .attr(
            "stereotype",
            match d.kind {
                cm_model::ResourceKind::Collection => "collection",
                cm_model::ResourceKind::Normal => "resource",
            },
        );
    for a in &d.attributes {
        e = e.child(
            Element::new("ownedAttribute")
                .attr("name", &a.name)
                .attr("type", a.ty.name())
                .attr("visibility", "public"),
        );
    }
    e
}

fn export_association(a: &Association) -> Element {
    let upper = match a.multiplicity.upper {
        UpperBound::Finite(n) => n.to_string(),
        UpperBound::Many => "*".to_string(),
    };
    Element::new("packagedElement")
        .attr("xmi:type", "uml:Association")
        .attr("name", &a.role)
        .attr("source", &a.source)
        .attr("target", &a.target)
        .attr("lower", a.multiplicity.lower.to_string())
        .attr("upper", upper)
}

fn export_state_machine(b: &BehavioralModel) -> Element {
    let mut e = Element::new("packagedElement")
        .attr("xmi:type", "uml:StateMachine")
        .attr("name", &b.name)
        .attr("context", &b.context)
        .attr("initial", &b.initial);
    for s in &b.states {
        e = e.child(
            Element::new("subvertex")
                .attr("xmi:type", "uml:State")
                .attr("name", &s.name)
                .child(Element::new("invariant").text(ocl_to_string(&s.invariant))),
        );
    }
    for t in &b.transitions {
        let mut tr = Element::new("transition")
            .attr("xmi:id", &t.id)
            .attr("source", &t.source)
            .attr("target", &t.target)
            .child(
                Element::new("trigger")
                    .attr("method", t.trigger.method.as_str())
                    .attr("resource", &t.trigger.resource),
            );
        if let Some(g) = &t.guard {
            tr = tr.child(Element::new("guard").text(ocl_to_string(g)));
        }
        if let Some(eff) = &t.effect {
            tr = tr.child(Element::new("effect").text(ocl_to_string(eff)));
        }
        for req in &t.security_requirements {
            tr = tr.child(Element::new("ownedComment").attr("body", format!("SecReq {req}")));
        }
        e = e.child(tr);
    }
    e
}

/// Import an XMI document string.
///
/// # Errors
///
/// Returns [`XmiError`] on malformed XML, missing `uml:Model`, unknown
/// `xmi:type`s, unparsable embedded OCL, or structurally invalid elements
/// (e.g. a transition without a trigger).
pub fn import(src: &str) -> Result<XmiDocument, XmiError> {
    let root = parse_document(src)?;
    if root.name != "xmi:XMI" {
        return Err(XmiError::new(format!(
            "expected root `xmi:XMI`, found `{}`",
            root.name
        )));
    }
    let model = root
        .first_child("uml:Model")
        .ok_or_else(|| XmiError::new("missing `uml:Model` element"))?;

    let mut resources = ResourceModel::new(model.attribute("name").unwrap_or("model"));
    let mut has_resources = false;
    let mut behaviors = Vec::new();

    for pe in model.children_named("packagedElement") {
        match pe.attribute("xmi:type") {
            Some("uml:Class") => {
                has_resources = true;
                resources.define(import_class(pe)?);
            }
            Some("uml:Association") => {
                has_resources = true;
                resources.associate(import_association(pe)?);
            }
            Some("uml:StateMachine") => behaviors.push(import_state_machine(pe)?),
            Some(other) => {
                return Err(XmiError::new(format!("unsupported xmi:type `{other}`")));
            }
            None => return Err(XmiError::new("packagedElement without xmi:type")),
        }
    }

    Ok(XmiDocument {
        resources: has_resources.then_some(resources),
        behaviors,
    })
}

fn import_class(e: &Element) -> Result<ResourceDef, XmiError> {
    let name = e
        .attribute("name")
        .ok_or_else(|| XmiError::new("uml:Class without name"))?
        .to_string();
    let kind = match e.attribute("stereotype") {
        Some("collection") => cm_model::ResourceKind::Collection,
        Some("resource") | None => cm_model::ResourceKind::Normal,
        Some(other) => return Err(XmiError::new(format!("unknown class stereotype `{other}`"))),
    };
    let mut attributes = Vec::new();
    for oa in e.children_named("ownedAttribute") {
        let aname = oa
            .attribute("name")
            .ok_or_else(|| XmiError::new(format!("attribute of `{name}` without name")))?;
        let ty = match oa.attribute("type") {
            Some("String") | None => AttrType::Str,
            Some("Integer") => AttrType::Int,
            Some("Real") => AttrType::Real,
            Some("Boolean") => AttrType::Bool,
            Some(other) => return Err(XmiError::new(format!("unknown attribute type `{other}`"))),
        };
        attributes.push(Attribute::new(aname, ty));
    }
    Ok(ResourceDef {
        name,
        kind,
        attributes,
    })
}

fn import_association(e: &Element) -> Result<Association, XmiError> {
    let get = |attr: &str| -> Result<&str, XmiError> {
        e.attribute(attr)
            .ok_or_else(|| XmiError::new(format!("uml:Association without `{attr}`")))
    };
    let lower: u32 = get("lower")?
        .parse()
        .map_err(|_| XmiError::new("association `lower` is not a number"))?;
    let upper = match get("upper")? {
        "*" => None,
        n => Some(
            n.parse::<u32>()
                .map_err(|_| XmiError::new("association `upper` is not a number or `*`"))?,
        ),
    };
    Ok(Association::new(
        get("name")?,
        get("source")?,
        get("target")?,
        Multiplicity::new(lower, upper),
    ))
}

fn import_ocl_child(e: &Element, tag: &str) -> Result<Option<Expr>, XmiError> {
    match e.first_child(tag) {
        None => Ok(None),
        Some(child) => {
            let text = child.text_content();
            if text.is_empty() {
                return Err(XmiError::new(format!(
                    "`{tag}` element with empty OCL body"
                )));
            }
            Ok(Some(parse_ocl(&text)?))
        }
    }
}

fn import_state_machine(e: &Element) -> Result<BehavioralModel, XmiError> {
    let name = e
        .attribute("name")
        .ok_or_else(|| XmiError::new("uml:StateMachine without name"))?;
    let context = e
        .attribute("context")
        .ok_or_else(|| XmiError::new("uml:StateMachine without context"))?;
    let initial = e
        .attribute("initial")
        .ok_or_else(|| XmiError::new("uml:StateMachine without initial state"))?;
    let mut model = BehavioralModel::new(name, context, initial);

    for sv in e.children_named("subvertex") {
        let sname = sv
            .attribute("name")
            .ok_or_else(|| XmiError::new("subvertex without name"))?;
        let invariant = import_ocl_child(sv, "invariant")?.unwrap_or(Expr::Bool(true));
        model.state(State::new(sname, invariant));
    }

    for (i, tr) in e.children_named("transition").enumerate() {
        model.transition(import_transition(tr, i)?);
    }
    Ok(model)
}

fn import_transition(tr: &Element, index: usize) -> Result<Transition, XmiError> {
    let id = tr
        .attribute("xmi:id")
        .map(str::to_string)
        .unwrap_or_else(|| format!("t{index}"));
    let source = tr
        .attribute("source")
        .ok_or_else(|| XmiError::new(format!("transition `{id}` without source")))?;
    let target = tr
        .attribute("target")
        .ok_or_else(|| XmiError::new(format!("transition `{id}` without target")))?;
    let trig_el = tr
        .first_child("trigger")
        .ok_or_else(|| XmiError::new(format!("transition `{id}` without trigger")))?;
    let method: HttpMethod = trig_el
        .attribute("method")
        .ok_or_else(|| XmiError::new(format!("trigger of `{id}` without method")))?
        .parse()
        .map_err(|e| XmiError::new(format!("trigger of `{id}`: {e}")))?;
    let resource = trig_el
        .attribute("resource")
        .ok_or_else(|| XmiError::new(format!("trigger of `{id}` without resource")))?;

    let mut builder = TransitionBuilder::new(&id, source, Trigger::new(method, resource), target);
    if let Some(g) = import_ocl_child(tr, "guard")? {
        builder = builder.guard(g);
    }
    if let Some(eff) = import_ocl_child(tr, "effect")? {
        builder = builder.effect(eff);
    }
    for c in tr.children_named("ownedComment") {
        if let Some(body) = c.attribute("body") {
            if let Some(req) = body.strip_prefix("SecReq ") {
                builder = builder.security_requirement(req.trim());
            }
        }
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_model::cinder;

    #[test]
    fn cinder_models_roundtrip() {
        let resources = cinder::resource_model();
        let behavior = cinder::behavioral_model();
        let xml = export(Some(&resources), &[&behavior]);
        let doc = import(&xml).unwrap();
        assert_eq!(doc.resources.as_ref(), Some(&resources));
        assert_eq!(doc.behaviors.len(), 1);
        assert_eq!(doc.behaviors[0], behavior);
    }

    #[test]
    fn resource_only_roundtrip() {
        let resources = cinder::resource_model();
        let xml = export(Some(&resources), &[]);
        let doc = import(&xml).unwrap();
        assert_eq!(doc.resources, Some(resources));
        assert!(doc.behaviors.is_empty());
    }

    #[test]
    fn behavior_only_roundtrip() {
        let behavior = cinder::behavioral_model();
        let xml = export(None, &[&behavior]);
        let doc = import(&xml).unwrap();
        assert!(doc.resources.is_none());
        assert_eq!(doc.behaviors, vec![behavior]);
    }

    #[test]
    fn security_requirements_survive_roundtrip() {
        let behavior = cinder::behavioral_model();
        let xml = export(None, &[&behavior]);
        assert!(xml.contains("SecReq 1.4"));
        let doc = import(&xml).unwrap();
        let ids = doc.behaviors[0].security_requirement_ids();
        assert!(ids.contains(&"1.4".to_string()));
    }

    #[test]
    fn rejects_wrong_root() {
        assert!(import("<uml:Model/>").is_err());
    }

    #[test]
    fn rejects_missing_model() {
        assert!(import("<xmi:XMI/>").is_err());
    }

    #[test]
    fn rejects_unknown_packaged_element() {
        let xml = r#"<xmi:XMI><uml:Model name="m">
            <packagedElement xmi:type="uml:Actor" name="x"/>
        </uml:Model></xmi:XMI>"#;
        let err = import(xml).unwrap_err();
        assert!(err.message.contains("uml:Actor"));
    }

    #[test]
    fn rejects_bad_embedded_ocl() {
        let xml = r#"<xmi:XMI><uml:Model name="m">
            <packagedElement xmi:type="uml:StateMachine" name="b" context="p" initial="s">
              <subvertex xmi:type="uml:State" name="s">
                <invariant>this is (not OCL</invariant>
              </subvertex>
            </packagedElement>
        </uml:Model></xmi:XMI>"#;
        let err = import(xml).unwrap_err();
        assert!(err.message.contains("OCL"));
    }

    #[test]
    fn rejects_transition_without_trigger() {
        let xml = r#"<xmi:XMI><uml:Model name="m">
            <packagedElement xmi:type="uml:StateMachine" name="b" context="p" initial="s">
              <subvertex xmi:type="uml:State" name="s"><invariant>true</invariant></subvertex>
              <transition xmi:id="t1" source="s" target="s"/>
            </packagedElement>
        </uml:Model></xmi:XMI>"#;
        let err = import(xml).unwrap_err();
        assert!(err.message.contains("trigger"));
    }

    #[test]
    fn transition_without_id_gets_indexed_id() {
        let xml = r#"<xmi:XMI><uml:Model name="m">
            <packagedElement xmi:type="uml:StateMachine" name="b" context="p" initial="s">
              <subvertex xmi:type="uml:State" name="s"><invariant>true</invariant></subvertex>
              <transition source="s" target="s">
                <trigger method="GET" resource="volume"/>
              </transition>
            </packagedElement>
        </uml:Model></xmi:XMI>"#;
        let doc = import(xml).unwrap();
        assert_eq!(doc.behaviors[0].transitions[0].id, "t0");
    }

    #[test]
    fn state_without_invariant_defaults_to_true() {
        let xml = r#"<xmi:XMI><uml:Model name="m">
            <packagedElement xmi:type="uml:StateMachine" name="b" context="p" initial="s">
              <subvertex xmi:type="uml:State" name="s"/>
            </packagedElement>
        </uml:Model></xmi:XMI>"#;
        let doc = import(xml).unwrap();
        assert_eq!(doc.behaviors[0].states[0].invariant, Expr::Bool(true));
    }

    #[test]
    fn exported_document_declares_namespaces() {
        let xml = export(Some(&cinder::resource_model()), &[]);
        assert!(xml.contains("xmlns:xmi"));
        assert!(xml.contains("xmi:version=\"2.1\""));
    }
}
