//! # cm-xmi — XMI interchange for cloud-monitor models
//!
//! The paper's toolchain (Figure 4) starts from MagicDraw UML models
//! exported as XMI. This crate provides the interchange layer of the Rust
//! reproduction:
//!
//! * [`xml`] — a minimal, dependency-free XML parser and writer (elements,
//!   attributes, text, CDATA, comments, the predefined entities and numeric
//!   character references; DTDs are rejected);
//! * [`import`]/[`export`] — an XMI 2.1 subset mapping `uml:Class`,
//!   `uml:Association` and `uml:StateMachine` packaged elements to
//!   [`cm_model::ResourceModel`] and [`cm_model::BehavioralModel`], with
//!   OCL embedded as element text and security-requirement annotations as
//!   `ownedComment`s.
//!
//! Export → import is lossless for every model the metamodel can express
//! (round-trip tested on the paper's Cinder models).
//!
//! ## Example
//!
//! ```
//! use cm_model::cinder;
//! use cm_xmi::{export, import};
//!
//! let xml = export(Some(&cinder::resource_model()), &[&cinder::behavioral_model()]);
//! let doc = import(&xml)?;
//! assert_eq!(doc.behaviors.len(), 1);
//! # Ok::<(), cm_xmi::XmiError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod interchange;
pub mod xml;

pub use interchange::{export, import, XmiDocument, XmiError};
pub use xml::{parse_document, Element, Node, XmlError};
