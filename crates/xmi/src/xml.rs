//! A minimal, dependency-free XML parser and writer.
//!
//! Hand-written so the workspace stays within its approved dependency set
//! (see DESIGN.md). The subset implemented is what XMI interchange files
//! need: elements, attributes (single- or double-quoted), character data,
//! comments, processing instructions / XML declarations, CDATA sections and
//! the five predefined entities plus numeric character references.
//! DTDs and external entities are intentionally rejected.

use std::fmt;

/// A parsed XML element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Element {
    /// Tag name, possibly namespace-prefixed (`uml:Model`).
    pub name: String,
    /// Attributes, in document order.
    pub attributes: Vec<(String, String)>,
    /// Child nodes, in document order.
    pub children: Vec<Node>,
}

/// A node of the XML tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// A nested element.
    Element(Element),
    /// Character data (entity references already resolved).
    Text(String),
}

impl Element {
    /// Create an element with no attributes or children.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Element {
            name: name.into(),
            attributes: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Builder: add an attribute.
    #[must_use]
    pub fn attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.attributes.push((name.into(), value.into()));
        self
    }

    /// Builder: add a child element.
    #[must_use]
    pub fn child(mut self, child: Element) -> Self {
        self.children.push(Node::Element(child));
        self
    }

    /// Builder: add a text child.
    #[must_use]
    pub fn text(mut self, text: impl Into<String>) -> Self {
        self.children.push(Node::Text(text.into()));
        self
    }

    /// Value of the attribute `name`, if present.
    #[must_use]
    pub fn attribute(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Child elements with the given tag name.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.children.iter().filter_map(move |n| match n {
            Node::Element(e) if e.name == name => Some(e),
            _ => None,
        })
    }

    /// First child element with the given tag name.
    #[must_use]
    pub fn first_child(&self, name: &str) -> Option<&Element> {
        self.child_elements().find(|e| e.name == name)
    }

    /// All child elements regardless of name.
    pub fn child_elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(|n| match n {
            Node::Element(e) => Some(e),
            _ => None,
        })
    }

    /// Concatenated text content of direct text children, trimmed.
    #[must_use]
    pub fn text_content(&self) -> String {
        let mut out = String::new();
        for n in &self.children {
            if let Node::Text(t) = n {
                out.push_str(t);
            }
        }
        out.trim().to_string()
    }

    /// Serialise to a string with an XML declaration and 2-space
    /// indentation.
    #[must_use]
    pub fn to_xml(&self) -> String {
        let mut out = String::from("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
        self.write_indented(&mut out, 0);
        out
    }

    fn write_indented(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        out.push_str(&pad);
        out.push('<');
        out.push_str(&self.name);
        for (n, v) in &self.attributes {
            out.push(' ');
            out.push_str(n);
            out.push_str("=\"");
            out.push_str(&escape_attr(v));
            out.push('"');
        }
        if self.children.is_empty() {
            out.push_str("/>\n");
            return;
        }
        // Pure-text elements render inline; mixed/element content indents.
        let only_text = self.children.iter().all(|c| matches!(c, Node::Text(_)));
        if only_text {
            out.push('>');
            for c in &self.children {
                if let Node::Text(t) = c {
                    out.push_str(&escape_text(t));
                }
            }
            out.push_str("</");
            out.push_str(&self.name);
            out.push_str(">\n");
            return;
        }
        out.push_str(">\n");
        for c in &self.children {
            match c {
                Node::Element(e) => e.write_indented(out, depth + 1),
                Node::Text(t) => {
                    let trimmed = t.trim();
                    if !trimmed.is_empty() {
                        out.push_str(&"  ".repeat(depth + 1));
                        out.push_str(&escape_text(trimmed));
                        out.push('\n');
                    }
                }
            }
        }
        out.push_str(&pad);
        out.push_str("</");
        out.push_str(&self.name);
        out.push_str(">\n");
    }
}

/// Escape text content (`&`, `<`, `>`).
#[must_use]
pub fn escape_text(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Escape an attribute value (`&`, `<`, `>`, `"`).
#[must_use]
pub fn escape_attr(s: &str) -> String {
    escape_text(s).replace('"', "&quot;")
}

/// An XML parsing error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for XmlError {}

/// Parse an XML document into its root element.
///
/// # Errors
///
/// Returns [`XmlError`] on malformed markup, mismatched tags, DTDs
/// (`<!DOCTYPE …>` is rejected for safety), unknown entities, or trailing
/// content after the root element.
pub fn parse_document(src: &str) -> Result<Element, XmlError> {
    let mut p = XmlParser {
        src: src.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_prolog()?;
    let root = p.parse_element()?;
    p.skip_misc()?;
    if p.pos < p.src.len() {
        return Err(p.err("trailing content after root element"));
    }
    Ok(root)
}

/// Maximum element nesting accepted (recursive-descent DoS guard).
const MAX_DEPTH: usize = 256;

struct XmlParser<'a> {
    src: &'a [u8],
    pos: usize,
    depth: usize,
}

impl XmlParser<'_> {
    fn err(&self, message: impl Into<String>) -> XmlError {
        XmlError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    /// Skip the XML declaration, comments, PIs and whitespace before the
    /// root element. Rejects DOCTYPE.
    fn skip_prolog(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                self.skip_until("?>")?;
            } else if self.starts_with("<!--") {
                self.skip_until("-->")?;
            } else if self.starts_with("<!DOCTYPE") {
                return Err(self.err("DTDs are not supported"));
            } else {
                return Ok(());
            }
        }
    }

    /// Skip trailing comments/PIs/whitespace after the root element.
    fn skip_misc(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                self.skip_until("?>")?;
            } else if self.starts_with("<!--") {
                self.skip_until("-->")?;
            } else {
                return Ok(());
            }
        }
    }

    fn skip_until(&mut self, end: &str) -> Result<(), XmlError> {
        let start = self.pos;
        while self.pos < self.src.len() {
            if self.starts_with(end) {
                self.pos += end.len();
                return Ok(());
            }
            self.pos += 1;
        }
        self.pos = start;
        Err(self.err(format!("unterminated construct (expected `{end}`)")))
    }

    fn parse_name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            let ch = c as char;
            if ch.is_ascii_alphanumeric() || matches!(ch, ':' | '_' | '-' | '.') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
    }

    fn parse_element(&mut self) -> Result<Element, XmlError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("element nesting too deep"));
        }
        let out = self.parse_element_inner();
        self.depth -= 1;
        out
    }

    fn parse_element_inner(&mut self) -> Result<Element, XmlError> {
        if self.peek() != Some(b'<') {
            return Err(self.err("expected `<`"));
        }
        self.pos += 1;
        let name = self.parse_name()?;
        let mut element = Element::new(name.clone());

        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.pos += 1;
                    if self.peek() != Some(b'>') {
                        return Err(self.err("expected `>` after `/`"));
                    }
                    self.pos += 1;
                    return Ok(element); // self-closing
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let attr_name = self.parse_name()?;
                    self.skip_ws();
                    if self.peek() != Some(b'=') {
                        return Err(self.err(format!("expected `=` after attribute `{attr_name}`")));
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let quote = match self.peek() {
                        Some(q @ (b'"' | b'\'')) => q,
                        _ => return Err(self.err("expected quoted attribute value")),
                    };
                    self.pos += 1;
                    let vstart = self.pos;
                    while self.peek() != Some(quote) {
                        if self.peek().is_none() {
                            return Err(self.err("unterminated attribute value"));
                        }
                        self.pos += 1;
                    }
                    let raw = String::from_utf8_lossy(&self.src[vstart..self.pos]).into_owned();
                    self.pos += 1;
                    let value = self.unescape(&raw)?;
                    element.attributes.push((attr_name, value));
                }
                None => return Err(self.err("unexpected end of input in tag")),
            }
        }

        // Content until the matching close tag.
        loop {
            if self.starts_with("</") {
                self.pos += 2;
                let close = self.parse_name()?;
                if close != name {
                    return Err(self.err(format!(
                        "mismatched close tag `{close}` (expected `{name}`)"
                    )));
                }
                self.skip_ws();
                if self.peek() != Some(b'>') {
                    return Err(self.err("expected `>` in close tag"));
                }
                self.pos += 1;
                return Ok(element);
            } else if self.starts_with("<!--") {
                self.skip_until("-->")?;
            } else if self.starts_with("<![CDATA[") {
                self.pos += "<![CDATA[".len();
                let start = self.pos;
                while self.pos < self.src.len() && !self.starts_with("]]>") {
                    self.pos += 1;
                }
                if self.pos >= self.src.len() {
                    return Err(self.err("unterminated CDATA section"));
                }
                let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                self.pos += 3;
                element.children.push(Node::Text(text));
            } else if self.starts_with("<?") {
                self.skip_until("?>")?;
            } else if self.peek() == Some(b'<') {
                let child = self.parse_element()?;
                element.children.push(Node::Element(child));
            } else if self.peek().is_none() {
                return Err(self.err(format!("unexpected end of input inside `{name}`")));
            } else {
                let start = self.pos;
                while self.peek().is_some() && self.peek() != Some(b'<') {
                    self.pos += 1;
                }
                let raw = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                let text = self.unescape(&raw)?;
                if !text.trim().is_empty() {
                    element.children.push(Node::Text(text));
                }
            }
        }
    }

    fn unescape(&self, s: &str) -> Result<String, XmlError> {
        if !s.contains('&') {
            return Ok(s.to_string());
        }
        let mut out = String::with_capacity(s.len());
        let mut rest = s;
        while let Some(amp) = rest.find('&') {
            out.push_str(&rest[..amp]);
            rest = &rest[amp..];
            let semi = rest
                .find(';')
                .ok_or_else(|| self.err("unterminated entity reference"))?;
            let entity = &rest[1..semi];
            match entity {
                "amp" => out.push('&'),
                "lt" => out.push('<'),
                "gt" => out.push('>'),
                "quot" => out.push('"'),
                "apos" => out.push('\''),
                _ if entity.starts_with("#x") || entity.starts_with("#X") => {
                    let code = u32::from_str_radix(&entity[2..], 16)
                        .map_err(|_| self.err(format!("bad character reference `{entity}`")))?;
                    out.push(
                        char::from_u32(code)
                            .ok_or_else(|| self.err("invalid character reference"))?,
                    );
                }
                _ if entity.starts_with('#') => {
                    let code: u32 = entity[1..]
                        .parse()
                        .map_err(|_| self.err(format!("bad character reference `{entity}`")))?;
                    out.push(
                        char::from_u32(code)
                            .ok_or_else(|| self.err("invalid character reference"))?,
                    );
                }
                other => {
                    return Err(self.err(format!("unknown entity `&{other};`")));
                }
            }
            rest = &rest[semi + 1..];
        }
        out.push_str(rest);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_document() {
        let doc = parse_document(r#"<?xml version="1.0"?><a x="1"><b/>text</a>"#).unwrap();
        assert_eq!(doc.name, "a");
        assert_eq!(doc.attribute("x"), Some("1"));
        assert_eq!(doc.children.len(), 2);
        assert_eq!(doc.text_content(), "text");
    }

    #[test]
    fn parses_nested_elements() {
        let doc = parse_document("<a><b><c k='v'/></b></a>").unwrap();
        let b = doc.first_child("b").unwrap();
        let c = b.first_child("c").unwrap();
        assert_eq!(c.attribute("k"), Some("v"));
    }

    #[test]
    fn resolves_entities() {
        let doc =
            parse_document("<a t=\"&lt;x&gt; &amp; &quot;y&quot;\">&apos;&#65;&#x42;</a>").unwrap();
        assert_eq!(doc.attribute("t"), Some("<x> & \"y\""));
        assert_eq!(doc.text_content(), "'AB");
    }

    #[test]
    fn parses_cdata() {
        let doc = parse_document("<a><![CDATA[x < y && z]]></a>").unwrap();
        assert_eq!(doc.text_content(), "x < y && z");
    }

    #[test]
    fn skips_comments_and_pis() {
        let doc =
            parse_document("<?xml version=\"1.0\"?><!-- hi --><a><!-- in --><b/><?pi d?></a>")
                .unwrap();
        assert_eq!(doc.child_elements().count(), 1);
    }

    #[test]
    fn rejects_doctype() {
        assert!(parse_document("<!DOCTYPE html><a/>").is_err());
    }

    #[test]
    fn rejects_mismatched_tags() {
        let err = parse_document("<a><b></a></b>").unwrap_err();
        assert!(err.message.contains("mismatched"));
    }

    #[test]
    fn rejects_unknown_entity() {
        assert!(parse_document("<a>&nbsp;</a>").is_err());
    }

    #[test]
    fn rejects_trailing_content() {
        assert!(parse_document("<a/><b/>").is_err());
    }

    #[test]
    fn rejects_unterminated_input() {
        assert!(parse_document("<a><b>").is_err());
        assert!(parse_document("<a attr=>").is_err());
        assert!(parse_document("<a attr='x>").is_err());
    }

    #[test]
    fn namespaced_names_parse() {
        let doc = parse_document(r#"<xmi:XMI xmlns:xmi="http://www.omg.org/XMI"/>"#).unwrap();
        assert_eq!(doc.name, "xmi:XMI");
        assert_eq!(doc.attribute("xmlns:xmi"), Some("http://www.omg.org/XMI"));
    }

    #[test]
    fn writer_roundtrips() {
        let e = Element::new("root")
            .attr("a", "1 < 2 & \"q\"")
            .child(Element::new("child").text("x & y"))
            .child(Element::new("empty"));
        let xml = e.to_xml();
        let parsed = parse_document(&xml).unwrap();
        assert_eq!(parsed, e);
    }

    #[test]
    fn writer_escapes() {
        let e = Element::new("r").attr("a", "\"<>&");
        let xml = e.to_xml();
        assert!(xml.contains("&quot;&lt;&gt;&amp;"));
    }

    #[test]
    fn single_quoted_attributes() {
        let doc = parse_document("<a x='y'/>").unwrap();
        assert_eq!(doc.attribute("x"), Some("y"));
    }

    #[test]
    fn whitespace_only_text_is_dropped() {
        let doc = parse_document("<a>\n  <b/>\n</a>").unwrap();
        assert_eq!(doc.children.len(), 1);
    }
}

#[cfg(test)]
mod depth_tests {
    use super::*;

    #[test]
    fn deep_nesting_rejected_gracefully() {
        let mut doc = String::new();
        for _ in 0..100_000 {
            doc.push_str("<a>");
        }
        let err = parse_document(&doc).unwrap_err();
        assert!(err.message.contains("too deep"));
        // Moderate nesting is fine.
        let ok = format!("{}{}", "<a>".repeat(50), "</a>".repeat(50));
        assert!(parse_document(&ok).is_ok());
    }
}
