//! Well-formedness validation of resource and behavioural models.
//!
//! The paper's design constraints (Section IV) are checked here:
//! collection resource definitions have no attributes, normal ones have at
//! least one typed attribute, every association carries a role name (needed
//! for URI composition), behavioural models reference existing states, and
//! contract expressions only speak about addressable resources.

use crate::behavior::BehavioralModel;
use crate::resource::{Multiplicity, ResourceKind, ResourceModel};
use std::fmt;

/// Severity of a validation finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Style / suspicious construct; generation can proceed.
    Warning,
    /// Violation of a well-formedness rule; generation would misbehave.
    Error,
}

/// A single validation finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Severity.
    pub severity: Severity,
    /// Which rule fired, e.g. `collection-has-attributes`.
    pub rule: &'static str,
    /// Human-readable description with element names.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        write!(f, "{sev}[{}]: {}", self.rule, self.message)
    }
}

/// Result of validating a model.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ValidationReport {
    /// All findings, in detection order.
    pub findings: Vec<Finding>,
}

impl ValidationReport {
    /// True when no `Error`-severity findings exist.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.findings.iter().all(|f| f.severity != Severity::Error)
    }

    /// Only the errors.
    pub fn errors(&self) -> impl Iterator<Item = &Finding> {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
    }

    /// Only the warnings.
    pub fn warnings(&self) -> impl Iterator<Item = &Finding> {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Warning)
    }

    fn error(&mut self, rule: &'static str, message: String) {
        self.findings.push(Finding {
            severity: Severity::Error,
            rule,
            message,
        });
    }

    fn warn(&mut self, rule: &'static str, message: String) {
        self.findings.push(Finding {
            severity: Severity::Warning,
            rule,
            message,
        });
    }

    /// Merge another report into this one.
    pub fn merge(&mut self, other: ValidationReport) {
        self.findings.extend(other.findings);
    }
}

impl fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.findings.is_empty() {
            return write!(f, "model is well-formed");
        }
        for (i, finding) in self.findings.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{finding}")?;
        }
        Ok(())
    }
}

fn is_uri_safe(segment: &str) -> bool {
    !segment.is_empty()
        && segment
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
}

/// Validate a resource model against the paper's structural constraints.
#[must_use]
pub fn validate_resource_model(model: &ResourceModel) -> ValidationReport {
    let mut report = ValidationReport::default();

    // Unique definition names.
    for (i, d) in model.definitions.iter().enumerate() {
        if model.definitions[..i].iter().any(|e| e.name == d.name) {
            report.error(
                "duplicate-definition",
                format!(
                    "resource definition `{}` is declared more than once",
                    d.name
                ),
            );
        }
    }

    for d in &model.definitions {
        match d.kind {
            ResourceKind::Collection => {
                if !d.attributes.is_empty() {
                    report.error(
                        "collection-has-attributes",
                        format!(
                            "collection resource definition `{}` must not declare attributes \
                             (found {})",
                            d.name,
                            d.attributes.len()
                        ),
                    );
                }
                // A collection should contain something via a 0..* association.
                let has_contained = model
                    .outgoing(&d.name)
                    .any(|a| a.multiplicity == Multiplicity::ZERO_MANY);
                if !has_contained {
                    report.warn(
                        "collection-without-contained",
                        format!(
                            "collection `{}` has no outgoing `0..*` association to a contained \
                             resource definition",
                            d.name
                        ),
                    );
                }
            }
            ResourceKind::Normal => {
                if d.attributes.is_empty() {
                    report.error(
                        "normal-without-attributes",
                        format!(
                            "normal resource definition `{}` must declare at least one typed \
                             attribute",
                            d.name
                        ),
                    );
                }
            }
        }
        // Attribute names unique within the definition.
        for (i, a) in d.attributes.iter().enumerate() {
            if d.attributes[..i].iter().any(|b| b.name == a.name) {
                report.error(
                    "duplicate-attribute",
                    format!(
                        "attribute `{}` of `{}` is declared more than once",
                        a.name, d.name
                    ),
                );
            }
        }
    }

    for a in &model.associations {
        if !is_uri_safe(&a.role) {
            report.error(
                "role-not-uri-safe",
                format!(
                    "association role `{}` ({} -> {}) is not a valid URI segment",
                    a.role, a.source, a.target
                ),
            );
        }
        if model.definition(&a.source).is_none() {
            report.error(
                "unknown-association-source",
                format!(
                    "association `{}` names unknown source `{}`",
                    a.role, a.source
                ),
            );
        }
        if model.definition(&a.target).is_none() {
            report.error(
                "unknown-association-target",
                format!(
                    "association `{}` names unknown target `{}`",
                    a.role, a.target
                ),
            );
        }
    }

    // (source, role) pairs must be unique, otherwise URIs are ambiguous.
    for (i, a) in model.associations.iter().enumerate() {
        if model.associations[..i]
            .iter()
            .any(|b| b.source == a.source && b.role == a.role)
        {
            report.error(
                "ambiguous-role",
                format!(
                    "source `{}` has two associations with role `{}`",
                    a.source, a.role
                ),
            );
        }
    }

    report
}

/// Validate a behavioural model, optionally cross-checking resource names
/// against a resource model.
#[must_use]
pub fn validate_behavioral_model(
    model: &BehavioralModel,
    resources: Option<&ResourceModel>,
) -> ValidationReport {
    let mut report = ValidationReport::default();

    for (i, s) in model.states.iter().enumerate() {
        if model.states[..i].iter().any(|t| t.name == s.name) {
            report.error(
                "duplicate-state",
                format!("state `{}` is declared more than once", s.name),
            );
        }
    }

    if model.state_named(&model.initial).is_none() {
        report.error(
            "unknown-initial-state",
            format!("initial state `{}` is not declared", model.initial),
        );
    }

    for (i, t) in model.transitions.iter().enumerate() {
        if model.transitions[..i].iter().any(|u| u.id == t.id) {
            report.error(
                "duplicate-transition-id",
                format!("transition id `{}` is used more than once", t.id),
            );
        }
        if model.state_named(&t.source).is_none() {
            report.error(
                "unknown-source-state",
                format!("transition `{}` leaves unknown state `{}`", t.id, t.source),
            );
        }
        if model.state_named(&t.target).is_none() {
            report.error(
                "unknown-target-state",
                format!("transition `{}` enters unknown state `{}`", t.id, t.target),
            );
        }
        if let Some(res) = resources {
            if res.definition(&t.trigger.resource).is_none() {
                report.error(
                    "unknown-trigger-resource",
                    format!(
                        "transition `{}` is triggered on `{}` which is not in resource model \
                         `{}`",
                        t.id, t.trigger.resource, res.name
                    ),
                );
            }
        }
        // Effects referencing pre-state are fine; guards must not.
        if let Some(g) = &t.guard {
            if g.references_pre_state() {
                report.error(
                    "guard-references-pre",
                    format!(
                        "guard of transition `{}` references the pre-state; guards are \
                         evaluated before the call",
                        t.id
                    ),
                );
            }
        }
    }

    // States that can never be reached from the initial state.
    let mut reached: Vec<&str> = vec![model.initial.as_str()];
    let mut frontier = vec![model.initial.as_str()];
    while let Some(s) = frontier.pop() {
        for t in model.transitions.iter().filter(|t| t.source == s) {
            if !reached.contains(&t.target.as_str()) {
                reached.push(&t.target);
                frontier.push(&t.target);
            }
        }
    }
    for s in &model.states {
        if !reached.contains(&s.name.as_str()) {
            report.warn(
                "unreachable-state",
                format!(
                    "state `{}` is unreachable from initial `{}`",
                    s.name, model.initial
                ),
            );
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::{State, Transition, TransitionBuilder, Trigger};
    use crate::http::HttpMethod;
    use crate::resource::{Association, AttrType, Attribute, ResourceDef};
    use cm_ocl::parse;

    fn ok_resource_model() -> ResourceModel {
        let mut m = ResourceModel::new("m");
        m.define(ResourceDef::collection("Volumes"))
            .define(ResourceDef::normal(
                "volume",
                vec![Attribute::new("status", AttrType::Str)],
            ))
            .associate(Association::new(
                "volume",
                "Volumes",
                "volume",
                Multiplicity::ZERO_MANY,
            ));
        m
    }

    fn tr(id: &str, src: &str, dst: &str) -> Transition {
        TransitionBuilder::new(id, src, Trigger::new(HttpMethod::Get, "volume"), dst).build()
    }

    #[test]
    fn valid_resource_model_passes() {
        let r = validate_resource_model(&ok_resource_model());
        assert!(r.is_valid(), "{r}");
        assert_eq!(r.findings.len(), 0);
    }

    #[test]
    fn collection_with_attributes_is_error() {
        let mut m = ok_resource_model();
        m.definitions[0]
            .attributes
            .push(Attribute::new("x", AttrType::Int));
        let r = validate_resource_model(&m);
        assert!(!r.is_valid());
        assert!(r.errors().any(|f| f.rule == "collection-has-attributes"));
    }

    #[test]
    fn normal_without_attributes_is_error() {
        let mut m = ok_resource_model();
        m.definitions[1].attributes.clear();
        let r = validate_resource_model(&m);
        assert!(r.errors().any(|f| f.rule == "normal-without-attributes"));
    }

    #[test]
    fn duplicate_definition_is_error() {
        let mut m = ok_resource_model();
        m.define(ResourceDef::collection("Volumes"));
        let r = validate_resource_model(&m);
        assert!(r.errors().any(|f| f.rule == "duplicate-definition"));
    }

    #[test]
    fn dangling_association_is_error() {
        let mut m = ok_resource_model();
        m.associate(Association::new(
            "ghost",
            "Volumes",
            "nothing",
            Multiplicity::ONE,
        ));
        let r = validate_resource_model(&m);
        assert!(r.errors().any(|f| f.rule == "unknown-association-target"));
    }

    #[test]
    fn bad_role_name_is_error() {
        let mut m = ok_resource_model();
        m.associate(Association::new(
            "has space",
            "Volumes",
            "volume",
            Multiplicity::ONE,
        ));
        let r = validate_resource_model(&m);
        assert!(r.errors().any(|f| f.rule == "role-not-uri-safe"));
    }

    #[test]
    fn ambiguous_role_is_error() {
        let mut m = ok_resource_model();
        m.associate(Association::new(
            "volume",
            "Volumes",
            "volume",
            Multiplicity::ONE,
        ));
        let r = validate_resource_model(&m);
        assert!(r.errors().any(|f| f.rule == "ambiguous-role"));
    }

    #[test]
    fn collection_without_contained_warns() {
        let mut m = ResourceModel::new("m");
        m.define(ResourceDef::collection("Empty"));
        let r = validate_resource_model(&m);
        assert!(r.is_valid());
        assert!(r
            .warnings()
            .any(|f| f.rule == "collection-without-contained"));
    }

    fn ok_behavioral_model() -> BehavioralModel {
        let mut m = BehavioralModel::new("b", "project", "s0");
        m.state(State::new("s0", parse("true").unwrap()))
            .state(State::new("s1", parse("true").unwrap()));
        m.transition(tr("t1", "s0", "s1"));
        m
    }

    #[test]
    fn valid_behavioral_model_passes() {
        let r = validate_behavioral_model(&ok_behavioral_model(), None);
        assert!(r.is_valid(), "{r}");
    }

    #[test]
    fn unknown_initial_is_error() {
        let mut m = ok_behavioral_model();
        m.initial = "ghost".into();
        let r = validate_behavioral_model(&m, None);
        assert!(r.errors().any(|f| f.rule == "unknown-initial-state"));
    }

    #[test]
    fn unknown_states_in_transition_are_errors() {
        let mut m = ok_behavioral_model();
        m.transition(tr("t2", "ghost", "s1"));
        m.transition(tr("t3", "s0", "phantom"));
        let r = validate_behavioral_model(&m, None);
        assert!(r.errors().any(|f| f.rule == "unknown-source-state"));
        assert!(r.errors().any(|f| f.rule == "unknown-target-state"));
    }

    #[test]
    fn duplicate_transition_id_is_error() {
        let mut m = ok_behavioral_model();
        m.transition(tr("t1", "s0", "s1"));
        let r = validate_behavioral_model(&m, None);
        assert!(r.errors().any(|f| f.rule == "duplicate-transition-id"));
    }

    #[test]
    fn cross_check_trigger_resource() {
        let m = ok_behavioral_model();
        let resources = ok_resource_model(); // has `volume`
        let r = validate_behavioral_model(&m, Some(&resources));
        assert!(r.is_valid(), "{r}");

        let empty = ResourceModel::new("empty");
        let r2 = validate_behavioral_model(&m, Some(&empty));
        assert!(r2.errors().any(|f| f.rule == "unknown-trigger-resource"));
    }

    #[test]
    fn guard_with_pre_is_error() {
        let mut m = ok_behavioral_model();
        m.transition(
            TransitionBuilder::new("t9", "s0", Trigger::new(HttpMethod::Put, "volume"), "s1")
                .guard(parse("pre(x) = 1").unwrap())
                .build(),
        );
        let r = validate_behavioral_model(&m, None);
        assert!(r.errors().any(|f| f.rule == "guard-references-pre"));
    }

    #[test]
    fn unreachable_state_warns() {
        let mut m = ok_behavioral_model();
        m.state(State::new("island", parse("true").unwrap()));
        let r = validate_behavioral_model(&m, None);
        assert!(r.is_valid());
        assert!(r.warnings().any(|f| f.rule == "unreachable-state"));
    }

    #[test]
    fn report_display() {
        let r = validate_resource_model(&ok_resource_model());
        assert_eq!(r.to_string(), "model is well-formed");
    }
}
