//! HTTP method vocabulary of the modelling language.
//!
//! REST behavioural models trigger transitions with one of the four uniform
//! interface methods the paper considers (GET, PUT, POST, DELETE); the
//! monitor and simulator reuse this type so that triggers, routes and policy
//! rules all share one vocabulary.

use std::fmt;
use std::str::FromStr;

/// An HTTP request method of the uniform REST interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum HttpMethod {
    /// Safe read of a resource representation.
    Get,
    /// Full update / replacement of a resource.
    Put,
    /// Creation of a subordinate resource in a collection.
    Post,
    /// Removal of a resource.
    Delete,
}

impl HttpMethod {
    /// All methods, in the order the paper lists them.
    pub const ALL: [HttpMethod; 4] = [
        HttpMethod::Get,
        HttpMethod::Put,
        HttpMethod::Post,
        HttpMethod::Delete,
    ];

    /// Canonical upper-case name, e.g. `"DELETE"`.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            HttpMethod::Get => "GET",
            HttpMethod::Put => "PUT",
            HttpMethod::Post => "POST",
            HttpMethod::Delete => "DELETE",
        }
    }

    /// True for methods that must not modify server state (only GET here).
    #[must_use]
    pub fn is_safe(self) -> bool {
        matches!(self, HttpMethod::Get)
    }

    /// True for idempotent methods (GET, PUT, DELETE).
    #[must_use]
    pub fn is_idempotent(self) -> bool {
        !matches!(self, HttpMethod::Post)
    }
}

impl fmt::Display for HttpMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error returned when parsing an unknown HTTP method name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseMethodError(pub String);

impl fmt::Display for ParseMethodError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown HTTP method `{}`", self.0)
    }
}

impl std::error::Error for ParseMethodError {}

impl FromStr for HttpMethod {
    type Err = ParseMethodError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "GET" => Ok(HttpMethod::Get),
            "PUT" => Ok(HttpMethod::Put),
            "POST" => Ok(HttpMethod::Post),
            "DELETE" => Ok(HttpMethod::Delete),
            other => Err(ParseMethodError(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_case_insensitively() {
        assert_eq!("delete".parse::<HttpMethod>().unwrap(), HttpMethod::Delete);
        assert_eq!("GET".parse::<HttpMethod>().unwrap(), HttpMethod::Get);
    }

    #[test]
    fn rejects_unknown_method() {
        assert!("PATCH".parse::<HttpMethod>().is_err());
    }

    #[test]
    fn display_roundtrips_parse() {
        for m in HttpMethod::ALL {
            assert_eq!(m.as_str().parse::<HttpMethod>().unwrap(), m);
        }
    }

    #[test]
    fn safety_and_idempotence() {
        assert!(HttpMethod::Get.is_safe());
        assert!(!HttpMethod::Post.is_safe());
        assert!(HttpMethod::Put.is_idempotent());
        assert!(HttpMethod::Delete.is_idempotent());
        assert!(!HttpMethod::Post.is_idempotent());
    }
}
