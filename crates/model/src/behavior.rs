//! The behavioural model: a UML protocol-state-machine subset.
//!
//! Following the paper's Section IV-B, the behavioural interface of a REST
//! API is a state machine whose states carry **OCL invariants** over the
//! addressable resources (so REST statelessness is not compromised — the
//! "state" is fully reconstructible from GETs on the resources), and whose
//! transitions are triggered by HTTP methods on resources, guarded by
//! functional + authorization conditions, and annotated with effects and
//! security-requirement ids (the comments of Figure 3 that provide
//! requirement traceability).

use crate::http::HttpMethod;
use cm_ocl::Expr;
use std::fmt;

/// A state of the behavioural model with its OCL invariant.
#[derive(Debug, Clone, PartialEq)]
pub struct State {
    /// State name, e.g. `project_with_no_volume`.
    pub name: String,
    /// OCL invariant over addressable resources; `true` if unconstrained.
    pub invariant: Expr,
}

impl State {
    /// Create a state.
    #[must_use]
    pub fn new(name: impl Into<String>, invariant: Expr) -> Self {
        State {
            name: name.into(),
            invariant,
        }
    }
}

/// The trigger of a transition: an HTTP method invoked on a resource
/// definition, e.g. `POST(volume)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Trigger {
    /// HTTP method.
    pub method: HttpMethod,
    /// Resource-definition name the method is invoked on.
    pub resource: String,
}

impl Trigger {
    /// Create a trigger.
    #[must_use]
    pub fn new(method: HttpMethod, resource: impl Into<String>) -> Self {
        Trigger {
            method,
            resource: resource.into(),
        }
    }
}

impl fmt::Display for Trigger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.method, self.resource)
    }
}

/// A transition of the behavioural model.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// Unique transition id within the model (diagnostics / traceability).
    pub id: String,
    /// Source state name.
    pub source: String,
    /// Target state name.
    pub target: String,
    /// Trigger (method + resource).
    pub trigger: Trigger,
    /// Guard: functional + authorization condition; `None` means `true`.
    pub guard: Option<Expr>,
    /// Effect: condition on the post-state relating it to the pre-state
    /// (may use `pre(...)`); `None` means `true`.
    pub effect: Option<Expr>,
    /// Security-requirement ids exercised by this transition (the
    /// requirement-annotation comments of Figure 3), e.g. `["1.4"]`.
    pub security_requirements: Vec<String>,
}

/// Builder for [`Transition`] (many optional parts).
#[derive(Debug, Clone)]
pub struct TransitionBuilder {
    inner: Transition,
}

impl TransitionBuilder {
    /// Start a transition `source --trigger--> target`.
    #[must_use]
    pub fn new(
        id: impl Into<String>,
        source: impl Into<String>,
        trigger: Trigger,
        target: impl Into<String>,
    ) -> Self {
        TransitionBuilder {
            inner: Transition {
                id: id.into(),
                source: source.into(),
                target: target.into(),
                trigger,
                guard: None,
                effect: None,
                security_requirements: Vec::new(),
            },
        }
    }

    /// Attach a guard expression.
    #[must_use]
    pub fn guard(mut self, guard: Expr) -> Self {
        self.inner.guard = Some(guard);
        self
    }

    /// Attach an effect expression.
    #[must_use]
    pub fn effect(mut self, effect: Expr) -> Self {
        self.inner.effect = Some(effect);
        self
    }

    /// Attach a security-requirement annotation.
    #[must_use]
    pub fn security_requirement(mut self, id: impl Into<String>) -> Self {
        self.inner.security_requirements.push(id.into());
        self
    }

    /// Finish building.
    #[must_use]
    pub fn build(self) -> Transition {
        self.inner
    }
}

/// A behavioural model: a protocol state machine for one context resource
/// (the right side of the paper's Figure 3 models a `project`).
#[derive(Debug, Clone, PartialEq)]
pub struct BehavioralModel {
    /// Model name, e.g. `CinderProject`.
    pub name: String,
    /// Context variable name the invariants speak about, e.g. `project`.
    pub context: String,
    /// Name of the initial state.
    pub initial: String,
    /// States.
    pub states: Vec<State>,
    /// Transitions.
    pub transitions: Vec<Transition>,
}

impl BehavioralModel {
    /// Create an empty behavioural model.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        context: impl Into<String>,
        initial: impl Into<String>,
    ) -> Self {
        BehavioralModel {
            name: name.into(),
            context: context.into(),
            initial: initial.into(),
            states: Vec::new(),
            transitions: Vec::new(),
        }
    }

    /// Add a state (builder style).
    pub fn state(&mut self, state: State) -> &mut Self {
        self.states.push(state);
        self
    }

    /// Add a transition (builder style).
    pub fn transition(&mut self, transition: Transition) -> &mut Self {
        self.transitions.push(transition);
        self
    }

    /// Look up a state by name.
    #[must_use]
    pub fn state_named(&self, name: &str) -> Option<&State> {
        self.states.iter().find(|s| s.name == name)
    }

    /// All transitions triggered by `trigger` (the grouping step of the
    /// paper's contract generation: one method may fire several
    /// transitions, whose information must be combined into one contract).
    pub fn transitions_for(&self, trigger: &Trigger) -> impl Iterator<Item = &Transition> {
        let t = trigger.clone();
        self.transitions.iter().filter(move |tr| tr.trigger == t)
    }

    /// The distinct triggers appearing in the model, in first-use order.
    #[must_use]
    pub fn triggers(&self) -> Vec<Trigger> {
        let mut out: Vec<Trigger> = Vec::new();
        for t in &self.transitions {
            if !out.contains(&t.trigger) {
                out.push(t.trigger.clone());
            }
        }
        out
    }

    /// Transitions leaving `state`.
    pub fn outgoing(&self, state: &str) -> impl Iterator<Item = &Transition> {
        let s = state.to_string();
        self.transitions.iter().filter(move |t| t.source == s)
    }

    /// All security-requirement ids annotated anywhere in the model.
    #[must_use]
    pub fn security_requirement_ids(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for t in &self.transitions {
            for r in &t.security_requirements {
                if !out.contains(r) {
                    out.push(r.clone());
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_ocl::parse;

    fn two_state_model() -> BehavioralModel {
        let mut m = BehavioralModel::new("m", "project", "empty");
        m.state(State::new(
            "empty",
            parse("project.volumes->size()=0").unwrap(),
        ))
        .state(State::new(
            "nonempty",
            parse("project.volumes->size()>=1").unwrap(),
        ));
        m.transition(
            TransitionBuilder::new(
                "t1",
                "empty",
                Trigger::new(HttpMethod::Post, "volume"),
                "nonempty",
            )
            .guard(parse("user.groups = 'admin'").unwrap())
            .security_requirement("1.3")
            .build(),
        );
        m.transition(
            TransitionBuilder::new(
                "t2",
                "nonempty",
                Trigger::new(HttpMethod::Post, "volume"),
                "nonempty",
            )
            .build(),
        );
        m
    }

    #[test]
    fn groups_transitions_by_trigger() {
        let m = two_state_model();
        let trig = Trigger::new(HttpMethod::Post, "volume");
        assert_eq!(m.transitions_for(&trig).count(), 2);
        let other = Trigger::new(HttpMethod::Delete, "volume");
        assert_eq!(m.transitions_for(&other).count(), 0);
    }

    #[test]
    fn triggers_deduplicate_in_order() {
        let m = two_state_model();
        assert_eq!(m.triggers(), vec![Trigger::new(HttpMethod::Post, "volume")]);
    }

    #[test]
    fn outgoing_transitions() {
        let m = two_state_model();
        assert_eq!(m.outgoing("empty").count(), 1);
        assert_eq!(m.outgoing("nonempty").count(), 1);
    }

    #[test]
    fn security_requirements_collected() {
        let m = two_state_model();
        assert_eq!(m.security_requirement_ids(), vec!["1.3".to_string()]);
    }

    #[test]
    fn trigger_display() {
        assert_eq!(
            Trigger::new(HttpMethod::Delete, "volume").to_string(),
            "DELETE(volume)"
        );
    }

    #[test]
    fn state_lookup() {
        let m = two_state_model();
        assert!(m.state_named("empty").is_some());
        assert!(m.state_named("ghost").is_none());
    }
}
