//! Rendering of models as Graphviz DOT and plain text.
//!
//! These renderings regenerate the paper's Figure 3: the resource model as
//! a class diagram and the behavioural model as a state machine. The text
//! form is used by the `fig3_models` experiment binary; the DOT form can be
//! fed to `dot -Tpng` for a graphical diagram.

use crate::behavior::BehavioralModel;
use crate::resource::{ResourceKind, ResourceModel};
use cm_ocl::{render as render_ocl, PrintStyle};
use std::fmt::Write as _;

/// Render a resource model as Graphviz DOT (class-diagram style).
#[must_use]
pub fn resource_model_dot(model: &ResourceModel) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", model.name);
    let _ = writeln!(out, "  graph [rankdir=LR];");
    let _ = writeln!(out, "  node [shape=record, fontname=\"Helvetica\"];");
    for d in &model.definitions {
        let stereotype = match d.kind {
            ResourceKind::Collection => "\\<\\<collection\\>\\>",
            ResourceKind::Normal => "\\<\\<resource\\>\\>",
        };
        let attrs: Vec<String> = d
            .attributes
            .iter()
            .map(|a| format!("+ {} : {}", a.name, a.ty))
            .collect();
        let _ = writeln!(
            out,
            "  \"{}\" [label=\"{{{stereotype}\\n{}|{}}}\"];",
            d.name,
            d.name,
            attrs.join("\\l")
        );
    }
    for a in &model.associations {
        let _ = writeln!(
            out,
            "  \"{}\" -> \"{}\" [label=\"{} [{}]\"];",
            a.source, a.target, a.role, a.multiplicity
        );
    }
    out.push_str("}\n");
    out
}

/// Render a behavioural model as Graphviz DOT (state-machine style).
#[must_use]
pub fn behavioral_model_dot(model: &BehavioralModel) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", model.name);
    let _ = writeln!(
        out,
        "  node [shape=box, style=rounded, fontname=\"Helvetica\"];"
    );
    let _ = writeln!(out, "  \"__initial\" [shape=point];");
    let _ = writeln!(out, "  \"__initial\" -> \"{}\";", model.initial);
    for s in &model.states {
        let inv = render_ocl(&s.invariant, PrintStyle::Canonical).replace('"', "\\\"");
        let _ = writeln!(out, "  \"{}\" [label=\"{}\\n[{}]\"];", s.name, s.name, inv);
    }
    for t in &model.transitions {
        let mut label = t.trigger.to_string();
        if let Some(g) = &t.guard {
            let _ = write!(
                label,
                "\\n[{}]",
                render_ocl(g, PrintStyle::Canonical).replace('"', "\\\"")
            );
        }
        if !t.security_requirements.is_empty() {
            let _ = write!(label, "\\nSecReq {}", t.security_requirements.join(", "));
        }
        let _ = writeln!(
            out,
            "  \"{}\" -> \"{}\" [label=\"{label}\"];",
            t.source, t.target
        );
    }
    out.push_str("}\n");
    out
}

/// Render a resource model as indented plain text.
#[must_use]
pub fn resource_model_text(model: &ResourceModel) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Resource model `{}`", model.name);
    for d in &model.definitions {
        let _ = writeln!(out, "  {} {}", d.kind, d.name);
        for a in &d.attributes {
            let _ = writeln!(out, "    + {} : {}", a.name, a.ty);
        }
        for assoc in model.outgoing(&d.name) {
            let _ = writeln!(
                out,
                "    --{}[{}]--> {}",
                assoc.role, assoc.multiplicity, assoc.target
            );
        }
    }
    out
}

/// Render a behavioural model as indented plain text, paper style for
/// the OCL (implication as `=>`).
#[must_use]
pub fn behavioral_model_text(model: &BehavioralModel) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Behavioral model `{}` (context {}, initial {})",
        model.name, model.context, model.initial
    );
    for s in &model.states {
        let _ = writeln!(out, "  state {}", s.name);
        let _ = writeln!(
            out,
            "    inv: {}",
            render_ocl(&s.invariant, PrintStyle::Paper)
        );
    }
    for t in &model.transitions {
        let _ = writeln!(out, "  {} --{}--> {}", t.source, t.trigger, t.target);
        if let Some(g) = &t.guard {
            let _ = writeln!(out, "    guard: {}", render_ocl(g, PrintStyle::Paper));
        }
        if let Some(e) = &t.effect {
            let _ = writeln!(out, "    effect: {}", render_ocl(e, PrintStyle::Paper));
        }
        if !t.security_requirements.is_empty() {
            let _ = writeln!(out, "    secreq: {}", t.security_requirements.join(", "));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cinder;

    #[test]
    fn resource_dot_contains_all_definitions() {
        let dot = resource_model_dot(&cinder::resource_model());
        for name in [
            "Projects",
            "project",
            "Volumes",
            "volume",
            "quota_sets",
            "usergroup",
        ] {
            assert!(
                dot.contains(&format!("\"{name}\"")),
                "missing {name} in DOT"
            );
        }
        assert!(dot.starts_with("digraph"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn resource_dot_labels_roles_and_multiplicities() {
        let dot = resource_model_dot(&cinder::resource_model());
        assert!(dot.contains("volume [0..*]"));
        assert!(dot.contains("quota_sets [1..1]"));
    }

    #[test]
    fn behavioral_dot_contains_states_and_triggers() {
        let dot = behavioral_model_dot(&cinder::behavioral_model());
        assert!(dot.contains(cinder::S_NO_VOLUME));
        assert!(dot.contains(cinder::S_NOT_FULL));
        assert!(dot.contains(cinder::S_FULL));
        assert!(dot.contains("DELETE(volume)"));
        assert!(dot.contains("SecReq 1.4"));
        assert!(dot.contains("__initial"));
    }

    #[test]
    fn text_rendering_shows_invariants_paper_style() {
        let text = behavioral_model_text(&cinder::behavioral_model());
        assert!(text.contains("project.id->size() = 1"));
        assert!(text.contains("guard:"));
        assert!(text.contains("effect:"));
        assert!(text.contains("secreq: 1.4"));
    }

    #[test]
    fn resource_text_lists_attributes() {
        let text = resource_model_text(&cinder::resource_model());
        assert!(text.contains("+ status : String"));
        assert!(text.contains("collection Volumes"));
        assert!(text.contains("--volume[0..*]--> volume"));
    }
}
