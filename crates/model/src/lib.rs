//! # cm-model — UML models for REST behavioural interfaces
//!
//! The modelling layer of the DSN 2018 cloud-monitor reproduction. Two
//! model kinds, mirroring the paper's Figure 3:
//!
//! * [`ResourceModel`] — a class-diagram subset: collection/normal
//!   *resource definitions*, typed public attributes and associations with
//!   role names and multiplicities (from which URIs are composed);
//! * [`BehavioralModel`] — a protocol-state-machine subset: states carrying
//!   OCL invariants over addressable resources, transitions triggered by
//!   HTTP methods with guards, effects and security-requirement
//!   annotations.
//!
//! [`validate_resource_model`]/[`validate_behavioral_model`] enforce the
//! paper's well-formedness constraints; [`render`] regenerates Figure 3 as
//! DOT or text; [`cinder`] ships the paper's running example.
//!
//! ## Example
//!
//! ```
//! use cm_model::{cinder, validate_behavioral_model, validate_resource_model};
//!
//! let resources = cinder::resource_model();
//! let behavior = cinder::behavioral_model();
//! assert!(validate_resource_model(&resources).is_valid());
//! assert!(validate_behavioral_model(&behavior, Some(&resources)).is_valid());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod behavior;
pub mod cinder;
pub mod http;
pub mod render;
pub mod resource;
pub mod slice;
pub mod typecheck;
pub mod validate;

pub use behavior::{BehavioralModel, State, Transition, TransitionBuilder, Trigger};
pub use http::{HttpMethod, ParseMethodError};
pub use render::{
    behavioral_model_dot, behavioral_model_text, resource_model_dot, resource_model_text,
};
pub use resource::{
    Association, AttrType, Attribute, Multiplicity, ResourceDef, ResourceKind, ResourceModel,
    UpperBound,
};
pub use slice::{slice_behavioral_model, slice_resource_model, SliceCriterion};
pub use typecheck::{type_env_for, typecheck_behavioral_model, TypeFinding};
pub use validate::{
    validate_behavioral_model, validate_resource_model, Finding, Severity, ValidationReport,
};
