//! Model slicing — the paper's future-work item realised.
//!
//! "We are planning to address these limitations in our future work by
//! proposing a support for splitting the models into several parts via
//! slicing or aspect-oriented approaches" (Section VI-B). A slice keeps
//! only the transitions relevant to a criterion (security requirements,
//! methods, or trigger resources) plus the states they touch, so an
//! analyst can monitor just the critical scenarios — e.g. a
//! DELETE-only monitor for SecReq 1.4 — without carrying the whole model.

use crate::behavior::BehavioralModel;
use crate::http::HttpMethod;
use crate::resource::ResourceModel;

/// What to keep in a behavioural-model slice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SliceCriterion {
    /// Keep transitions annotated with any of these requirement ids.
    Requirements(Vec<String>),
    /// Keep transitions triggered by any of these methods.
    Methods(Vec<HttpMethod>),
    /// Keep transitions triggered on any of these resource definitions.
    Resources(Vec<String>),
}

impl SliceCriterion {
    fn keeps(&self, t: &crate::behavior::Transition) -> bool {
        match self {
            SliceCriterion::Requirements(ids) => {
                t.security_requirements.iter().any(|r| ids.contains(r))
            }
            SliceCriterion::Methods(methods) => methods.contains(&t.trigger.method),
            SliceCriterion::Resources(resources) => resources.contains(&t.trigger.resource),
        }
    }
}

/// Slice a behavioural model by a criterion.
///
/// The result contains exactly the matching transitions and the states
/// they reference. The initial state is preserved when it survives the
/// slice; otherwise the first kept transition's source becomes initial
/// (the sliced scenario starts mid-protocol). An empty slice keeps the
/// initial state so the model remains well-formed.
///
/// # Examples
///
/// ```
/// use cm_model::{cinder, slice_behavioral_model, SliceCriterion};
/// // A DELETE-only monitor for SecReq 1.4:
/// let slice = slice_behavioral_model(
///     &cinder::behavioral_model(),
///     &SliceCriterion::Requirements(vec!["1.4".into()]),
/// );
/// assert_eq!(slice.transitions.len(), 3);
/// ```
#[must_use]
pub fn slice_behavioral_model(
    model: &BehavioralModel,
    criterion: &SliceCriterion,
) -> BehavioralModel {
    let kept: Vec<_> = model
        .transitions
        .iter()
        .filter(|t| criterion.keeps(t))
        .cloned()
        .collect();

    let mut state_names: Vec<&str> = Vec::new();
    for t in &kept {
        for name in [t.source.as_str(), t.target.as_str()] {
            if !state_names.contains(&name) {
                state_names.push(name);
            }
        }
    }

    let initial = if state_names.contains(&model.initial.as_str()) {
        model.initial.clone()
    } else if let Some(first) = kept.first() {
        first.source.clone()
    } else {
        model.initial.clone()
    };
    if !state_names.contains(&initial.as_str()) {
        state_names.push(&initial);
    }

    let mut sliced = BehavioralModel::new(
        format!("{}~slice", model.name),
        model.context.clone(),
        initial.clone(),
    );
    // Preserve original state order for determinism.
    for s in &model.states {
        if state_names.contains(&s.name.as_str()) {
            sliced.state(s.clone());
        }
    }
    for t in kept {
        sliced.transition(t);
    }
    sliced
}

/// Slice a resource model down to the named definitions plus the
/// associations connecting them (URI derivation still works for the kept
/// part).
#[must_use]
pub fn slice_resource_model(model: &ResourceModel, keep: &[&str]) -> ResourceModel {
    let mut sliced = ResourceModel::new(format!("{}~slice", model.name));
    for d in &model.definitions {
        if keep.contains(&d.name.as_str()) {
            sliced.define(d.clone());
        }
    }
    for a in &model.associations {
        if keep.contains(&a.source.as_str()) && keep.contains(&a.target.as_str()) {
            sliced.associate(a.clone());
        }
    }
    sliced
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cinder;
    use crate::validate::{validate_behavioral_model, validate_resource_model};

    #[test]
    fn slice_by_requirement_keeps_delete_scenario() {
        let model = cinder::behavioral_model();
        let slice = slice_behavioral_model(
            &model,
            &SliceCriterion::Requirements(vec!["1.4".to_string()]),
        );
        assert_eq!(slice.transitions.len(), 3, "the three DELETE transitions");
        assert!(slice
            .transitions
            .iter()
            .all(|t| t.trigger.method == HttpMethod::Delete));
        // States touched: no_volume (target), not_full, full.
        assert_eq!(slice.states.len(), 3);
        assert!(validate_behavioral_model(&slice, None).is_valid());
        assert_eq!(slice.context, "project");
    }

    #[test]
    fn slice_by_method() {
        let model = cinder::behavioral_model();
        let slice = slice_behavioral_model(&model, &SliceCriterion::Methods(vec![HttpMethod::Get]));
        assert_eq!(slice.transitions.len(), 2);
        // GET self-loops never touch the initial no-volume state, so the
        // slice re-bases its initial state.
        assert_eq!(slice.initial, cinder::S_NOT_FULL);
        assert!(validate_behavioral_model(&slice, None).is_valid());
    }

    #[test]
    fn slice_preserves_initial_when_kept() {
        let model = cinder::behavioral_model();
        let slice =
            slice_behavioral_model(&model, &SliceCriterion::Methods(vec![HttpMethod::Post]));
        assert_eq!(slice.initial, cinder::S_NO_VOLUME);
        assert_eq!(slice.transitions.len(), 4);
    }

    #[test]
    fn empty_slice_is_still_well_formed() {
        let model = cinder::behavioral_model();
        let slice = slice_behavioral_model(
            &model,
            &SliceCriterion::Requirements(vec!["9.9".to_string()]),
        );
        assert!(slice.transitions.is_empty());
        assert_eq!(slice.states.len(), 1);
        assert!(validate_behavioral_model(&slice, None).is_valid());
    }

    #[test]
    fn slice_by_resource() {
        let model = cinder::behavioral_model();
        let slice = slice_behavioral_model(
            &model,
            &SliceCriterion::Resources(vec!["volume".to_string()]),
        );
        // Everything in the cinder model triggers on `volume`.
        assert_eq!(slice.transitions.len(), model.transitions.len());
    }

    #[test]
    fn resource_model_slice_keeps_connecting_associations() {
        let model = cinder::resource_model();
        let slice = slice_resource_model(&model, &["Volumes", "volume"]);
        assert_eq!(slice.definitions.len(), 2);
        assert_eq!(slice.associations.len(), 1);
        assert_eq!(slice.associations[0].role, "volume");
        assert!(validate_resource_model(&slice).is_valid());
    }
}
