//! The paper's running example: the Cinder (OpenStack block storage)
//! resource and behavioural models of Figure 3, plus the guard vocabulary
//! of Table I.
//!
//! These canned models are used by the examples, the integration tests and
//! the benchmark harness that regenerates the paper's artifacts
//! (Table I, Figure 3, Listing 1).

use crate::behavior::{BehavioralModel, State, TransitionBuilder, Trigger};
use crate::http::HttpMethod;
use crate::resource::{Association, AttrType, Attribute, Multiplicity, ResourceDef, ResourceModel};
use cm_ocl::parse;

/// State name: a project exists and has no volumes.
pub const S_NO_VOLUME: &str = "project_with_no_volume";
/// State name: a project has at least one volume and spare quota.
pub const S_NOT_FULL: &str = "project_with_volume_and_not_full_quota";
/// State name: a project has volumes and its quota is exhausted.
pub const S_FULL: &str = "project_with_volume_and_full_quota";

/// Build the Figure 3 (left) resource model extract for Cinder.
///
/// Collections `Projects` and `Volumes`; normal definitions `project`,
/// `volume`, `quota_sets` and `usergroup`. Role names follow the
/// Cinder API paths (`/{project_id}/volumes/{volume_id}`).
#[must_use]
pub fn resource_model() -> ResourceModel {
    let mut m = ResourceModel::new("Cinder");
    m.define(ResourceDef::collection("Projects"))
        .define(ResourceDef::normal(
            "project",
            vec![
                Attribute::new("id", AttrType::Int),
                Attribute::new("name", AttrType::Str),
            ],
        ))
        .define(ResourceDef::collection("Volumes"))
        .define(ResourceDef::normal(
            "volume",
            vec![
                Attribute::new("id", AttrType::Int),
                Attribute::new("name", AttrType::Str),
                Attribute::new("status", AttrType::Str),
                Attribute::new("size", AttrType::Int),
            ],
        ))
        .define(ResourceDef::normal(
            "quota_sets",
            vec![Attribute::new("volume", AttrType::Int)],
        ))
        .define(ResourceDef::normal(
            "usergroup",
            vec![
                Attribute::new("name", AttrType::Str),
                Attribute::new("role", AttrType::Str),
            ],
        ));
    m.associate(Association::new(
        "project",
        "Projects",
        "project",
        Multiplicity::ZERO_MANY,
    ))
    .associate(Association::new(
        "volumes",
        "project",
        "Volumes",
        Multiplicity::ONE,
    ))
    .associate(Association::new(
        "volume",
        "Volumes",
        "volume",
        Multiplicity::ZERO_MANY,
    ))
    .associate(Association::new(
        "quota_sets",
        "project",
        "quota_sets",
        Multiplicity::ONE,
    ))
    .associate(Association::new(
        "usergroup",
        "project",
        "usergroup",
        Multiplicity::ZERO_MANY,
    ));
    m
}

/// Build the Figure 3 (right) behavioural model for a Cinder project.
///
/// Three states with OCL invariants; POST/DELETE transitions move between
/// them under authorization guards; GET/PUT self-loops are read/update
/// scenarios. Security-requirement annotations follow Table I:
/// `1.1` GET, `1.2` PUT, `1.3` POST, `1.4` DELETE on `volume`.
///
/// # Panics
///
/// Never panics in practice: all embedded OCL strings are tested to parse.
#[must_use]
pub fn behavioral_model() -> BehavioralModel {
    let inv_no_volume =
        parse("project.id->size()=1 and project.volumes->size()=0").expect("invariant parses");
    let inv_not_full = parse(
        "project.id->size()=1 and project.volumes->size()>=1 and \
         project.volumes->size() < quota_sets.volume",
    )
    .expect("invariant parses");
    let inv_full = parse(
        "project.id->size()=1 and project.volumes->size()>=1 and \
         project.volumes->size() = quota_sets.volume",
    )
    .expect("invariant parses");

    let auth_write = "(user.groups = 'admin' or user.groups = 'member')";
    let auth_read = "(user.groups = 'admin' or user.groups = 'member' or user.groups = 'user')";
    let auth_delete = "user.groups = 'admin'";

    let post_effect =
        parse("project.volumes->size() = pre(project.volumes->size()) + 1").expect("effect parses");
    let delete_effect =
        parse("project.volumes->size() < pre(project.volumes->size())").expect("effect parses");
    let read_effect =
        parse("project.volumes->size() = pre(project.volumes->size())").expect("effect parses");

    let mut m = BehavioralModel::new("CinderProject", "project", S_NO_VOLUME);
    m.state(State::new(S_NO_VOLUME, inv_no_volume))
        .state(State::new(S_NOT_FULL, inv_not_full))
        .state(State::new(S_FULL, inv_full));

    // POST(volume): create a volume.
    m.transition(
        TransitionBuilder::new(
            "t_post_1",
            S_NO_VOLUME,
            Trigger::new(HttpMethod::Post, "volume"),
            S_NOT_FULL,
        )
        .guard(
            parse(&format!(
                "{auth_write} and project.volumes->size() + 1 < quota_sets.volume"
            ))
            .expect("guard parses"),
        )
        .effect(post_effect.clone())
        .security_requirement("1.3")
        .build(),
    );
    m.transition(
        TransitionBuilder::new(
            "t_post_2",
            S_NO_VOLUME,
            Trigger::new(HttpMethod::Post, "volume"),
            S_FULL,
        )
        .guard(
            parse(&format!(
                "{auth_write} and project.volumes->size() + 1 = quota_sets.volume"
            ))
            .expect("guard parses"),
        )
        .effect(post_effect.clone())
        .security_requirement("1.3")
        .build(),
    );
    m.transition(
        TransitionBuilder::new(
            "t_post_3",
            S_NOT_FULL,
            Trigger::new(HttpMethod::Post, "volume"),
            S_NOT_FULL,
        )
        .guard(
            parse(&format!(
                "{auth_write} and project.volumes->size() + 1 < quota_sets.volume"
            ))
            .expect("guard parses"),
        )
        .effect(post_effect.clone())
        .security_requirement("1.3")
        .build(),
    );
    m.transition(
        TransitionBuilder::new(
            "t_post_4",
            S_NOT_FULL,
            Trigger::new(HttpMethod::Post, "volume"),
            S_FULL,
        )
        .guard(
            parse(&format!(
                "{auth_write} and project.volumes->size() + 1 = quota_sets.volume"
            ))
            .expect("guard parses"),
        )
        .effect(post_effect)
        .security_requirement("1.3")
        .build(),
    );

    // DELETE(volume): the paper's example — three transitions.
    // One from the not-full state back to no-volume (last volume removed):
    m.transition(
        TransitionBuilder::new(
            "t_del_1",
            S_NOT_FULL,
            Trigger::new(HttpMethod::Delete, "volume"),
            S_NO_VOLUME,
        )
        .guard(
            parse(&format!(
                "volume.id->size() = 1 and volume.status <> 'in-use' and {auth_delete} \
                 and project.volumes->size() = 1"
            ))
            .expect("guard parses"),
        )
        .effect(delete_effect.clone())
        .security_requirement("1.4")
        .build(),
    );
    // One self-loop on the not-full state (more than one volume):
    m.transition(
        TransitionBuilder::new(
            "t_del_2",
            S_NOT_FULL,
            Trigger::new(HttpMethod::Delete, "volume"),
            S_NOT_FULL,
        )
        .guard(
            parse(&format!(
                "volume.id->size() = 1 and volume.status <> 'in-use' and {auth_delete} \
                 and project.volumes->size() > 1"
            ))
            .expect("guard parses"),
        )
        .effect(delete_effect.clone())
        .security_requirement("1.4")
        .build(),
    );
    // One from the full state down to not-full:
    m.transition(
        TransitionBuilder::new(
            "t_del_3",
            S_FULL,
            Trigger::new(HttpMethod::Delete, "volume"),
            S_NOT_FULL,
        )
        .guard(
            parse(&format!(
                "volume.id->size() = 1 and volume.status <> 'in-use' and {auth_delete}"
            ))
            .expect("guard parses"),
        )
        .effect(delete_effect)
        .security_requirement("1.4")
        .build(),
    );

    // GET(volume): read scenarios — self-loops on the volume-bearing states.
    for (id, state) in [("t_get_1", S_NOT_FULL), ("t_get_2", S_FULL)] {
        m.transition(
            TransitionBuilder::new(id, state, Trigger::new(HttpMethod::Get, "volume"), state)
                .guard(
                    parse(&format!("volume.id->size() = 1 and {auth_read}")).expect("guard parses"),
                )
                .effect(read_effect.clone())
                .security_requirement("1.1")
                .build(),
        );
    }

    // PUT(volume): update scenarios — self-loops on the volume-bearing states.
    for (id, state) in [("t_put_1", S_NOT_FULL), ("t_put_2", S_FULL)] {
        m.transition(
            TransitionBuilder::new(id, state, Trigger::new(HttpMethod::Put, "volume"), state)
                .guard(
                    parse(&format!("volume.id->size() = 1 and {auth_write}"))
                        .expect("guard parses"),
                )
                .effect(read_effect.clone())
                .security_requirement("1.2")
                .build(),
        );
    }

    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::{validate_behavioral_model, validate_resource_model};

    #[test]
    fn resource_model_is_well_formed() {
        let r = validate_resource_model(&resource_model());
        assert!(r.is_valid(), "{r}");
    }

    #[test]
    fn behavioral_model_is_well_formed() {
        let m = behavioral_model();
        let r = validate_behavioral_model(&m, Some(&resource_model()));
        assert!(r.is_valid(), "{r}");
    }

    #[test]
    fn has_figure3_definitions() {
        let m = resource_model();
        for name in [
            "Projects",
            "project",
            "Volumes",
            "volume",
            "quota_sets",
            "usergroup",
        ] {
            assert!(m.definition(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn delete_triggers_exactly_three_transitions() {
        // Matches the paper: "DELETE on volume invokes three transitions".
        let m = behavioral_model();
        let n = m
            .transitions_for(&Trigger::new(HttpMethod::Delete, "volume"))
            .count();
        assert_eq!(n, 3);
    }

    #[test]
    fn three_states_as_in_figure3() {
        let m = behavioral_model();
        assert_eq!(m.states.len(), 3);
        assert_eq!(m.initial, S_NO_VOLUME);
    }

    #[test]
    fn all_four_methods_modelled() {
        let m = behavioral_model();
        let methods: Vec<HttpMethod> = m.triggers().iter().map(|t| t.method).collect();
        for wanted in HttpMethod::ALL {
            assert!(methods.contains(&wanted), "missing {wanted}");
        }
    }

    #[test]
    fn security_requirements_match_table1() {
        let m = behavioral_model();
        let mut ids = m.security_requirement_ids();
        ids.sort();
        assert_eq!(ids, vec!["1.1", "1.2", "1.3", "1.4"]);
    }

    #[test]
    fn every_transition_with_guard_has_no_pre_reference_in_guard() {
        let m = behavioral_model();
        for t in &m.transitions {
            if let Some(g) = &t.guard {
                assert!(!g.references_pre_state(), "guard of {} uses pre()", t.id);
            }
        }
    }

    #[test]
    fn effects_reference_pre_state() {
        let m = behavioral_model();
        for t in &m.transitions {
            let e = t
                .effect
                .as_ref()
                .expect("all cinder transitions have effects");
            assert!(e.references_pre_state(), "effect of {} lacks pre()", t.id);
        }
    }
}

/// State name: the addressed volume exists and has no snapshots.
pub const S_VOL_NO_SNAPSHOT: &str = "volume_without_snapshot";
/// State name: the addressed volume has at least one snapshot.
pub const S_VOL_SNAPSHOT: &str = "volume_with_snapshot";

/// The Figure 3 resource model extended with Cinder's second central
/// resource: snapshots, contained in a `Snapshots` collection under each
/// volume (`/v3/{project_id}/volumes/{volume_id}/snapshots/{snapshot_id}`).
#[must_use]
pub fn extended_resource_model() -> ResourceModel {
    let mut m = resource_model();
    m.define(ResourceDef::collection("Snapshots"))
        .define(ResourceDef::normal(
            "snapshot",
            vec![
                Attribute::new("id", AttrType::Int),
                Attribute::new("name", AttrType::Str),
                Attribute::new("status", AttrType::Str),
            ],
        ));
    m.associate(Association::new(
        "snapshots",
        "volume",
        "Snapshots",
        Multiplicity::ONE,
    ))
    .associate(Association::new(
        "snapshot",
        "Snapshots",
        "snapshot",
        Multiplicity::ZERO_MANY,
    ));
    m
}

/// A second behavioural state machine for the snapshot lifecycle of a
/// volume (context `volume`), demonstrating multi-machine monitoring.
///
/// Security requirements extend Table I: `2.1` GET, `2.2` POST,
/// `2.3` DELETE on `snapshot` (GET for all roles, POST for admin/member,
/// DELETE for admin only).
///
/// # Panics
///
/// Never panics in practice: all embedded OCL strings are tested to parse.
#[must_use]
pub fn snapshot_behavioral_model() -> BehavioralModel {
    let inv_no_snap =
        parse("volume.id->size()=1 and volume.snapshots->size()=0").expect("invariant parses");
    let inv_snap =
        parse("volume.id->size()=1 and volume.snapshots->size()>=1").expect("invariant parses");

    let auth_write = "(user.groups = 'admin' or user.groups = 'member')";
    let auth_read = "(user.groups = 'admin' or user.groups = 'member' or user.groups = 'user')";
    let auth_delete = "user.groups = 'admin'";

    let post_effect = parse("volume.snapshots->size() = pre(volume.snapshots->size()) + 1")
        .expect("effect parses");
    let delete_effect =
        parse("volume.snapshots->size() < pre(volume.snapshots->size())").expect("effect parses");
    let read_effect =
        parse("volume.snapshots->size() = pre(volume.snapshots->size())").expect("effect parses");

    let mut m = BehavioralModel::new("CinderSnapshots", "volume", S_VOL_NO_SNAPSHOT);
    m.state(State::new(S_VOL_NO_SNAPSHOT, inv_no_snap))
        .state(State::new(S_VOL_SNAPSHOT, inv_snap));

    m.transition(
        TransitionBuilder::new(
            "t_snap_post_1",
            S_VOL_NO_SNAPSHOT,
            Trigger::new(HttpMethod::Post, "snapshot"),
            S_VOL_SNAPSHOT,
        )
        .guard(parse(auth_write).expect("guard parses"))
        .effect(post_effect.clone())
        .security_requirement("2.2")
        .build(),
    );
    m.transition(
        TransitionBuilder::new(
            "t_snap_post_2",
            S_VOL_SNAPSHOT,
            Trigger::new(HttpMethod::Post, "snapshot"),
            S_VOL_SNAPSHOT,
        )
        .guard(parse(auth_write).expect("guard parses"))
        .effect(post_effect)
        .security_requirement("2.2")
        .build(),
    );
    m.transition(
        TransitionBuilder::new(
            "t_snap_del_1",
            S_VOL_SNAPSHOT,
            Trigger::new(HttpMethod::Delete, "snapshot"),
            S_VOL_NO_SNAPSHOT,
        )
        .guard(
            parse(&format!(
                "snapshot.id->size() = 1 and {auth_delete} and \
                 volume.snapshots->size() = 1"
            ))
            .expect("guard parses"),
        )
        .effect(delete_effect.clone())
        .security_requirement("2.3")
        .build(),
    );
    m.transition(
        TransitionBuilder::new(
            "t_snap_del_2",
            S_VOL_SNAPSHOT,
            Trigger::new(HttpMethod::Delete, "snapshot"),
            S_VOL_SNAPSHOT,
        )
        .guard(
            parse(&format!(
                "snapshot.id->size() = 1 and {auth_delete} and \
                 volume.snapshots->size() > 1"
            ))
            .expect("guard parses"),
        )
        .effect(delete_effect)
        .security_requirement("2.3")
        .build(),
    );
    m.transition(
        TransitionBuilder::new(
            "t_snap_get_1",
            S_VOL_SNAPSHOT,
            Trigger::new(HttpMethod::Get, "snapshot"),
            S_VOL_SNAPSHOT,
        )
        .guard(parse(&format!("snapshot.id->size() = 1 and {auth_read}")).expect("guard parses"))
        .effect(read_effect)
        .security_requirement("2.1")
        .build(),
    );

    m
}

#[cfg(test)]
mod extended_tests {
    use super::*;
    use crate::validate::{validate_behavioral_model, validate_resource_model};

    #[test]
    fn extended_resource_model_is_well_formed() {
        let m = extended_resource_model();
        assert!(validate_resource_model(&m).is_valid());
        assert!(m.definition("Snapshots").is_some());
        assert_eq!(m.contained_of("Snapshots").unwrap().name, "snapshot");
    }

    #[test]
    fn snapshot_behavioral_model_is_well_formed() {
        let m = snapshot_behavioral_model();
        let r = validate_behavioral_model(&m, Some(&extended_resource_model()));
        assert!(r.is_valid(), "{r}");
        assert_eq!(m.states.len(), 2);
        assert_eq!(m.transitions.len(), 5);
        assert_eq!(m.context, "volume");
    }

    #[test]
    fn snapshot_requirements_are_2x() {
        let mut ids = snapshot_behavioral_model().security_requirement_ids();
        ids.sort();
        assert_eq!(ids, vec!["2.1", "2.2", "2.3"]);
    }
}

/// The volume behavioural model *refined for the extended deployment*:
/// identical to [`behavioral_model`] except that the DELETE guards also
/// require `volume.snapshots->size() = 0` — Cinder refuses to delete a
/// volume that still has snapshots, and a monitor built from the
/// unrefined model would (correctly, per its model!) flag that refusal as
/// a wrong denial. Extending the system means refining the models: this
/// is the model-driven methodology's answer to feature interaction.
#[must_use]
pub fn extended_behavioral_model() -> BehavioralModel {
    let mut m = behavioral_model();
    let no_snapshots = parse("volume.snapshots->size() = 0").expect("refinement conjunct parses");
    for t in &mut m.transitions {
        if t.trigger.method == HttpMethod::Delete {
            let guard = t
                .guard
                .take()
                .expect("cinder DELETE transitions have guards");
            t.guard = Some(guard.and(no_snapshots.clone()));
        }
    }
    m
}

#[cfg(test)]
mod refined_tests {
    use super::*;
    use crate::validate::validate_behavioral_model;

    #[test]
    fn refined_model_strengthens_only_delete_guards() {
        let base = behavioral_model();
        let refined = extended_behavioral_model();
        assert!(validate_behavioral_model(&refined, Some(&extended_resource_model())).is_valid());
        for (b, r) in base.transitions.iter().zip(&refined.transitions) {
            assert_eq!(b.id, r.id);
            if b.trigger.method == HttpMethod::Delete {
                let printed = cm_ocl::to_string(r.guard.as_ref().unwrap());
                assert!(
                    printed.contains("volume.snapshots->size() = 0"),
                    "{printed}"
                );
            } else {
                assert_eq!(b.guard, r.guard);
            }
        }
    }
}
