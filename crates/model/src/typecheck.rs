//! Static type checking of the behavioural model's OCL against the
//! resource model.
//!
//! The resource model (class diagram) *is* the type environment of the
//! behavioural model's invariants, guards and effects: attributes have
//! declared types, association ends have collection types, and the
//! context variables (`project`, `volume`, …) are instances of resource
//! definitions. [`type_env_for`] derives a [`cm_ocl::MapTypeEnv`] from a
//! resource model and [`typecheck_behavioral_model`] runs the gradual OCL
//! checker over every expression in a behavioural model, reporting hard
//! type errors and lenient-coercion warnings with their location.

use crate::behavior::BehavioralModel;
use crate::resource::{AttrType, Multiplicity, ResourceKind, ResourceModel, UpperBound};
use cm_ocl::{check, CollectionKind, MapTypeEnv, Type};
use std::fmt;

/// Derive the OCL type environment from a resource model.
///
/// * Every **normal** resource definition's name is declared as a root
///   variable of object type (`volume: volume`) — the behavioural models
///   address resources by their definition name.
/// * Attributes get their declared scalar types.
/// * Association ends become properties of the source class: a to-one end
///   has the target's object type; a to-many end (or an end through a
///   collection) has `Set(target)`.
/// * The implicit `user` principal is declared with `groups: String`,
///   `roles: Set(String)`, `id: Set(Integer)` and `name: String`,
///   matching the monitor's probe bindings.
#[must_use]
pub fn type_env_for(model: &ResourceModel) -> MapTypeEnv {
    let mut env = MapTypeEnv::new();

    for def in &model.definitions {
        if def.kind == ResourceKind::Normal {
            env.declare_variable(def.name.clone(), Type::Object(def.name.clone()));
        }
        for attr in &def.attributes {
            let ty = match attr.ty {
                AttrType::Str => Type::Str,
                AttrType::Int => Type::Int,
                AttrType::Real => Type::Real,
                AttrType::Bool => Type::Bool,
            };
            // The `id` attribute is observed as a set — `id->size() = 1`
            // means "GET returned 200" (paper Section IV-B).
            let ty = if attr.name == "id" {
                Type::Coll(CollectionKind::Set, Box::new(ty))
            } else {
                ty
            };
            env.declare_attribute(def.name.clone(), attr.name.clone(), ty);
        }
    }

    for assoc in &model.associations {
        let Some(target) = model.definition(&assoc.target) else {
            continue;
        };
        let end_type = match target.kind {
            // Navigating to a collection definition yields the set of its
            // contained resources (the collection itself carries no data).
            ResourceKind::Collection => {
                let contained = model
                    .contained_of(&target.name)
                    .map_or(Type::Unknown, |d| Type::Object(d.name.clone()));
                Type::Coll(CollectionKind::Set, Box::new(contained))
            }
            ResourceKind::Normal => {
                let is_many = assoc.multiplicity.upper == UpperBound::Many
                    || matches!(assoc.multiplicity.upper, UpperBound::Finite(n) if n > 1)
                    || assoc.multiplicity == Multiplicity::ZERO_MANY;
                if is_many {
                    Type::Coll(
                        CollectionKind::Set,
                        Box::new(Type::Object(target.name.clone())),
                    )
                } else {
                    Type::Object(target.name.clone())
                }
            }
        };
        env.declare_attribute(assoc.source.clone(), assoc.role.clone(), end_type);
    }

    // The requesting principal, as bound by the monitor's prober.
    env.declare_variable("user", Type::Object("user".to_string()));
    env.declare_attribute("user", "groups", Type::Str);
    env.declare_attribute(
        "user",
        "roles",
        Type::Coll(CollectionKind::Set, Box::new(Type::Str)),
    );
    env.declare_attribute(
        "user",
        "id",
        Type::Coll(CollectionKind::Set, Box::new(Type::Int)),
    );
    env.declare_attribute("user", "name", Type::Str);

    env
}

/// A located type-checking finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeFinding {
    /// Where the expression lives, e.g.
    /// `invariant of state project_with_no_volume` or
    /// `guard of transition t_del_1`.
    pub location: String,
    /// The OCL checker's message.
    pub message: String,
    /// Hard error (`true`) or lenient-coercion warning (`false`).
    pub is_error: bool,
}

impl fmt::Display for TypeFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = if self.is_error {
            "type error"
        } else {
            "type warning"
        };
        write!(f, "{kind} in {}: {}", self.location, self.message)
    }
}

/// Type-check every OCL expression of a behavioural model against the
/// type environment derived from `resources`. Expressions must type as
/// Boolean; non-Boolean invariants/guards/effects are reported as errors.
#[must_use]
pub fn typecheck_behavioral_model(
    behavior: &BehavioralModel,
    resources: &ResourceModel,
) -> Vec<TypeFinding> {
    let env = type_env_for(resources);
    let mut findings = Vec::new();

    let mut check_expr = |location: String, expr: &cm_ocl::Expr| {
        let report = check(expr, &env);
        if !report.ty.compatible(&Type::Bool) {
            findings.push(TypeFinding {
                location: location.clone(),
                message: format!("expression has type {}, expected Boolean", report.ty),
                is_error: true,
            });
        }
        for issue in report.issues {
            findings.push(TypeFinding {
                location: location.clone(),
                message: issue.message,
                is_error: issue.is_error,
            });
        }
    };

    for state in &behavior.states {
        check_expr(
            format!("invariant of state {}", state.name),
            &state.invariant,
        );
    }
    for t in &behavior.transitions {
        if let Some(guard) = &t.guard {
            check_expr(format!("guard of transition {}", t.id), guard);
        }
        if let Some(effect) = &t.effect {
            check_expr(format!("effect of transition {}", t.id), effect);
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::{State, TransitionBuilder, Trigger};
    use crate::cinder;
    use crate::http::HttpMethod;

    #[test]
    fn cinder_models_typecheck_without_errors() {
        let resources = cinder::resource_model();
        let findings = typecheck_behavioral_model(&cinder::behavioral_model(), &resources);
        let errors: Vec<&TypeFinding> = findings.iter().filter(|f| f.is_error).collect();
        assert!(errors.is_empty(), "{errors:?}");
    }

    #[test]
    fn extended_models_typecheck_without_errors() {
        let resources = cinder::extended_resource_model();
        for model in [
            cinder::extended_behavioral_model(),
            cinder::snapshot_behavioral_model(),
        ] {
            let findings = typecheck_behavioral_model(&model, &resources);
            let errors: Vec<&TypeFinding> = findings.iter().filter(|f| f.is_error).collect();
            assert!(errors.is_empty(), "{}: {errors:?}", model.name);
        }
    }

    #[test]
    fn env_types_association_ends() {
        use cm_ocl::TypeEnv;
        let env = type_env_for(&cinder::resource_model());
        // project.volumes navigates through the Volumes collection to a
        // set of volume objects.
        let t = env.attribute_type("project", "volumes").unwrap();
        assert_eq!(
            t,
            Type::Coll(CollectionKind::Set, Box::new(Type::Object("volume".into())))
        );
        // quota_sets is a to-one end.
        assert_eq!(
            env.attribute_type("project", "quota_sets").unwrap(),
            Type::Object("quota_sets".into())
        );
        // id attributes are observed as sets.
        assert_eq!(
            env.attribute_type("volume", "id").unwrap(),
            Type::Coll(CollectionKind::Set, Box::new(Type::Int))
        );
        assert_eq!(env.attribute_type("volume", "status").unwrap(), Type::Str);
        assert_eq!(
            env.variable_type("volume").unwrap(),
            Type::Object("volume".into())
        );
        // Collections are not addressable roots.
        assert!(env.variable_type("Volumes").is_none());
    }

    #[test]
    fn type_errors_are_located() {
        let resources = cinder::resource_model();
        let mut m = BehavioralModel::new("bad", "project", "s");
        m.state(State::new(
            "s",
            cm_ocl::parse("volume.status + 1 = 2").unwrap(), // String + Int
        ));
        m.transition(
            TransitionBuilder::new("t1", "s", Trigger::new(HttpMethod::Get, "volume"), "s")
                .guard(cm_ocl::parse("volume.size").unwrap()) // Int, not Boolean
                .build(),
        );
        let findings = typecheck_behavioral_model(&m, &resources);
        assert!(findings
            .iter()
            .any(|f| f.is_error && f.location.contains("invariant of state s")));
        assert!(findings.iter().any(|f| f.is_error
            && f.location.contains("guard of transition t1")
            && f.message.contains("expected Boolean")));
    }

    #[test]
    fn lenient_coercions_reported_as_warnings() {
        let resources = cinder::resource_model();
        let mut m = BehavioralModel::new("lenient", "project", "s");
        m.state(State::new(
            "s",
            // The paper's own idiom: collection compared with a number.
            cm_ocl::parse("project.volumes < quota_sets.volume").unwrap(),
        ));
        let findings = typecheck_behavioral_model(&m, &resources);
        assert!(findings
            .iter()
            .any(|f| !f.is_error && f.message.contains("paper-compat")));
        assert!(findings.iter().all(|f| !f.is_error));
    }
}
