//! The resource model: a UML class-diagram subset for REST resources.
//!
//! Following the paper's Section IV-A, a *resource definition* is a class
//! whose instances are resources. A **collection** resource definition has
//! no attributes and merely contains other resources (e.g. `Volumes`); a
//! **normal** resource definition has one or more typed public attributes
//! (e.g. `volume` with `status`, `size`). Associations carry a *role name*
//! (used to compose URIs) and minimum/maximum cardinalities.

use std::fmt;

/// Whether a resource definition is a collection or a normal resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceKind {
    /// A container of other resources; has no attributes of its own.
    Collection,
    /// A resource with its own attributes representing a piece of
    /// information.
    Normal,
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceKind::Collection => write!(f, "collection"),
            ResourceKind::Normal => write!(f, "normal"),
        }
    }
}

/// Attribute types available to resource representations. The paper requires
/// each attribute to be public and typed, because the representation is a
/// serialised document (JSON/XML).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrType {
    /// Text.
    Str,
    /// Integer.
    Int,
    /// Real number.
    Real,
    /// Boolean.
    Bool,
}

impl AttrType {
    /// OCL-facing type name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AttrType::Str => "String",
            AttrType::Int => "Integer",
            AttrType::Real => "Real",
            AttrType::Bool => "Boolean",
        }
    }
}

impl fmt::Display for AttrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A typed public attribute of a normal resource definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name, e.g. `status`.
    pub name: String,
    /// Attribute type.
    pub ty: AttrType,
}

impl Attribute {
    /// Create an attribute.
    #[must_use]
    pub fn new(name: impl Into<String>, ty: AttrType) -> Self {
        Attribute {
            name: name.into(),
            ty,
        }
    }
}

/// A resource definition (a class of the resource model).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceDef {
    /// Class name, e.g. `Volumes` or `volume`.
    pub name: String,
    /// Collection or normal.
    pub kind: ResourceKind,
    /// Attributes (empty iff `kind == Collection`).
    pub attributes: Vec<Attribute>,
}

impl ResourceDef {
    /// A collection resource definition (no attributes).
    #[must_use]
    pub fn collection(name: impl Into<String>) -> Self {
        ResourceDef {
            name: name.into(),
            kind: ResourceKind::Collection,
            attributes: Vec::new(),
        }
    }

    /// A normal resource definition with attributes.
    #[must_use]
    pub fn normal(name: impl Into<String>, attributes: Vec<Attribute>) -> Self {
        ResourceDef {
            name: name.into(),
            kind: ResourceKind::Normal,
            attributes,
        }
    }

    /// Look up an attribute by name.
    #[must_use]
    pub fn attribute(&self, name: &str) -> Option<&Attribute> {
        self.attributes.iter().find(|a| a.name == name)
    }
}

/// Upper bound of a multiplicity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UpperBound {
    /// A finite maximum.
    Finite(u32),
    /// `*` — unbounded.
    Many,
}

impl fmt::Display for UpperBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpperBound::Finite(n) => write!(f, "{n}"),
            UpperBound::Many => write!(f, "*"),
        }
    }
}

/// Association multiplicity `lower..upper`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Multiplicity {
    /// Minimum cardinality.
    pub lower: u32,
    /// Maximum cardinality.
    pub upper: UpperBound,
}

impl Multiplicity {
    /// `0..*` — the mandatory multiplicity from a collection to its
    /// contained resource definition.
    pub const ZERO_MANY: Multiplicity = Multiplicity {
        lower: 0,
        upper: UpperBound::Many,
    };
    /// `1..1`.
    pub const ONE: Multiplicity = Multiplicity {
        lower: 1,
        upper: UpperBound::Finite(1),
    };
    /// `0..1`.
    pub const ZERO_ONE: Multiplicity = Multiplicity {
        lower: 0,
        upper: UpperBound::Finite(1),
    };

    /// Create a multiplicity; `upper = None` means `*`.
    #[must_use]
    pub fn new(lower: u32, upper: Option<u32>) -> Self {
        Multiplicity {
            lower,
            upper: match upper {
                Some(n) => UpperBound::Finite(n),
                None => UpperBound::Many,
            },
        }
    }

    /// True when `count` resources satisfy the multiplicity.
    #[must_use]
    pub fn admits(&self, count: u32) -> bool {
        count >= self.lower
            && match self.upper {
                UpperBound::Finite(n) => count <= n,
                UpperBound::Many => true,
            }
    }
}

impl fmt::Display for Multiplicity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.lower, self.upper)
    }
}

/// A directed association between two resource definitions.
///
/// The role name doubles as the URI segment; e.g. the association
/// `project --volumes--> Volumes` yields paths `.../project_id/volumes`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Association {
    /// Role name (URI segment). Must be non-empty and URI-safe.
    pub role: String,
    /// Source resource definition name.
    pub source: String,
    /// Target resource definition name.
    pub target: String,
    /// Cardinality of the target end.
    pub multiplicity: Multiplicity,
}

impl Association {
    /// Create an association.
    #[must_use]
    pub fn new(
        role: impl Into<String>,
        source: impl Into<String>,
        target: impl Into<String>,
        multiplicity: Multiplicity,
    ) -> Self {
        Association {
            role: role.into(),
            source: source.into(),
            target: target.into(),
            multiplicity,
        }
    }
}

/// A complete resource model (the left side of the paper's Figure 3).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ResourceModel {
    /// Model name, e.g. `Cinder`.
    pub name: String,
    /// Resource definitions (classes).
    pub definitions: Vec<ResourceDef>,
    /// Associations between definitions.
    pub associations: Vec<Association>,
}

impl ResourceModel {
    /// Create an empty model.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        ResourceModel {
            name: name.into(),
            definitions: Vec::new(),
            associations: Vec::new(),
        }
    }

    /// Add a resource definition (builder style).
    pub fn define(&mut self, def: ResourceDef) -> &mut Self {
        self.definitions.push(def);
        self
    }

    /// Add an association (builder style).
    pub fn associate(&mut self, assoc: Association) -> &mut Self {
        self.associations.push(assoc);
        self
    }

    /// Look up a resource definition by name.
    #[must_use]
    pub fn definition(&self, name: &str) -> Option<&ResourceDef> {
        self.definitions.iter().find(|d| d.name == name)
    }

    /// Outgoing associations of a definition.
    pub fn outgoing<'a>(&'a self, source: &'a str) -> impl Iterator<Item = &'a Association> + 'a {
        self.associations.iter().filter(move |a| a.source == source)
    }

    /// Incoming associations of a definition.
    pub fn incoming<'a>(&'a self, target: &'a str) -> impl Iterator<Item = &'a Association> + 'a {
        self.associations.iter().filter(move |a| a.target == target)
    }

    /// Root definitions: those with no incoming association. URI composition
    /// starts from these.
    pub fn roots(&self) -> impl Iterator<Item = &ResourceDef> {
        self.definitions
            .iter()
            .filter(|d| !self.associations.iter().any(|a| a.target == d.name))
    }

    /// The *contained* definition of a collection (target of its mandatory
    /// `0..*` association), if the model declares one.
    #[must_use]
    pub fn contained_of(&self, collection: &str) -> Option<&ResourceDef> {
        let assoc = self
            .outgoing(collection)
            .find(|a| a.multiplicity == Multiplicity::ZERO_MANY)?;
        self.definition(&assoc.target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_model() -> ResourceModel {
        let mut m = ResourceModel::new("tiny");
        m.define(ResourceDef::collection("Volumes"))
            .define(ResourceDef::normal(
                "volume",
                vec![
                    Attribute::new("status", AttrType::Str),
                    Attribute::new("size", AttrType::Int),
                ],
            ))
            .associate(Association::new(
                "volume",
                "Volumes",
                "volume",
                Multiplicity::ZERO_MANY,
            ));
        m
    }

    #[test]
    fn collection_has_no_attributes() {
        let m = tiny_model();
        assert!(m.definition("Volumes").unwrap().attributes.is_empty());
        assert_eq!(
            m.definition("Volumes").unwrap().kind,
            ResourceKind::Collection
        );
    }

    #[test]
    fn normal_resource_attributes_lookup() {
        let m = tiny_model();
        let vol = m.definition("volume").unwrap();
        assert_eq!(vol.attribute("status").unwrap().ty, AttrType::Str);
        assert!(vol.attribute("ghost").is_none());
    }

    #[test]
    fn roots_have_no_incoming() {
        let m = tiny_model();
        let roots: Vec<&str> = m.roots().map(|d| d.name.as_str()).collect();
        assert_eq!(roots, vec!["Volumes"]);
    }

    #[test]
    fn contained_of_collection() {
        let m = tiny_model();
        assert_eq!(m.contained_of("Volumes").unwrap().name, "volume");
        assert!(m.contained_of("volume").is_none());
    }

    #[test]
    fn multiplicity_admits() {
        assert!(Multiplicity::ZERO_MANY.admits(0));
        assert!(Multiplicity::ZERO_MANY.admits(99));
        assert!(Multiplicity::ONE.admits(1));
        assert!(!Multiplicity::ONE.admits(0));
        assert!(!Multiplicity::ONE.admits(2));
        assert!(Multiplicity::new(2, Some(4)).admits(3));
        assert!(!Multiplicity::new(2, Some(4)).admits(5));
    }

    #[test]
    fn multiplicity_display() {
        assert_eq!(Multiplicity::ZERO_MANY.to_string(), "0..*");
        assert_eq!(Multiplicity::ONE.to_string(), "1..1");
    }

    #[test]
    fn outgoing_and_incoming() {
        let m = tiny_model();
        assert_eq!(m.outgoing("Volumes").count(), 1);
        assert_eq!(m.incoming("volume").count(), 1);
        assert_eq!(m.incoming("Volumes").count(), 0);
    }
}
