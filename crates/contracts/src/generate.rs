//! The contract generator (the paper's Section V).
//!
//! For every distinct trigger of the behavioural model, the generator
//! collects the transitions that trigger fires and combines them:
//!
//! ```text
//! pre  (m) = ⋁_t  invariant(source(t)) ∧ guard(t)
//! post (m) = ⋀_t  pre(pre_t)  ⇒  invariant(target(t)) ∧ effect(t)
//! ```
//!
//! wrapping each antecedent in the old-state function `pre(...)` so the
//! post-condition reads the snapshot taken before the method executed —
//! the paper's stored `pre_*` variables. Optionally, the authorization
//! guards synthesised from the Table I requirements table are woven into
//! each clause (Section VI, `views.py` population step 3).

use crate::contract::{ContractClause, ContractSet, MethodContract};
use cm_model::{BehavioralModel, Transition};
use cm_ocl::Expr;
use cm_rbac::SecurityRequirementsTable;
use std::fmt;

/// Generation options.
#[derive(Debug, Clone, Default)]
pub struct GenerateOptions<'a> {
    /// When set, weave the table's authorization guard for each
    /// (resource, method) into the clause pre-conditions and attach the
    /// table's requirement ids.
    pub security: Option<&'a SecurityRequirementsTable>,
    /// Run the conservative boolean simplifier over every generated
    /// expression (`true and g` from invariant-free states, constant
    /// comparisons from synthetic models). Semantics-preserving.
    pub simplify: bool,
}

/// An error raised during generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenerateError {
    /// Description with the offending element names.
    pub message: String,
}

impl fmt::Display for GenerateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "contract generation error: {}", self.message)
    }
}

impl std::error::Error for GenerateError {}

/// Generate the contract set for a behavioural model.
///
/// # Errors
///
/// Returns [`GenerateError`] when a transition references an undeclared
/// state (run the model validator first for richer diagnostics).
pub fn generate(model: &BehavioralModel) -> Result<ContractSet, GenerateError> {
    generate_with(model, &GenerateOptions::default())
}

/// Generate with explicit [`GenerateOptions`].
///
/// # Errors
///
/// As [`generate`].
pub fn generate_with(
    model: &BehavioralModel,
    options: &GenerateOptions<'_>,
) -> Result<ContractSet, GenerateError> {
    let mut contracts = Vec::new();
    for trigger in model.triggers() {
        let transitions: Vec<&Transition> = model.transitions_for(&trigger).collect();
        let mut clauses = Vec::with_capacity(transitions.len());
        for t in &transitions {
            let source_inv = model
                .state_named(&t.source)
                .ok_or_else(|| GenerateError {
                    message: format!("transition `{}` leaves unknown state `{}`", t.id, t.source),
                })?
                .invariant
                .clone();
            let target_inv = model
                .state_named(&t.target)
                .ok_or_else(|| GenerateError {
                    message: format!("transition `{}` enters unknown state `{}`", t.id, t.target),
                })?
                .invariant
                .clone();

            // pre_t = inv(source) ∧ guard [∧ table-guard]
            let mut pre = match &t.guard {
                Some(guard) => source_inv.and(guard.clone()),
                None => source_inv,
            };
            let mut requirements = t.security_requirements.clone();
            if let Some(table) = options.security {
                if let Some(auth) = table.guard(&trigger.resource, trigger.method) {
                    pre = pre.and(auth);
                }
                if let Some(req) = table.requirement_for(&trigger.resource, trigger.method) {
                    if !requirements.contains(&req.id) {
                        requirements.push(req.id.clone());
                    }
                }
            }

            // post_t = inv(target) ∧ effect
            let post = match &t.effect {
                Some(effect) => target_inv.and(effect.clone()),
                None => target_inv,
            };

            clauses.push(ContractClause {
                transition_id: t.id.clone(),
                source: t.source.clone(),
                target: t.target.clone(),
                pre,
                post,
                security_requirements: requirements,
            });
        }

        let mut pre = Expr::any_of(clauses.iter().map(|c| c.pre.clone()));
        let mut post = Expr::all_of(clauses.iter().map(|c| {
            // The antecedent reads the pre-state snapshot.
            Expr::Pre(Box::new(c.pre.clone())).implies(c.post.clone())
        }));
        if options.simplify {
            pre = cm_ocl::simplify(&pre);
            post = cm_ocl::simplify(&post);
            for c in &mut clauses {
                c.pre = cm_ocl::simplify(&c.pre);
                c.post = cm_ocl::simplify(&c.post);
            }
        }
        let mut security_requirements: Vec<String> = Vec::new();
        for c in &clauses {
            for r in &c.security_requirements {
                if !security_requirements.contains(r) {
                    security_requirements.push(r.clone());
                }
            }
        }
        contracts.push(MethodContract {
            trigger,
            pre,
            post,
            clauses,
            security_requirements,
        });
    }
    let states = model
        .states
        .iter()
        .map(|s| {
            let invariant = if options.simplify {
                cm_ocl::simplify(&s.invariant)
            } else {
                s.invariant.clone()
            };
            (s.name.clone(), invariant)
        })
        .collect();
    Ok(ContractSet { contracts, states })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_model::{cinder, HttpMethod, Trigger};
    use cm_ocl::{BinOp, Expr};
    use cm_rbac::cinder_table1;

    fn cinder_contracts() -> ContractSet {
        generate(&cinder::behavioral_model()).unwrap()
    }

    #[test]
    fn one_contract_per_distinct_trigger() {
        let set = cinder_contracts();
        // POST, DELETE, GET, PUT on volume.
        assert_eq!(set.contracts.len(), 4);
    }

    #[test]
    fn delete_contract_has_three_clauses_as_in_listing1() {
        let set = cinder_contracts();
        let delete = set
            .contract_for(&Trigger::new(HttpMethod::Delete, "volume"))
            .unwrap();
        assert_eq!(delete.clauses.len(), 3);
        // The combined pre is a two-level `or`.
        fn count_or(e: &Expr) -> usize {
            match e {
                Expr::Binary {
                    op: BinOp::Or,
                    lhs,
                    rhs,
                } => 1 + count_or(lhs) + count_or(rhs),
                _ => 0,
            }
        }
        assert_eq!(count_or(&delete.pre), 2, "3 disjuncts need 2 `or` nodes");
    }

    #[test]
    fn delete_post_is_conjunction_of_implications_with_pre() {
        let set = cinder_contracts();
        let delete = set
            .contract_for(&Trigger::new(HttpMethod::Delete, "volume"))
            .unwrap();
        fn implications(e: &Expr, out: &mut Vec<Expr>) {
            match e {
                Expr::Binary {
                    op: BinOp::And,
                    lhs,
                    rhs,
                } => {
                    implications(lhs, out);
                    implications(rhs, out);
                }
                other => out.push(other.clone()),
            }
        }
        let mut imps = Vec::new();
        implications(&delete.post, &mut imps);
        assert_eq!(imps.len(), 3);
        for imp in &imps {
            match imp {
                Expr::Binary {
                    op: BinOp::Implies,
                    lhs,
                    ..
                } => {
                    assert!(
                        matches!(**lhs, Expr::Pre(_)),
                        "antecedent must read the pre-state snapshot"
                    );
                }
                other => panic!("expected implication, got {other:?}"),
            }
        }
        assert!(delete.post.references_pre_state());
    }

    #[test]
    fn security_requirements_flow_from_annotations() {
        let set = cinder_contracts();
        let delete = set
            .contract_for(&Trigger::new(HttpMethod::Delete, "volume"))
            .unwrap();
        assert_eq!(delete.security_requirements, vec!["1.4"]);
        assert_eq!(set.covered_requirements().len(), 4);
    }

    #[test]
    fn weaving_table_guard_adds_auth_conjunct() {
        let model = {
            // A model whose guards do NOT carry authorization.
            use cm_model::{BehavioralModel, State, TransitionBuilder, Trigger};
            let mut m = BehavioralModel::new("b", "project", "s");
            m.state(State::new(
                "s",
                cm_ocl::parse("project.id->size() = 1").unwrap(),
            ));
            m.transition(
                TransitionBuilder::new("t1", "s", Trigger::new(HttpMethod::Delete, "volume"), "s")
                    .guard(cm_ocl::parse("volume.status <> 'in-use'").unwrap())
                    .build(),
            );
            m
        };
        let table = cinder_table1();
        let set = generate_with(
            &model,
            &GenerateOptions {
                security: Some(&table),
                simplify: false,
            },
        )
        .unwrap();
        let c = &set.contracts[0];
        let printed = cm_ocl::to_string(&c.pre);
        assert!(printed.contains("user.groups = 'admin'"), "{printed}");
        assert_eq!(c.security_requirements, vec!["1.4"]);
    }

    #[test]
    fn empty_model_yields_empty_set() {
        let m = cm_model::BehavioralModel::new("empty", "x", "s0");
        let set = generate(&m).unwrap();
        assert!(set.contracts.is_empty());
        assert_eq!(set.clause_count(), 0);
    }

    #[test]
    fn dangling_state_is_an_error() {
        use cm_model::{BehavioralModel, State, TransitionBuilder, Trigger};
        let mut m = BehavioralModel::new("b", "p", "s");
        m.state(State::new("s", Expr::Bool(true)));
        m.transition(
            TransitionBuilder::new("t", "s", Trigger::new(HttpMethod::Get, "volume"), "ghost")
                .build(),
        );
        let err = generate(&m).unwrap_err();
        assert!(err.message.contains("ghost"));
    }

    #[test]
    fn transition_without_guard_or_effect() {
        use cm_model::{BehavioralModel, State, TransitionBuilder, Trigger};
        let mut m = BehavioralModel::new("b", "p", "s");
        m.state(State::new("s", cm_ocl::parse("x = 1").unwrap()));
        m.transition(
            TransitionBuilder::new("t", "s", Trigger::new(HttpMethod::Get, "r"), "s").build(),
        );
        let set = generate(&m).unwrap();
        let c = &set.contracts[0];
        // pre is just the invariant; post is pre(inv) => inv.
        assert_eq!(cm_ocl::to_string(&c.pre), "x = 1");
        assert_eq!(cm_ocl::to_string(&c.post), "pre(x = 1) implies x = 1");
    }

    #[test]
    fn clause_count_totals() {
        let set = cinder_contracts();
        // 4 POST + 3 DELETE + 2 GET + 2 PUT = 11 transitions.
        assert_eq!(set.clause_count(), 11);
    }
}

#[cfg(test)]
mod simplify_tests {
    use super::*;
    use cm_model::{BehavioralModel, HttpMethod, State, TransitionBuilder, Trigger};
    use cm_ocl::Expr;

    #[test]
    fn simplify_option_cleans_invariant_free_states() {
        let mut m = BehavioralModel::new("b", "p", "s");
        m.state(State::new("s", Expr::Bool(true)));
        m.transition(
            TransitionBuilder::new("t", "s", Trigger::new(HttpMethod::Get, "r"), "s")
                .guard(cm_ocl::parse("user.groups = 'admin'").unwrap())
                .build(),
        );
        let plain = generate(&m).unwrap();
        let simplified = generate_with(
            &m,
            &GenerateOptions {
                security: None,
                simplify: true,
            },
        )
        .unwrap();
        assert_eq!(
            cm_ocl::to_string(&plain.contracts[0].pre),
            "true and user.groups = 'admin'"
        );
        assert_eq!(
            cm_ocl::to_string(&simplified.contracts[0].pre),
            "user.groups = 'admin'"
        );
        // Post: pre(true and g) implies (true) simplifies away entirely.
        assert_eq!(cm_ocl::to_string(&simplified.contracts[0].post), "true");
    }
}
