//! # cm-contracts — contract generation from behavioural models
//!
//! The paper's Section V algorithm: turn a UML/OCL behavioural model (plus
//! the Table I security-requirements table) into verifiable method
//! contracts.
//!
//! * [`generate()`]/[`generate_with`] — combine, per trigger, every
//!   transition it fires into one [`MethodContract`]:
//!   `pre = ⋁ (invariant(source) ∧ guard)`,
//!   `post = ⋀ (pre(pre_i) ⇒ invariant(target) ∧ effect)`;
//! * [`MethodContract::evaluate_pre`]/[`MethodContract::evaluate_post`] —
//!   run-time checking against pluggable state navigators with pre-state
//!   snapshots;
//! * [`TraceabilityMatrix`] — requirement → trigger/transition coverage;
//! * [`render_listing`] — the paper's Listing 1 layout.
//!
//! ## Example
//!
//! ```
//! use cm_contracts::generate;
//! use cm_model::{cinder, HttpMethod, Trigger};
//!
//! let set = generate(&cinder::behavioral_model())?;
//! let delete = set
//!     .contract_for(&Trigger::new(HttpMethod::Delete, "volume"))
//!     .expect("modelled");
//! // Listing 1: DELETE(volume) combines three transitions.
//! assert_eq!(delete.clauses.len(), 3);
//! # Ok::<(), cm_contracts::GenerateError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod compiled;
pub mod contract;
pub mod generate;
pub mod trace;

pub use compiled::{CompiledContract, CompiledContractSet};
pub use contract::{ContractClause, ContractSet, MethodContract};
pub use generate::{generate, generate_with, GenerateError, GenerateOptions};
pub use trace::{render_listing, TraceRow, TraceabilityMatrix};
