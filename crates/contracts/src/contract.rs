//! Method contracts: the artifacts the generator produces and the monitor
//! checks at run time.
//!
//! A [`MethodContract`] combines every transition a trigger can fire
//! (Section V of the paper): the pre-condition is the disjunction of
//! `invariant(source) and guard` over those transitions; the
//! post-condition is the conjunction of implications
//! `pre_i implies (invariant(target) and effect)`, where each antecedent
//! is evaluated against the *pre-state snapshot* (`pre(...)`) — exactly the
//! stored `pre_*` local variables of Listing 2.

use cm_model::Trigger;
use cm_ocl::{EvalContext, EvalError, Expr, Navigator};
use std::fmt;

/// The per-transition piece of a contract, kept for diagnostics and
/// traceability.
#[derive(Debug, Clone, PartialEq)]
pub struct ContractClause {
    /// Id of the originating transition.
    pub transition_id: String,
    /// Source state name.
    pub source: String,
    /// Target state name.
    pub target: String,
    /// `invariant(source) and guard` (current-state expression).
    pub pre: Expr,
    /// `invariant(target) and effect` (post-state expression, may use
    /// `pre(...)`).
    pub post: Expr,
    /// Security requirements this clause traces to.
    pub security_requirements: Vec<String>,
}

/// A generated contract for one trigger (method × resource).
#[derive(Debug, Clone, PartialEq)]
pub struct MethodContract {
    /// The trigger this contract governs.
    pub trigger: Trigger,
    /// Combined pre-condition: `⋁ clauses.pre`.
    pub pre: Expr,
    /// Combined post-condition:
    /// `⋀ (pre(clauses.pre) implies clauses.post)`.
    pub post: Expr,
    /// The per-transition clauses the combined forms were built from.
    pub clauses: Vec<ContractClause>,
    /// Union of the clauses' security requirements, in first-use order.
    pub security_requirements: Vec<String>,
}

impl MethodContract {
    /// Evaluate the pre-condition against the current state.
    ///
    /// # Errors
    ///
    /// Propagates [`EvalError`] (unknown variables, non-boolean outcome …);
    /// the monitor reports such errors as contract violations with
    /// diagnostics rather than panicking.
    pub fn evaluate_pre(&self, current: &dyn Navigator) -> Result<bool, EvalError> {
        EvalContext::new(current).eval_bool(&self.pre)
    }

    /// Evaluate the post-condition against the post state plus the
    /// pre-state snapshot taken before the call.
    ///
    /// # Errors
    ///
    /// As [`MethodContract::evaluate_pre`].
    pub fn evaluate_post(
        &self,
        current: &dyn Navigator,
        pre_state: &dyn Navigator,
    ) -> Result<bool, EvalError> {
        EvalContext::with_pre_state(current, pre_state).eval_bool(&self.post)
    }

    /// The clauses whose individual pre-condition holds in `state` — i.e.
    /// which transitions the method invocation would take. Used for
    /// diagnostics ("the DELETE was enabled by transition t_del_2") and
    /// requirement-coverage reporting.
    ///
    /// # Errors
    ///
    /// Propagates the first evaluation error.
    pub fn enabled_clauses(
        &self,
        state: &dyn Navigator,
    ) -> Result<Vec<&ContractClause>, EvalError> {
        let mut out = Vec::new();
        for clause in &self.clauses {
            if EvalContext::new(state).eval_bool(&clause.pre)? {
                out.push(clause);
            }
        }
        Ok(out)
    }

    /// Security requirements exercised when the method fires from `state`
    /// (the requirements of the enabled clauses).
    ///
    /// # Errors
    ///
    /// Propagates the first evaluation error.
    pub fn exercised_requirements(&self, state: &dyn Navigator) -> Result<Vec<String>, EvalError> {
        let mut out: Vec<String> = Vec::new();
        for clause in self.enabled_clauses(state)? {
            for r in &clause.security_requirements {
                if !out.contains(r) {
                    out.push(r.clone());
                }
            }
        }
        Ok(out)
    }
}

impl fmt::Display for MethodContract {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "contract for {} ({} clause{})",
            self.trigger,
            self.clauses.len(),
            if self.clauses.len() == 1 { "" } else { "s" }
        )
    }
}

/// All contracts generated from one behavioural model.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ContractSet {
    /// The contracts, one per distinct trigger, in model order.
    pub contracts: Vec<MethodContract>,
    /// The source model's states `(name, invariant)`, in model order —
    /// kept so the monitor can report *which* state the system is in
    /// (the paper's stateful-wrapper view over stateless REST).
    pub states: Vec<(String, Expr)>,
}

impl ContractSet {
    /// The contract governing `trigger`, if the model mentions it.
    #[must_use]
    pub fn contract_for(&self, trigger: &Trigger) -> Option<&MethodContract> {
        self.contracts.iter().find(|c| &c.trigger == trigger)
    }

    /// Total number of clauses across all contracts.
    #[must_use]
    pub fn clause_count(&self) -> usize {
        self.contracts.iter().map(|c| c.clauses.len()).sum()
    }

    /// Names of the states whose invariant holds in `state` — usually one
    /// (the machine's current state), possibly none mid-anomaly or several
    /// when invariants overlap.
    ///
    /// # Errors
    ///
    /// Propagates the first evaluation error.
    pub fn states_matching(&self, state: &dyn Navigator) -> Result<Vec<String>, EvalError> {
        let mut out = Vec::new();
        for (name, invariant) in &self.states {
            if EvalContext::new(state).eval_bool(invariant)? {
                out.push(name.clone());
            }
        }
        Ok(out)
    }

    /// All security-requirement ids covered by some contract.
    #[must_use]
    pub fn covered_requirements(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for c in &self.contracts {
            for r in &c.security_requirements {
                if !out.contains(r) {
                    out.push(r.clone());
                }
            }
        }
        out
    }
}

impl MethodContract {
    /// The context roots (free variables) this contract's pre- and
    /// post-conditions navigate — the paper's "values that constitute the
    /// guards and invariants". The monitor's prober uses this to snapshot
    /// only the needed resources.
    #[must_use]
    pub fn referenced_roots(&self) -> Vec<String> {
        let mut out = self.pre.free_variables();
        for v in self.post.free_variables() {
            if !out.contains(&v) {
                out.push(v);
            }
        }
        out
    }
}

#[cfg(test)]
mod roots_tests {
    use crate::generate::generate;
    use cm_model::{cinder, HttpMethod, Trigger};

    #[test]
    fn cinder_delete_references_all_four_roots() {
        let set = generate(&cinder::behavioral_model()).unwrap();
        let delete = set
            .contract_for(&Trigger::new(HttpMethod::Delete, "volume"))
            .unwrap();
        let mut roots = delete.referenced_roots();
        roots.sort();
        assert_eq!(roots, vec!["project", "quota_sets", "user", "volume"]);
    }

    #[test]
    fn minimal_model_references_fewer_roots() {
        use cm_model::{BehavioralModel, State, TransitionBuilder, Trigger};
        let mut m = BehavioralModel::new("b", "project", "s");
        m.state(State::new(
            "s",
            cm_ocl::parse("project.id->size() = 1").unwrap(),
        ));
        m.transition(
            TransitionBuilder::new("t", "s", Trigger::new(HttpMethod::Get, "project"), "s").build(),
        );
        let set = generate(&m).unwrap();
        assert_eq!(set.contracts[0].referenced_roots(), vec!["project"]);
    }
}

#[cfg(test)]
mod eval_tests {
    use super::*;
    use crate::generate::generate;
    use cm_model::{cinder, HttpMethod, Trigger};
    use cm_ocl::{MapNavigator, ObjRef, Value};

    fn delete_contract() -> MethodContract {
        generate(&cinder::behavioral_model())
            .unwrap()
            .contract_for(&Trigger::new(HttpMethod::Delete, "volume"))
            .unwrap()
            .clone()
    }

    /// Environment: project with `n` volumes (quota 10), the addressed
    /// volume available, requester role `role`.
    fn env(n: i64, role: &str, status: &str) -> MapNavigator {
        let project = ObjRef::new("project", 1);
        let quota = ObjRef::new("quota_sets", 1);
        let user = ObjRef::new("user", 1);
        let mut nav = MapNavigator::new();
        let volumes: Vec<Value> = (0..n)
            .map(|i| {
                let v = ObjRef::new("volume", i as u64 + 1);
                nav.set_attribute(v.clone(), "id", Value::set(vec![Value::Int(i + 1)]));
                nav.set_attribute(v.clone(), "status", status);
                Value::Obj(v)
            })
            .collect();
        nav.set_variable("project", project.clone());
        nav.set_variable("quota_sets", quota.clone());
        nav.set_variable("user", user.clone());
        nav.set_variable("volume", ObjRef::new("volume", 1));
        nav.set_attribute(project.clone(), "id", Value::set(vec![Value::Int(1)]));
        nav.set_attribute(project, "volumes", Value::set(volumes));
        nav.set_attribute(quota, "volume", 10i64);
        nav.set_attribute(user, "groups", role);
        nav
    }

    #[test]
    fn evaluate_pre_respects_role_and_status() {
        let c = delete_contract();
        assert!(c.evaluate_pre(&env(2, "admin", "available")).unwrap());
        assert!(!c.evaluate_pre(&env(2, "member", "available")).unwrap());
        assert!(!c.evaluate_pre(&env(2, "admin", "in-use")).unwrap());
        assert!(!c.evaluate_pre(&env(0, "admin", "available")).unwrap());
    }

    #[test]
    fn enabled_clauses_select_the_firing_transition() {
        let c = delete_contract();
        // Two volumes: the `size > 1` self-loop clause (t_del_2) fires.
        let enabled = c.enabled_clauses(&env(2, "admin", "available")).unwrap();
        assert_eq!(enabled.len(), 1);
        assert_eq!(enabled[0].transition_id, "t_del_2");
        // One volume: the last-volume clause (t_del_1).
        let enabled1 = c.enabled_clauses(&env(1, "admin", "available")).unwrap();
        assert_eq!(enabled1.len(), 1);
        assert_eq!(enabled1[0].transition_id, "t_del_1");
        // Unauthorized: nothing enabled.
        assert!(c
            .enabled_clauses(&env(2, "user", "available"))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn evaluate_post_accepts_decrease_and_rejects_stasis() {
        let c = delete_contract();
        let pre = env(2, "admin", "available");
        let decreased = env(1, "admin", "available");
        assert!(c.evaluate_post(&decreased, &pre).unwrap());
        // State unchanged after a supposedly successful delete: violated.
        let unchanged = env(2, "admin", "available");
        assert!(!c.evaluate_post(&unchanged, &pre).unwrap());
    }

    #[test]
    fn post_is_vacuous_when_pre_never_held() {
        let c = delete_contract();
        // Pre-state where no clause fired (unauthorized): every
        // implication's antecedent is false, so the post holds whatever
        // the current state looks like.
        let pre = env(2, "user", "available");
        let anything = env(2, "user", "available");
        assert!(c.evaluate_post(&anything, &pre).unwrap());
    }

    #[test]
    fn exercised_requirements_follow_enabled_clauses() {
        let c = delete_contract();
        assert_eq!(
            c.exercised_requirements(&env(2, "admin", "available"))
                .unwrap(),
            vec!["1.4"]
        );
        assert!(c
            .exercised_requirements(&env(2, "user", "available"))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn display_shows_clause_count() {
        let c = delete_contract();
        assert_eq!(c.to_string(), "contract for DELETE(volume) (3 clauses)");
    }
}
