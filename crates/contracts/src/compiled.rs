//! Compiled contracts: the interned, allocation-free evaluation pipeline.
//!
//! [`CompiledContractSet::compile`] lowers every generated
//! [`MethodContract`] through [`cm_ocl::ProgramBuilder`] into two
//! [`Program`]s per contract — one for the pre-condition side, one for the
//! post-condition side — sharing a single [`SymbolTable`] across the set.
//!
//! Hash-consing does the heavy lifting for the paper's contract shape:
//!
//! * the combined pre-condition `⋁ (invariant(source) ∧ guard)` and the
//!   per-clause pre-conditions are added to the *same* program, so each
//!   clause root is literally a shared subtree of the combined root — a
//!   source-state invariant shared by several transitions becomes one
//!   memoized node, evaluated at most once per request even when the
//!   monitor checks the combined verdict *and* per-clause enablement;
//! * the state invariants are added as extra roots of both programs, so
//!   state diagnostics (`states_matching`) reuse the same memo table and
//!   their attribute reads are included in the snapshot scopes.
//!
//! The per-program attribute analysis is resolved here into name-keyed
//! [`AttrScope`]s: `pre_scope` is everything the pre-phase snapshot must
//! contain (current-state reads of the pre side **plus** the post side's
//! `pre()` reads, since the same snapshot later serves as the post's
//! pre-state), and `post_scope` is the post side's current-state reads.
//! When the compile-time analysis is inexact (a `let` may alias objects),
//! the scope degrades to whole-root wildcards — never to silence.
//!
//! The tree-walking interpreter on [`MethodContract`] remains the
//! reference oracle; differential tests assert verdict and
//! requirement-attribution equality between the two pipelines.

use crate::contract::{ContractSet, MethodContract};
use cm_model::Trigger;
use cm_ocl::{
    AttrScope, EnvView, EvalError, EvalScratch, NodeId, Program, ProgramBuilder, SymbolTable,
};

/// One contract lowered to compiled form. Field layout mirrors
/// [`MethodContract`]: the combined pre/post roots plus per-clause and
/// per-state roots inside the same arenas.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledContract {
    /// The trigger this contract governs (same as the source contract).
    pub trigger: Trigger,
    pre: Program,
    pre_root: NodeId,
    clause_roots: Vec<NodeId>,
    pre_state_roots: Vec<NodeId>,
    post: Program,
    post_root: NodeId,
    post_state_roots: Vec<NodeId>,
    pre_scope: AttrScope,
    post_scope: AttrScope,
    pre_scope_lean: AttrScope,
    post_scope_lean: AttrScope,
}

impl CompiledContract {
    /// Prepare `scratch` for pre-phase evaluation (combined pre,
    /// per-clause enablement and pre-state diagnostics share one memo
    /// table as long as the environment is unchanged).
    pub fn begin_pre(&self, scratch: &mut EvalScratch) {
        scratch.begin(&self.pre);
    }

    /// Prepare `scratch` for post-phase evaluation.
    pub fn begin_post(&self, scratch: &mut EvalScratch) {
        scratch.begin(&self.post);
    }

    /// Compiled equivalent of [`MethodContract::evaluate_pre`].
    ///
    /// # Errors
    ///
    /// Exactly the interpreter's [`EvalError`] conditions.
    pub fn evaluate_pre(
        &self,
        syms: &SymbolTable,
        env: &EnvView<'_>,
        scratch: &mut EvalScratch,
    ) -> Result<bool, EvalError> {
        self.pre.eval_bool(self.pre_root, syms, env, None, scratch)
    }

    /// Compiled equivalent of [`MethodContract::enabled_clauses`],
    /// returning clause *indices* into the source contract's `clauses`.
    ///
    /// # Errors
    ///
    /// Propagates the first evaluation error, like the interpreter.
    pub fn enabled_clause_indices(
        &self,
        syms: &SymbolTable,
        env: &EnvView<'_>,
        scratch: &mut EvalScratch,
    ) -> Result<Vec<usize>, EvalError> {
        let mut out = Vec::new();
        for (i, &root) in self.clause_roots.iter().enumerate() {
            if self.pre.eval_bool(root, syms, env, None, scratch)? {
                out.push(i);
            }
        }
        Ok(out)
    }

    /// Compiled equivalent of [`MethodContract::evaluate_post`].
    ///
    /// # Errors
    ///
    /// Exactly the interpreter's [`EvalError`] conditions.
    pub fn evaluate_post(
        &self,
        syms: &SymbolTable,
        env: &EnvView<'_>,
        pre_env: &EnvView<'_>,
        scratch: &mut EvalScratch,
    ) -> Result<bool, EvalError> {
        self.post
            .eval_bool(self.post_root, syms, env, Some(pre_env), scratch)
    }

    /// Indices of the states whose invariant holds in the pre-phase
    /// environment (diagnostics; shares the pre-phase memo table).
    ///
    /// # Errors
    ///
    /// Propagates the first evaluation error.
    pub fn matching_state_indices_pre(
        &self,
        syms: &SymbolTable,
        env: &EnvView<'_>,
        scratch: &mut EvalScratch,
    ) -> Result<Vec<usize>, EvalError> {
        let mut out = Vec::new();
        for (i, &root) in self.pre_state_roots.iter().enumerate() {
            if self.pre.eval_bool(root, syms, env, None, scratch)? {
                out.push(i);
            }
        }
        Ok(out)
    }

    /// Indices of the states whose invariant holds in the post-phase
    /// environment (diagnostics; shares the post-phase memo table).
    ///
    /// # Errors
    ///
    /// Propagates the first evaluation error.
    pub fn matching_state_indices_post(
        &self,
        syms: &SymbolTable,
        env: &EnvView<'_>,
        pre_env: &EnvView<'_>,
        scratch: &mut EvalScratch,
    ) -> Result<Vec<usize>, EvalError> {
        let mut out = Vec::new();
        for (i, &root) in self.post_state_roots.iter().enumerate() {
            if self
                .post
                .eval_bool(root, syms, env, Some(pre_env), scratch)?
            {
                out.push(i);
            }
        }
        Ok(out)
    }

    /// Attributes the pre-phase snapshot must capture: current-state reads
    /// of the pre-condition and state invariants, plus the post side's
    /// `pre()` reads (the same snapshot serves as the post's pre-state).
    #[must_use]
    pub fn pre_scope(&self) -> &AttrScope {
        &self.pre_scope
    }

    /// Attributes the post-phase snapshot must capture.
    #[must_use]
    pub fn post_scope(&self) -> &AttrScope {
        &self.post_scope
    }

    /// Like [`CompiledContract::pre_scope`], but *without* the state
    /// invariants' reads: exactly what the pre-condition, clause
    /// enablement and the post side's `pre()` reads touch. Sufficient
    /// for verdicts; the state diagnostics
    /// ([`CompiledContract::matching_state_indices_post`]) may evaluate
    /// over attributes a lean snapshot never probed. A monitor that
    /// skips state reporting probes this scope instead — on the
    /// generated Cinder contracts that drops the `project` and
    /// `quota_sets` GETs from every read-path snapshot.
    #[must_use]
    pub fn pre_scope_lean(&self) -> &AttrScope {
        &self.pre_scope_lean
    }

    /// Lean counterpart of [`CompiledContract::post_scope`] (see
    /// [`CompiledContract::pre_scope_lean`]).
    #[must_use]
    pub fn post_scope_lean(&self) -> &AttrScope {
        &self.post_scope_lean
    }

    /// The compiled pre-side program (for stats/audit output).
    #[must_use]
    pub fn pre_program(&self) -> &Program {
        &self.pre
    }

    /// The compiled post-side program (for stats/audit output).
    #[must_use]
    pub fn post_program(&self) -> &Program {
        &self.post
    }
}

/// All contracts of a [`ContractSet`] in compiled form, sharing one
/// symbol table. `contracts[i]` corresponds to `set.contracts[i]`.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledContractSet {
    symbols: SymbolTable,
    contracts: Vec<CompiledContract>,
    state_names: Vec<String>,
}

impl CompiledContractSet {
    /// Lower every contract (and the state invariants) of `set`.
    #[must_use]
    pub fn compile(set: &ContractSet) -> Self {
        let mut symbols = SymbolTable::new();
        let contracts = set
            .contracts
            .iter()
            .map(|mc| compile_contract(mc, set, &mut symbols))
            .collect();
        CompiledContractSet {
            symbols,
            contracts,
            state_names: set.states.iter().map(|(n, _)| n.clone()).collect(),
        }
    }

    /// The shared symbol table.
    #[must_use]
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// The compiled contracts, parallel to the source set's `contracts`.
    #[must_use]
    pub fn contracts(&self) -> &[CompiledContract] {
        &self.contracts
    }

    /// Index of the contract governing `trigger`, if any.
    #[must_use]
    pub fn index_for(&self, trigger: &Trigger) -> Option<usize> {
        self.contracts.iter().position(|c| &c.trigger == trigger)
    }

    /// State names, parallel to the per-contract state-root indices.
    #[must_use]
    pub fn state_names(&self) -> &[String] {
        &self.state_names
    }
}

fn resolve_pairs<'a>(
    syms: &'a SymbolTable,
    refs: impl Iterator<Item = &'a (u32, u32, bool)>,
) -> Vec<(String, String)> {
    refs.map(|&(r, a, _)| (syms.name(r).to_string(), syms.name(a).to_string()))
        .collect()
}

/// The pre/post snapshot scopes implied by a compiled pre/post program
/// pair: the pre scope is the pre side's current-state reads plus the
/// post side's `pre()` reads (one snapshot serves both), the post scope
/// is the post side's current-state reads. Falls back to whole-root
/// wildcards when the analysis could not prove the read set exact.
fn derive_scopes(syms: &SymbolTable, pre: &Program, post: &Program) -> (AttrScope, AttrScope) {
    let pre_exact = pre.exact_scope() && post.exact_scope();
    let pre_scope = if pre_exact {
        let mut pairs = resolve_pairs(syms, pre.attr_refs().iter());
        pairs.extend(resolve_pairs(
            syms,
            post.attr_refs().iter().filter(|&&(_, _, p)| p),
        ));
        AttrScope::new(pairs, true)
    } else {
        AttrScope::wildcard(&resolve_roots(syms, &[pre, post]))
    };
    let post_scope = if post.exact_scope() {
        AttrScope::new(
            resolve_pairs(syms, post.attr_refs().iter().filter(|&&(_, _, p)| !p)),
            true,
        )
    } else {
        AttrScope::wildcard(&resolve_roots(syms, &[post]))
    };
    (pre_scope, post_scope)
}

fn resolve_roots(syms: &SymbolTable, programs: &[&Program]) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for p in programs {
        for &r in p.root_vars() {
            let name = syms.name(r).to_string();
            if !out.contains(&name) {
                out.push(name);
            }
        }
    }
    out
}

fn compile_contract(
    mc: &MethodContract,
    set: &ContractSet,
    symbols: &mut SymbolTable,
) -> CompiledContract {
    let mut b = ProgramBuilder::new(symbols);
    let pre_root = b.add(&mc.pre);
    let clause_roots: Vec<NodeId> = mc.clauses.iter().map(|c| b.add(&c.pre)).collect();
    let pre_state_roots: Vec<NodeId> = set.states.iter().map(|(_, inv)| b.add(inv)).collect();
    let pre = b.finish();

    let mut b = ProgramBuilder::new(symbols);
    let post_root = b.add(&mc.post);
    let post_state_roots: Vec<NodeId> = set.states.iter().map(|(_, inv)| b.add(inv)).collect();
    let post = b.finish();

    let (pre_scope, post_scope) = derive_scopes(symbols, &pre, &post);

    // Shadow programs over the same sources *minus* the state
    // invariants. They are never evaluated — compiled once at generate
    // time purely so their attribute-reference analysis yields the lean
    // scopes a diagnostics-free monitor can snapshot by.
    let mut b = ProgramBuilder::new(symbols);
    b.add(&mc.pre);
    for clause in &mc.clauses {
        b.add(&clause.pre);
    }
    let pre_lean = b.finish();
    let mut b = ProgramBuilder::new(symbols);
    b.add(&mc.post);
    let post_lean = b.finish();
    let (pre_scope_lean, post_scope_lean) = derive_scopes(symbols, &pre_lean, &post_lean);

    CompiledContract {
        trigger: mc.trigger.clone(),
        pre,
        pre_root,
        clause_roots,
        pre_state_roots,
        post,
        post_root,
        post_state_roots,
        pre_scope,
        post_scope,
        pre_scope_lean,
        post_scope_lean,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate;
    use cm_model::{cinder, HttpMethod};
    use cm_ocl::{MapNavigator, ObjRef, Value};

    fn compiled_cinder() -> (ContractSet, CompiledContractSet) {
        let set = generate(&cinder::behavioral_model()).unwrap();
        let compiled = CompiledContractSet::compile(&set);
        (set, compiled)
    }

    /// Environment: project with `n` volumes (quota 10), the addressed
    /// volume available, requester role `role` (mirrors contract.rs).
    fn env(n: i64, role: &str, status: &str) -> MapNavigator {
        let project = ObjRef::new("project", 1);
        let quota = ObjRef::new("quota_sets", 1);
        let user = ObjRef::new("user", 1);
        let mut nav = MapNavigator::new();
        let volumes: Vec<Value> = (0..n)
            .map(|i| {
                let v = ObjRef::new("volume", i as u64 + 1);
                nav.set_attribute(v.clone(), "id", Value::set(vec![Value::Int(i + 1)]));
                nav.set_attribute(v.clone(), "status", status);
                Value::Obj(v)
            })
            .collect();
        nav.set_variable("project", project.clone());
        nav.set_variable("quota_sets", quota.clone());
        nav.set_variable("user", user.clone());
        nav.set_variable("volume", ObjRef::new("volume", 1));
        nav.set_attribute(project.clone(), "id", Value::set(vec![Value::Int(1)]));
        nav.set_attribute(project, "volumes", Value::set(volumes));
        nav.set_attribute(quota, "volume", 10i64);
        nav.set_attribute(user, "groups", role);
        nav
    }

    #[test]
    fn compiled_pre_matches_interpreter_across_environments() {
        let (set, compiled) = compiled_cinder();
        let mut scratch = EvalScratch::new();
        for (mc, cc) in set.contracts.iter().zip(compiled.contracts()) {
            for nav in [
                env(2, "admin", "available"),
                env(2, "member", "available"),
                env(1, "admin", "in-use"),
                env(0, "admin", "available"),
                env(10, "admin", "error"),
            ] {
                let view = EnvView::from_navigator(&nav, compiled.symbols());
                cc.begin_pre(&mut scratch);
                let c = cc.evaluate_pre(compiled.symbols(), &view, &mut scratch);
                let i = mc.evaluate_pre(&nav);
                assert_eq!(c.is_ok(), i.is_ok(), "pre parity for {}", mc.trigger);
                if let (Ok(c), Ok(i)) = (&c, &i) {
                    assert_eq!(c, i, "pre verdict for {}", mc.trigger);
                }
            }
        }
    }

    #[test]
    fn compiled_enabled_clauses_match_interpreter() {
        let (set, compiled) = compiled_cinder();
        let idx = compiled
            .index_for(&Trigger::new(HttpMethod::Delete, "volume"))
            .unwrap();
        let mc = &set.contracts[idx];
        let cc = &compiled.contracts()[idx];
        let mut scratch = EvalScratch::new();
        for nav in [
            env(2, "admin", "available"),
            env(1, "admin", "available"),
            env(2, "user", "available"),
        ] {
            let view = EnvView::from_navigator(&nav, compiled.symbols());
            cc.begin_pre(&mut scratch);
            let got: Vec<&str> = cc
                .enabled_clause_indices(compiled.symbols(), &view, &mut scratch)
                .unwrap()
                .into_iter()
                .map(|i| mc.clauses[i].transition_id.as_str())
                .collect();
            let want: Vec<&str> = mc
                .enabled_clauses(&nav)
                .unwrap()
                .into_iter()
                .map(|c| c.transition_id.as_str())
                .collect();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn compiled_post_matches_interpreter() {
        let (set, compiled) = compiled_cinder();
        let idx = compiled
            .index_for(&Trigger::new(HttpMethod::Delete, "volume"))
            .unwrap();
        let mc = &set.contracts[idx];
        let cc = &compiled.contracts()[idx];
        let mut scratch = EvalScratch::new();
        for (pre_nav, post_nav) in [
            (env(2, "admin", "available"), env(1, "admin", "available")),
            (env(2, "admin", "available"), env(2, "admin", "available")),
            (env(2, "user", "available"), env(2, "user", "available")),
        ] {
            let pre_view = EnvView::from_navigator(&pre_nav, compiled.symbols());
            let post_view = EnvView::from_navigator(&post_nav, compiled.symbols());
            cc.begin_post(&mut scratch);
            let c = cc
                .evaluate_post(compiled.symbols(), &post_view, &pre_view, &mut scratch)
                .unwrap();
            let i = mc.evaluate_post(&post_nav, &pre_nav).unwrap();
            assert_eq!(c, i);
        }
    }

    #[test]
    fn state_diagnostics_match_interpreter() {
        let (set, compiled) = compiled_cinder();
        let cc = &compiled.contracts()[0];
        let nav = env(2, "admin", "available");
        let view = EnvView::from_navigator(&nav, compiled.symbols());
        let mut scratch = EvalScratch::new();
        cc.begin_pre(&mut scratch);
        let got: Vec<&str> = cc
            .matching_state_indices_pre(compiled.symbols(), &view, &mut scratch)
            .unwrap()
            .into_iter()
            .map(|i| compiled.state_names()[i].as_str())
            .collect();
        let want = set.states_matching(&nav).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn delete_volume_scopes_are_exact_and_attribute_level() {
        let (_, compiled) = compiled_cinder();
        let idx = compiled
            .index_for(&Trigger::new(HttpMethod::Delete, "volume"))
            .unwrap();
        let cc = &compiled.contracts()[idx];
        assert!(cc.pre_scope().is_exact());
        assert!(cc.pre_scope().contains("user", "groups"));
        assert!(cc.pre_scope().contains("project", "volumes"));
        // The post side reads pre(project.volumes...) — those reads must
        // be in the *pre* scope, since the pre-phase snapshot serves as
        // the post's pre-state.
        assert!(cc.post_scope().is_exact());
        assert!(cc.post_scope().contains("project", "volumes"));
    }

    #[test]
    fn shared_invariants_earn_memo_slots() {
        let (_, compiled) = compiled_cinder();
        let idx = compiled
            .index_for(&Trigger::new(HttpMethod::Delete, "volume"))
            .unwrap();
        let cc = &compiled.contracts()[idx];
        // DELETE(volume) has 3 clauses whose pre-conditions appear both
        // in the combined disjunction and as clause roots: shared
        // subtrees must be memoized.
        assert!(
            cc.pre_program().memo_slot_count() >= 3,
            "expected shared clause/invariant memo slots, got {}",
            cc.pre_program().memo_slot_count()
        );
    }
}
