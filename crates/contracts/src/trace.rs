//! Requirement traceability and Listing 1 rendering.
//!
//! "When a state or transition with the requirement annotation is
//! traversed, we get an indication which security requirement is met. This
//! provides traceability of security requirements during the validation
//! phase" (Section IV-C). The [`TraceabilityMatrix`] maps each requirement
//! id to the triggers and transitions that exercise it; [`render_listing`]
//! prints a generated contract in the paper's Listing 1 layout.

use crate::contract::{ContractSet, MethodContract};
use cm_model::Trigger;
use cm_ocl::{render as render_ocl, PrintStyle};
use std::fmt::Write as _;

/// One row of the traceability matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRow {
    /// Requirement id, e.g. `1.4`.
    pub requirement: String,
    /// Triggers whose contracts cover the requirement.
    pub triggers: Vec<Trigger>,
    /// Transition ids annotated with the requirement.
    pub transitions: Vec<String>,
}

/// Requirement → coverage mapping derived from a contract set.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceabilityMatrix {
    /// Rows in requirement-id order.
    pub rows: Vec<TraceRow>,
}

impl TraceabilityMatrix {
    /// Build the matrix from a contract set.
    #[must_use]
    pub fn from_contracts(set: &ContractSet) -> Self {
        let mut rows: Vec<TraceRow> = Vec::new();
        for contract in &set.contracts {
            for clause in &contract.clauses {
                for req in &clause.security_requirements {
                    let row = match rows.iter_mut().find(|r| &r.requirement == req) {
                        Some(row) => row,
                        None => {
                            rows.push(TraceRow {
                                requirement: req.clone(),
                                triggers: Vec::new(),
                                transitions: Vec::new(),
                            });
                            rows.last_mut().expect("just pushed")
                        }
                    };
                    if !row.triggers.contains(&contract.trigger) {
                        row.triggers.push(contract.trigger.clone());
                    }
                    if !row.transitions.contains(&clause.transition_id) {
                        row.transitions.push(clause.transition_id.clone());
                    }
                }
            }
        }
        rows.sort_by(|a, b| a.requirement.cmp(&b.requirement));
        TraceabilityMatrix { rows }
    }

    /// The row for a requirement id.
    #[must_use]
    pub fn row(&self, requirement: &str) -> Option<&TraceRow> {
        self.rows.iter().find(|r| r.requirement == requirement)
    }

    /// Requirement ids with no covering transition, given the full list of
    /// ids that were specified (e.g. from Table I).
    #[must_use]
    pub fn uncovered<'a>(&self, specified: &'a [String]) -> Vec<&'a str> {
        specified
            .iter()
            .filter(|id| self.row(id).is_none())
            .map(String::as_str)
            .collect()
    }

    /// Render as an ASCII table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "| {:<7} | {:<24} | {:<30} |",
            "SecReq", "Triggers", "Transitions"
        );
        let _ = writeln!(
            out,
            "|{}|{}|{}|",
            "-".repeat(9),
            "-".repeat(26),
            "-".repeat(32)
        );
        for row in &self.rows {
            let triggers: Vec<String> = row.triggers.iter().map(Trigger::to_string).collect();
            let _ = writeln!(
                out,
                "| {:<7} | {:<24} | {:<30} |",
                row.requirement,
                triggers.join(", "),
                row.transitions.join(", ")
            );
        }
        out
    }
}

/// Render a contract in the paper's Listing 1 layout: a
/// `PreCondition(METHOD(uri))` block with one parenthesised disjunct per
/// clause, then a `PostCondition(...)` block with one implication per
/// clause, in the paper's `=>` style.
#[must_use]
pub fn render_listing(contract: &MethodContract, uri: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "PreCondition({}({uri})):", contract.trigger.method);
    out.push('[');
    for (i, clause) in contract.clauses.iter().enumerate() {
        if i > 0 {
            out.push_str(" or\n");
        }
        let _ = write!(out, "({})", render_ocl(&clause.pre, PrintStyle::Paper));
    }
    out.push_str("]\n\n");
    let _ = writeln!(out, "PostCondition({}({uri})):", contract.trigger.method);
    out.push('[');
    for (i, clause) in contract.clauses.iter().enumerate() {
        if i > 0 {
            out.push_str(" and\n");
        }
        let _ = write!(
            out,
            "(({}) => {})",
            render_ocl(&clause.pre, PrintStyle::Paper),
            render_ocl(&clause.post, PrintStyle::Paper)
        );
    }
    out.push_str("]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate;
    use cm_model::{cinder, HttpMethod};

    fn matrix() -> TraceabilityMatrix {
        TraceabilityMatrix::from_contracts(&generate(&cinder::behavioral_model()).unwrap())
    }

    #[test]
    fn matrix_covers_all_four_requirements() {
        let m = matrix();
        assert_eq!(m.rows.len(), 4);
        let ids: Vec<&str> = m.rows.iter().map(|r| r.requirement.as_str()).collect();
        assert_eq!(ids, vec!["1.1", "1.2", "1.3", "1.4"]);
    }

    #[test]
    fn requirement_1_4_traces_to_three_delete_transitions() {
        let m = matrix();
        let row = m.row("1.4").unwrap();
        assert_eq!(row.triggers.len(), 1);
        assert_eq!(row.triggers[0].method, HttpMethod::Delete);
        assert_eq!(row.transitions.len(), 3);
    }

    #[test]
    fn uncovered_detects_missing() {
        let m = matrix();
        let specified = vec!["1.1".to_string(), "1.4".to_string(), "9.9".to_string()];
        assert_eq!(m.uncovered(&specified), vec!["9.9"]);
    }

    #[test]
    fn render_contains_rows() {
        let text = matrix().render();
        assert!(text.contains("1.4"));
        assert!(text.contains("DELETE(volume)"));
        assert!(text.contains("t_del_1"));
    }

    #[test]
    fn listing_rendering_has_paper_shape() {
        let set = generate(&cinder::behavioral_model()).unwrap();
        let delete = set
            .contract_for(&cm_model::Trigger::new(HttpMethod::Delete, "volume"))
            .unwrap();
        let text = render_listing(delete, ".../v3/{project_id}/volumes");
        assert!(text.starts_with("PreCondition(DELETE(.../v3/{project_id}/volumes)):"));
        assert!(text.contains("PostCondition(DELETE(.../v3/{project_id}/volumes)):"));
        // Three disjuncts => two " or " separators in the pre block.
        assert_eq!(text.matches(" or\n").count(), 2);
        // Three implications in the post block.
        assert_eq!(text.matches("=>").count(), 3);
        // Paper style prints pre() function form.
        assert!(text.contains("pre(project.volumes->size())"));
        // Paper's guard vocabulary survives.
        assert!(text.contains("volume.status <> 'in-use'"));
        assert!(text.contains("user.groups = 'admin'"));
    }
}
