//! Evaluation of OCL expressions against a navigable object environment.
//!
//! Evaluation is parameterised by a [`Navigator`], the interface through
//! which the evaluator reads the *addressable resources* of the monitored
//! cloud (root variables such as `project`, `user`, `volume` and their
//! attributes / association ends). Post-conditions additionally receive a
//! *pre-state* navigator: `pre(expr)` and `property@pre` evaluate against it,
//! mirroring the paper's snapshot of guard/invariant inputs taken before the
//! method executes.
//!
//! ## Undefined propagation
//!
//! Navigation over a missing object or attribute yields
//! [`Value::Undefined`]. Boolean connectives use Kleene semantics
//! (`false and ⊥ = false`, `true or ⊥ = true`, `false implies ⊥ = true`),
//! equality is a *defined* test (`⊥ = ⊥` is `true`), and `->size()` of an
//! undefined source is `0` — this is what makes the paper's
//! `project.id->size() = 1` idiom ("a GET on the resource returned 200")
//! work when the resource is absent.
//!
//! ## Paper-compat numeric coercion
//!
//! Listing 1 compares a collection against an integer
//! (`project.volumes < quota_sets.volume`). In lenient mode (the default)
//! order comparisons coerce a collection operand to its size; strict mode
//! reports an error instead.

use crate::ast::{BinOp, CollectionKind, Expr, IterOp, UnOp};
use crate::value::{ObjRef, Value};
use std::borrow::Cow;
use std::cmp::Ordering;
use std::collections::HashMap;
use std::fmt;

/// Read access to the object environment during evaluation.
pub trait Navigator {
    /// Look up a root context variable (e.g. `project`, `user`, `result`).
    /// Returns `None` when the variable is not part of this environment.
    fn variable(&self, name: &str) -> Option<Value>;

    /// Look up `property` (attribute or association end) on `obj`.
    /// Returns `None` when the object has no such property; the evaluator
    /// maps this to [`Value::Undefined`].
    fn attribute(&self, obj: &ObjRef, property: &str) -> Option<Value>;
}

/// A [`Navigator`] backed by hash maps; used for snapshots and tests.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MapNavigator {
    variables: HashMap<String, Value>,
    attributes: HashMap<(ObjRef, String), Value>,
}

impl MapNavigator {
    /// Create an empty environment.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind a root variable.
    pub fn set_variable(&mut self, name: impl Into<String>, value: impl Into<Value>) -> &mut Self {
        self.variables.insert(name.into(), value.into());
        self
    }

    /// Bind a property on an object.
    pub fn set_attribute(
        &mut self,
        obj: ObjRef,
        property: impl Into<String>,
        value: impl Into<Value>,
    ) -> &mut Self {
        self.attributes.insert((obj, property.into()), value.into());
        self
    }

    /// Number of variable bindings (used in tests and diagnostics).
    #[must_use]
    pub fn variable_count(&self) -> usize {
        self.variables.len()
    }

    /// Number of attribute bindings.
    #[must_use]
    pub fn attribute_count(&self) -> usize {
        self.attributes.len()
    }

    /// Iterate over variable bindings.
    pub fn variables(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.variables.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Iterate over attribute bindings as `(object, property, value)`.
    pub fn attributes(&self) -> impl Iterator<Item = (&ObjRef, &str, &Value)> {
        self.attributes
            .iter()
            .map(|((obj, prop), v)| (obj, prop.as_str(), v))
    }
}

impl Navigator for MapNavigator {
    fn variable(&self, name: &str) -> Option<Value> {
        self.variables.get(name).cloned()
    }

    fn attribute(&self, obj: &ObjRef, property: &str) -> Option<Value> {
        self.attributes
            .get(&(obj.clone(), property.to_string()))
            .cloned()
    }
}

/// An error raised during evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalError {
    /// Human-readable description of the failure.
    pub message: String,
}

impl EvalError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        EvalError {
            message: message.into(),
        }
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "evaluation error: {}", self.message)
    }
}

impl std::error::Error for EvalError {}

/// Strictness of numeric handling; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CoercionMode {
    /// Coerce collections to their size in order comparisons and
    /// arithmetic (paper-compatible; default).
    #[default]
    Lenient,
    /// Report an [`EvalError`] on collection/number mixing.
    Strict,
}

/// Evaluation context: the current-state navigator, an optional pre-state
/// navigator, and local variable bindings.
pub struct EvalContext<'a> {
    current: &'a dyn Navigator,
    pre: Option<&'a dyn Navigator>,
    mode: CoercionMode,
    locals: Vec<(String, Value)>,
}

impl fmt::Debug for EvalContext<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EvalContext")
            .field("has_pre_state", &self.pre.is_some())
            .field("mode", &self.mode)
            .field("locals", &self.locals)
            .finish()
    }
}

impl<'a> EvalContext<'a> {
    /// Context with only a current state (pre-condition evaluation).
    #[must_use]
    pub fn new(current: &'a dyn Navigator) -> Self {
        EvalContext {
            current,
            pre: None,
            mode: CoercionMode::Lenient,
            locals: Vec::new(),
        }
    }

    /// Context with a pre-state snapshot (post-condition evaluation).
    #[must_use]
    pub fn with_pre_state(current: &'a dyn Navigator, pre: &'a dyn Navigator) -> Self {
        EvalContext {
            current,
            pre: Some(pre),
            mode: CoercionMode::Lenient,
            locals: Vec::new(),
        }
    }

    /// Select strict or lenient numeric coercion.
    #[must_use]
    pub fn coercion_mode(mut self, mode: CoercionMode) -> Self {
        self.mode = mode;
        self
    }

    /// Evaluate `expr` to a value.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError`] on unknown variables, unknown operations,
    /// or type mismatches (subject to [`CoercionMode`]).
    pub fn eval(&mut self, expr: &Expr) -> Result<Value, EvalError> {
        self.eval_in(expr, false)
    }

    /// Evaluate `expr` and require a boolean outcome.
    ///
    /// `Undefined` is *not* accepted: contract checking treats an undefined
    /// contract as a violation with its own diagnostic, which this error
    /// carries.
    ///
    /// # Errors
    ///
    /// As [`EvalContext::eval`], plus an error when the result is not a
    /// defined boolean.
    pub fn eval_bool(&mut self, expr: &Expr) -> Result<bool, EvalError> {
        match self.eval(expr)? {
            Value::Bool(b) => Ok(b),
            other => Err(EvalError::new(format!(
                "expected Boolean contract outcome, got {} ({other})",
                other.type_name()
            ))),
        }
    }

    fn lookup_local(&self, name: &str) -> Option<Value> {
        self.locals
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.clone())
    }

    fn navigator(&self, pre_state: bool) -> Result<&'a dyn Navigator, EvalError> {
        if pre_state {
            self.pre.ok_or_else(|| {
                EvalError::new("`@pre`/`pre()` used but no pre-state snapshot is available")
            })
        } else {
            Ok(self.current)
        }
    }

    fn eval_in(&mut self, expr: &Expr, pre_state: bool) -> Result<Value, EvalError> {
        match expr {
            Expr::Bool(b) => Ok(Value::Bool(*b)),
            Expr::Int(v) => Ok(Value::Int(*v)),
            Expr::Real(v) => Ok(Value::Real(*v)),
            Expr::Str(s) => Ok(Value::Str(s.clone())),
            Expr::Null => Ok(Value::Undefined),
            Expr::Var(name) => {
                if let Some(v) = self.lookup_local(name) {
                    return Ok(v);
                }
                self.navigator(pre_state)?
                    .variable(name)
                    .ok_or_else(|| EvalError::new(format!("unknown variable `{name}`")))
            }
            Expr::Nav {
                source,
                property,
                at_pre,
            } => {
                let src = self.eval_in(source, pre_state)?;
                let nav_pre = pre_state || *at_pre;
                self.navigate(&src, property, nav_pre)
            }
            Expr::Pre(inner) => {
                // Everything inside pre(...) reads the pre-state snapshot.
                if self.pre.is_none() {
                    return Err(EvalError::new(
                        "`pre()` used but no pre-state snapshot is available",
                    ));
                }
                self.eval_in(inner, true)
            }
            Expr::CollOp { source, op, args } => {
                let src = self.eval_in(source, pre_state)?;
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    argv.push(self.eval_in(a, pre_state)?);
                }
                collection_op(&src, op, &argv)
            }
            Expr::Iterate {
                source,
                op,
                var,
                body,
            } => {
                let src = self.eval_in(source, pre_state)?;
                let items = arrow_items(&src);
                self.iterate(*op, var, body, &items, pre_state)
            }
            Expr::Binary { op, lhs, rhs } => self.binary(*op, lhs, rhs, pre_state),
            Expr::Unary { op, operand } => {
                let v = self.eval_in(operand, pre_state)?;
                unary_value(*op, &v)
            }
            Expr::If {
                cond,
                then_branch,
                else_branch,
            } => match self.eval_in(cond, pre_state)? {
                Value::Bool(true) => self.eval_in(then_branch, pre_state),
                Value::Bool(false) => self.eval_in(else_branch, pre_state),
                Value::Undefined => Ok(Value::Undefined),
                other => Err(EvalError::new(format!(
                    "`if` condition must be Boolean, got {}",
                    other.type_name()
                ))),
            },
            Expr::Let { name, value, body } => {
                let v = self.eval_in(value, pre_state)?;
                self.locals.push((name.clone(), v));
                let out = self.eval_in(body, pre_state);
                self.locals.pop();
                out
            }
            Expr::CollectionLiteral { kind, elements } => {
                let mut items = Vec::with_capacity(elements.len());
                for e in elements {
                    items.push(self.eval_in(e, pre_state)?);
                }
                Ok(match kind {
                    CollectionKind::Set | CollectionKind::OrderedSet => match Value::set(items) {
                        Value::Coll(_, deduped) => Value::Coll(*kind, deduped),
                        _ => unreachable!("Value::set returns a collection"),
                    },
                    _ => Value::Coll(*kind, items),
                })
            }
            Expr::Fold {
                source,
                var,
                acc,
                init,
                body,
            } => {
                let src = self.eval_in(source, pre_state)?;
                let items = arrow_items(&src);
                let mut acc_val = self.eval_in(init, pre_state)?;
                for item in items.iter() {
                    self.locals.push((var.clone(), item.clone()));
                    self.locals.push((acc.clone(), acc_val));
                    let out = self.eval_in(body, pre_state);
                    self.locals.pop();
                    self.locals.pop();
                    acc_val = out?;
                }
                Ok(acc_val)
            }
            Expr::Call { source, op, args } => {
                let src = self.eval_in(source, pre_state)?;
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    argv.push(self.eval_in(a, pre_state)?);
                }
                method_call(&src, op, &argv)
            }
        }
    }

    fn navigate(
        &mut self,
        src: &Value,
        property: &str,
        pre_state: bool,
    ) -> Result<Value, EvalError> {
        match src {
            Value::Undefined => Ok(Value::Undefined),
            Value::Obj(obj) => Ok(self
                .navigator(pre_state)?
                .attribute(obj, property)
                .unwrap_or(Value::Undefined)),
            // Implicit collect: navigating a collection maps the property
            // over the elements and flattens one level, yielding a Bag
            // (standard OCL shorthand semantics).
            Value::Coll(_, items) => {
                let mut out = Vec::new();
                for item in items {
                    match self.navigate(item, property, pre_state)? {
                        Value::Coll(_, inner) => out.extend(inner),
                        Value::Undefined => {}
                        v => out.push(v),
                    }
                }
                Ok(Value::bag(out))
            }
            other => Err(EvalError::new(format!(
                "cannot navigate `.{property}` on {}",
                other.type_name()
            ))),
        }
    }

    fn binary(
        &mut self,
        op: BinOp,
        lhs: &Expr,
        rhs: &Expr,
        pre_state: bool,
    ) -> Result<Value, EvalError> {
        // Boolean connectives need short-circuit / Kleene handling; the
        // combination of two evaluated operands is shared with the compiled
        // evaluator via [`binary_values`].
        let l = self.eval_in(lhs, pre_state)?;
        match op {
            BinOp::And if l == Value::Bool(false) => return Ok(Value::Bool(false)),
            BinOp::Or if l == Value::Bool(true) => return Ok(Value::Bool(true)),
            BinOp::Implies if l == Value::Bool(false) => return Ok(Value::Bool(true)),
            _ => {}
        }
        let r = self.eval_in(rhs, pre_state)?;
        binary_values(self.mode, op, &l, &r)
    }
}

/// Combine two fully evaluated operands under `op`.
///
/// Short-circuiting happens at the call sites (interpreter and compiled
/// evaluator alike) *before* the right operand is evaluated; this function
/// only sees operand values, so both evaluation pipelines share one
/// definition of the operator semantics.
pub(crate) fn binary_values(
    mode: CoercionMode,
    op: BinOp,
    l: &Value,
    r: &Value,
) -> Result<Value, EvalError> {
    match op {
        BinOp::And => kleene_and(l, r),
        BinOp::Or => kleene_or(l, r),
        BinOp::Implies => match (l, r) {
            (Value::Bool(false), _) => Ok(Value::Bool(true)),
            (Value::Bool(true), Value::Bool(b)) => Ok(Value::Bool(*b)),
            (Value::Undefined, Value::Bool(true)) => Ok(Value::Bool(true)),
            (Value::Undefined, _) => Ok(Value::Undefined),
            (Value::Bool(true), Value::Undefined) => Ok(Value::Undefined),
            (l, r) => Err(EvalError::new(format!(
                "`implies` applied to {} and {}",
                l.type_name(),
                r.type_name()
            ))),
        },
        BinOp::Xor => match (l, r) {
            (Value::Bool(a), Value::Bool(b)) => Ok(Value::Bool(a != b)),
            (Value::Undefined, _) | (_, Value::Undefined) => Ok(Value::Undefined),
            (l, r) => Err(EvalError::new(format!(
                "`xor` applied to {} and {}",
                l.type_name(),
                r.type_name()
            ))),
        },
        BinOp::Eq => Ok(Value::Bool(l.ocl_eq(r))),
        BinOp::Ne => Ok(Value::Bool(!l.ocl_eq(r))),
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            if l.is_undefined() || r.is_undefined() {
                return Ok(Value::Undefined);
            }
            let (l, r) = coerce_pair(mode, l, r)?;
            let ord = l.ocl_cmp(&r).ok_or_else(|| {
                EvalError::new(format!(
                    "cannot order {} and {}",
                    l.type_name(),
                    r.type_name()
                ))
            })?;
            Ok(Value::Bool(match op {
                BinOp::Lt => ord == Ordering::Less,
                BinOp::Le => ord != Ordering::Greater,
                BinOp::Gt => ord == Ordering::Greater,
                BinOp::Ge => ord != Ordering::Less,
                _ => unreachable!(),
            }))
        }
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
            if l.is_undefined() || r.is_undefined() {
                return Ok(Value::Undefined);
            }
            if op == BinOp::Add {
                if let (Value::Str(a), Value::Str(b)) = (l, r) {
                    return Ok(Value::Str(format!("{a}{b}")));
                }
            }
            let (l, r) = coerce_pair(mode, l, r)?;
            arith(op, &l, &r)
        }
    }
}

/// Evaluate a unary operator over an evaluated operand.
pub(crate) fn unary_value(op: UnOp, v: &Value) -> Result<Value, EvalError> {
    match op {
        UnOp::Not => match v {
            Value::Bool(b) => Ok(Value::Bool(!b)),
            Value::Undefined => Ok(Value::Undefined),
            other => Err(EvalError::new(format!(
                "`not` applied to {}",
                other.type_name()
            ))),
        },
        UnOp::Neg => match v {
            Value::Int(n) => Ok(Value::Int(-n)),
            Value::Real(r) => Ok(Value::Real(-r)),
            Value::Undefined => Ok(Value::Undefined),
            other => Err(EvalError::new(format!(
                "unary `-` applied to {}",
                other.type_name()
            ))),
        },
    }
}

/// Apply paper-compat coercion: a collection mixed with a number becomes
/// its size (lenient mode only). Borrowed operands stay borrowed unless a
/// coercion materializes a size.
fn coerce_pair<'a>(
    mode: CoercionMode,
    l: &'a Value,
    r: &'a Value,
) -> Result<(Cow<'a, Value>, Cow<'a, Value>), EvalError> {
    let coerce = |v: &'a Value, other_is_num: bool| -> Result<Cow<'a, Value>, EvalError> {
        match (v, other_is_num, mode) {
            (Value::Coll(_, items), true, CoercionMode::Lenient) => {
                Ok(Cow::Owned(Value::Int(items.len() as i64)))
            }
            (Value::Coll(_, _), true, CoercionMode::Strict) => Err(EvalError::new(
                "collection compared with a number (strict mode); use `->size()`",
            )),
            _ => Ok(Cow::Borrowed(v)),
        }
    };
    let l_num = l.as_real().is_some();
    let r_num = r.as_real().is_some();
    Ok((coerce(l, r_num)?, coerce(r, l_num)?))
}

/// Evaluate `src->op(args…)` over fully evaluated operands; shared between
/// the interpreter and the compiled evaluator.
pub(crate) fn collection_op(src: &Value, op: &str, args: &[Value]) -> Result<Value, EvalError> {
    // `->` implicitly converts a single value to a Set{v}; undefined
    // converts to the empty set (OCL 2.x semantics). Items stay borrowed
    // from the source collection; only ops that build a new collection
    // clone them.
    let items = arrow_items(src);
    let kind = match src {
        Value::Coll(k, _) => *k,
        _ => CollectionKind::Set,
    };
    let arity = |n: usize| -> Result<(), EvalError> {
        if args.len() == n {
            Ok(())
        } else {
            Err(EvalError::new(format!(
                "`->{op}` expects {n} argument(s), got {}",
                args.len()
            )))
        }
    };
    match op {
        "size" => {
            arity(0)?;
            Ok(Value::Int(items.len() as i64))
        }
        "isEmpty" => {
            arity(0)?;
            Ok(Value::Bool(items.is_empty()))
        }
        "notEmpty" => {
            arity(0)?;
            Ok(Value::Bool(!items.is_empty()))
        }
        "includes" => {
            arity(1)?;
            Ok(Value::Bool(items.iter().any(|v| v.ocl_eq(&args[0]))))
        }
        "excludes" => {
            arity(1)?;
            Ok(Value::Bool(!items.iter().any(|v| v.ocl_eq(&args[0]))))
        }
        "includesAll" => {
            arity(1)?;
            let needles = arrow_items(&args[0]);
            Ok(Value::Bool(
                needles.iter().all(|n| items.iter().any(|v| v.ocl_eq(n))),
            ))
        }
        "excludesAll" => {
            arity(1)?;
            let needles = arrow_items(&args[0]);
            Ok(Value::Bool(
                needles.iter().all(|n| !items.iter().any(|v| v.ocl_eq(n))),
            ))
        }
        "count" => {
            arity(1)?;
            Ok(Value::Int(
                items.iter().filter(|v| v.ocl_eq(&args[0])).count() as i64,
            ))
        }
        "sum" => {
            arity(0)?;
            let mut int_sum: i64 = 0;
            let mut real_sum: f64 = 0.0;
            let mut any_real = false;
            for v in items.iter() {
                match v {
                    Value::Int(n) => int_sum += n,
                    Value::Real(r) => {
                        any_real = true;
                        real_sum += r;
                    }
                    Value::Undefined => return Ok(Value::Undefined),
                    other => {
                        return Err(EvalError::new(format!(
                            "`->sum` over non-numeric {}",
                            other.type_name()
                        )))
                    }
                }
            }
            Ok(if any_real {
                Value::Real(real_sum + int_sum as f64)
            } else {
                Value::Int(int_sum)
            })
        }
        "min" | "max" => {
            arity(0)?;
            if items.is_empty() {
                return Ok(Value::Undefined);
            }
            let mut best = items[0].clone();
            for v in &items[1..] {
                let ord = v
                    .ocl_cmp(&best)
                    .ok_or_else(|| EvalError::new(format!("`->{op}` over unordered values")))?;
                let take = if op == "min" {
                    ord == Ordering::Less
                } else {
                    ord == Ordering::Greater
                };
                if take {
                    best = v.clone();
                }
            }
            Ok(best)
        }
        "first" => {
            arity(0)?;
            Ok(items.first().cloned().unwrap_or(Value::Undefined))
        }
        "last" => {
            arity(0)?;
            Ok(items.last().cloned().unwrap_or(Value::Undefined))
        }
        "at" => {
            arity(1)?;
            let idx = args[0]
                .as_int()
                .ok_or_else(|| EvalError::new("`->at` index must be an Integer"))?;
            // OCL indices are 1-based.
            if idx < 1 || idx as usize > items.len() {
                Ok(Value::Undefined)
            } else {
                Ok(items[idx as usize - 1].clone())
            }
        }
        "indexOf" => {
            arity(1)?;
            match items.iter().position(|v| v.ocl_eq(&args[0])) {
                Some(i) => Ok(Value::Int(i as i64 + 1)),
                None => Ok(Value::Undefined),
            }
        }
        "asSet" => {
            arity(0)?;
            Ok(Value::set(items.into_owned()))
        }
        "asSequence" => {
            arity(0)?;
            Ok(Value::sequence(items.into_owned()))
        }
        "asBag" => {
            arity(0)?;
            Ok(Value::bag(items.into_owned()))
        }
        "union" => {
            arity(1)?;
            let mut out = items.into_owned();
            out.extend(arrow_items(&args[0]).into_owned());
            Ok(match kind {
                CollectionKind::Set | CollectionKind::OrderedSet => Value::set(out),
                _ => Value::Coll(kind, out),
            })
        }
        "intersection" => {
            arity(1)?;
            let other = arrow_items(&args[0]);
            let out: Vec<Value> = items
                .iter()
                .filter(|v| other.iter().any(|o| o.ocl_eq(v)))
                .cloned()
                .collect();
            Ok(Value::set(out))
        }
        "including" => {
            arity(1)?;
            let mut out = items.into_owned();
            out.push(args[0].clone());
            Ok(match kind {
                CollectionKind::Set | CollectionKind::OrderedSet => Value::set(out),
                _ => Value::Coll(kind, out),
            })
        }
        "excluding" => {
            arity(1)?;
            let out: Vec<Value> = items
                .iter()
                .filter(|v| !v.ocl_eq(&args[0]))
                .cloned()
                .collect();
            Ok(Value::Coll(kind, out))
        }
        "append" => {
            arity(1)?;
            let mut out = items.into_owned();
            out.push(args[0].clone());
            Ok(Value::sequence(out))
        }
        "prepend" => {
            arity(1)?;
            let mut out = vec![args[0].clone()];
            out.extend(items.into_owned());
            Ok(Value::sequence(out))
        }
        "flatten" => {
            arity(0)?;
            let mut out = Vec::new();
            for v in items.iter() {
                match v {
                    Value::Coll(_, inner) => out.extend(inner.iter().cloned()),
                    other => out.push(other.clone()),
                }
            }
            Ok(Value::Coll(kind, out))
        }
        other => Err(EvalError::new(format!(
            "unknown collection operation `->{other}`"
        ))),
    }
}

impl EvalContext<'_> {
    fn iterate(
        &mut self,
        op: IterOp,
        var: &str,
        body: &Expr,
        items: &[Value],
        pre_state: bool,
    ) -> Result<Value, EvalError> {
        iterate_values(op, items, |item| {
            self.locals.push((var.to_string(), item.clone()));
            let out = self.eval_in(body, pre_state);
            self.locals.pop();
            out
        })
    }
}

/// Run iterator operation `op` over `items`, evaluating each element's body
/// through `eval_body`; shared between the interpreter (which binds the
/// iteration variable on its locals stack) and the compiled evaluator
/// (which binds an interned symbol on the scratch stack).
pub(crate) fn iterate_values(
    op: IterOp,
    items: &[Value],
    mut eval_body: impl FnMut(&Value) -> Result<Value, EvalError>,
) -> Result<Value, EvalError> {
    match op {
        IterOp::Exists => {
            let mut saw_undef = false;
            for item in items {
                match eval_body(item)? {
                    Value::Bool(true) => return Ok(Value::Bool(true)),
                    Value::Bool(false) => {}
                    Value::Undefined => saw_undef = true,
                    other => {
                        return Err(EvalError::new(format!(
                            "`exists` body must be Boolean, got {}",
                            other.type_name()
                        )))
                    }
                }
            }
            Ok(if saw_undef {
                Value::Undefined
            } else {
                Value::Bool(false)
            })
        }
        IterOp::ForAll => {
            let mut saw_undef = false;
            for item in items {
                match eval_body(item)? {
                    Value::Bool(false) => return Ok(Value::Bool(false)),
                    Value::Bool(true) => {}
                    Value::Undefined => saw_undef = true,
                    other => {
                        return Err(EvalError::new(format!(
                            "`forAll` body must be Boolean, got {}",
                            other.type_name()
                        )))
                    }
                }
            }
            Ok(if saw_undef {
                Value::Undefined
            } else {
                Value::Bool(true)
            })
        }
        IterOp::Select | IterOp::Reject => {
            let keep_on = op == IterOp::Select;
            let mut out = Vec::new();
            for item in items {
                match eval_body(item)? {
                    Value::Bool(b) => {
                        if b == keep_on {
                            out.push(item.clone());
                        }
                    }
                    Value::Undefined => {}
                    other => {
                        return Err(EvalError::new(format!(
                            "`{}` body must be Boolean, got {}",
                            op.name(),
                            other.type_name()
                        )))
                    }
                }
            }
            Ok(Value::Coll(CollectionKind::Set, out))
        }
        IterOp::Collect => {
            let mut out = Vec::new();
            for item in items {
                match eval_body(item)? {
                    Value::Coll(_, inner) => out.extend(inner),
                    v => out.push(v),
                }
            }
            Ok(Value::bag(out))
        }
        IterOp::One => {
            let mut n = 0usize;
            for item in items {
                if eval_body(item)? == Value::Bool(true) {
                    n += 1;
                    if n > 1 {
                        return Ok(Value::Bool(false));
                    }
                }
            }
            Ok(Value::Bool(n == 1))
        }
        IterOp::Any => {
            for item in items {
                if eval_body(item)? == Value::Bool(true) {
                    return Ok(item.clone());
                }
            }
            Ok(Value::Undefined)
        }
        IterOp::IsUnique => {
            let mut seen: Vec<Value> = Vec::new();
            for item in items {
                let v = eval_body(item)?;
                if seen.iter().any(|s| s.ocl_eq(&v)) {
                    return Ok(Value::Bool(false));
                }
                seen.push(v);
            }
            Ok(Value::Bool(true))
        }
        IterOp::SortedBy => {
            let mut keyed: Vec<(Value, Value)> = Vec::with_capacity(items.len());
            for item in items {
                let key = eval_body(item)?;
                keyed.push((key, item.clone()));
            }
            // Insertion sort keeps the comparison fallible and the
            // sort stable without unwinding through sort_by.
            let mut sorted: Vec<(Value, Value)> = Vec::with_capacity(keyed.len());
            for (key, item) in keyed {
                let mut at = sorted.len();
                for (i, (other, _)) in sorted.iter().enumerate() {
                    let ord = key
                        .ocl_cmp(other)
                        .ok_or_else(|| EvalError::new("`sortedBy` keys are not totally ordered"))?;
                    if ord == Ordering::Less {
                        at = i;
                        break;
                    }
                }
                sorted.insert(at, (key, item));
            }
            Ok(Value::sequence(
                sorted.into_iter().map(|(_, v)| v).collect(),
            ))
        }
    }
}

/// Evaluate `src.op(args…)` over fully evaluated operands; shared between
/// the interpreter and the compiled evaluator.
pub(crate) fn method_call(src: &Value, op: &str, args: &[Value]) -> Result<Value, EvalError> {
    let arity = |n: usize| -> Result<(), EvalError> {
        if args.len() == n {
            Ok(())
        } else {
            Err(EvalError::new(format!(
                "`.{op}` expects {n} argument(s), got {}",
                args.len()
            )))
        }
    };
    match op {
        "oclIsUndefined" => {
            arity(0)?;
            Ok(Value::Bool(src.is_undefined()))
        }
        "oclIsDefined" => {
            arity(0)?;
            Ok(Value::Bool(!src.is_undefined()))
        }
        "toString" => {
            arity(0)?;
            Ok(Value::Str(match src {
                Value::Str(s) => s.clone(),
                other => other.to_string(),
            }))
        }
        "abs" => {
            arity(0)?;
            match src {
                Value::Int(n) => Ok(Value::Int(n.abs())),
                Value::Real(r) => Ok(Value::Real(r.abs())),
                Value::Undefined => Ok(Value::Undefined),
                other => Err(EvalError::new(format!(".abs on {}", other.type_name()))),
            }
        }
        "floor" => {
            arity(0)?;
            match src {
                Value::Int(n) => Ok(Value::Int(*n)),
                Value::Real(r) => Ok(Value::Int(r.floor() as i64)),
                Value::Undefined => Ok(Value::Undefined),
                other => Err(EvalError::new(format!(".floor on {}", other.type_name()))),
            }
        }
        "round" => {
            arity(0)?;
            match src {
                Value::Int(n) => Ok(Value::Int(*n)),
                Value::Real(r) => Ok(Value::Int(r.round() as i64)),
                Value::Undefined => Ok(Value::Undefined),
                other => Err(EvalError::new(format!(".round on {}", other.type_name()))),
            }
        }
        "max" | "min" => {
            arity(1)?;
            if src.is_undefined() || args[0].is_undefined() {
                return Ok(Value::Undefined);
            }
            let ord = src.ocl_cmp(&args[0]).ok_or_else(|| {
                EvalError::new(format!(
                    ".{op} between {} and {}",
                    src.type_name(),
                    args[0].type_name()
                ))
            })?;
            let take_src = if op == "max" {
                ord != Ordering::Less
            } else {
                ord != Ordering::Greater
            };
            Ok(if take_src {
                src.clone()
            } else {
                args[0].clone()
            })
        }
        "div" | "mod" => {
            arity(1)?;
            match (src.as_int(), args[0].as_int()) {
                (Some(a), Some(b)) => {
                    if b == 0 {
                        Ok(Value::Undefined)
                    } else if op == "div" {
                        Ok(Value::Int(a.div_euclid(b)))
                    } else {
                        Ok(Value::Int(a.rem_euclid(b)))
                    }
                }
                _ => Err(EvalError::new(format!(".{op} requires Integers"))),
            }
        }
        "concat" => {
            arity(1)?;
            match (src.as_str(), args[0].as_str()) {
                (Some(a), Some(b)) => Ok(Value::Str(format!("{a}{b}"))),
                _ => Err(EvalError::new(".concat requires Strings")),
            }
        }
        "toUpper" | "toUpperCase" => {
            arity(0)?;
            match src.as_str() {
                Some(s) => Ok(Value::Str(s.to_uppercase())),
                None => Err(EvalError::new(".toUpper requires a String")),
            }
        }
        "toLower" | "toLowerCase" => {
            arity(0)?;
            match src.as_str() {
                Some(s) => Ok(Value::Str(s.to_lowercase())),
                None => Err(EvalError::new(".toLower requires a String")),
            }
        }
        "substring" => {
            arity(2)?;
            let s = src
                .as_str()
                .ok_or_else(|| EvalError::new(".substring requires a String"))?;
            let (i, j) = match (args[0].as_int(), args[1].as_int()) {
                (Some(i), Some(j)) => (i, j),
                _ => return Err(EvalError::new(".substring indices must be Integers")),
            };
            // OCL substring is 1-based and inclusive on both ends.
            let chars: Vec<char> = s.chars().collect();
            if i < 1 || j < i || j as usize > chars.len() {
                return Ok(Value::Undefined);
            }
            Ok(Value::Str(
                chars[(i as usize - 1)..(j as usize)].iter().collect(),
            ))
        }
        "startsWith" => {
            arity(1)?;
            match (src.as_str(), args[0].as_str()) {
                (Some(a), Some(b)) => Ok(Value::Bool(a.starts_with(b))),
                _ => Err(EvalError::new(".startsWith requires Strings")),
            }
        }
        "endsWith" => {
            arity(1)?;
            match (src.as_str(), args[0].as_str()) {
                (Some(a), Some(b)) => Ok(Value::Bool(a.ends_with(b))),
                _ => Err(EvalError::new(".endsWith requires Strings")),
            }
        }
        "size" => {
            // String size; collections use `->size()`.
            arity(0)?;
            match src.as_str() {
                Some(s) => Ok(Value::Int(s.chars().count() as i64)),
                None => Err(EvalError::new(".size requires a String (use ->size())")),
            }
        }
        "oclIsTypeOf" | "oclIsKindOf" => {
            arity(1)?;
            let wanted = args[0]
                .as_str()
                .ok_or_else(|| EvalError::new(format!(".{op} requires a type name string")))?;
            match src {
                Value::Obj(o) => Ok(Value::Bool(&*o.class == wanted)),
                other => Ok(Value::Bool(other.type_name() == wanted)),
            }
        }
        other => Err(EvalError::new(format!("unknown operation `.{other}()`"))),
    }
}

/// `->` semantics: a collection stays as is; `Undefined` becomes the empty
/// set; any single value becomes a one-element set. Collections are
/// *borrowed*, not cloned — the big win for `flatten`/`asSet`-style chains
/// and for every read-only op (`size`, `includes`, …).
pub(crate) fn arrow_items(v: &Value) -> Cow<'_, [Value]> {
    match v {
        Value::Coll(_, items) => Cow::Borrowed(items.as_slice()),
        Value::Undefined => Cow::Owned(Vec::new()),
        single => Cow::Owned(vec![single.clone()]),
    }
}

pub(crate) fn kleene_and(l: &Value, r: &Value) -> Result<Value, EvalError> {
    match (l, r) {
        (Value::Bool(false), _) | (_, Value::Bool(false)) => Ok(Value::Bool(false)),
        (Value::Bool(true), Value::Bool(true)) => Ok(Value::Bool(true)),
        (Value::Undefined, Value::Bool(true) | Value::Undefined)
        | (Value::Bool(true), Value::Undefined) => Ok(Value::Undefined),
        (l, r) => Err(EvalError::new(format!(
            "`and` applied to {} and {}",
            l.type_name(),
            r.type_name()
        ))),
    }
}

pub(crate) fn kleene_or(l: &Value, r: &Value) -> Result<Value, EvalError> {
    match (l, r) {
        (Value::Bool(true), _) | (_, Value::Bool(true)) => Ok(Value::Bool(true)),
        (Value::Bool(false), Value::Bool(false)) => Ok(Value::Bool(false)),
        (Value::Undefined, Value::Bool(false) | Value::Undefined)
        | (Value::Bool(false), Value::Undefined) => Ok(Value::Undefined),
        (l, r) => Err(EvalError::new(format!(
            "`or` applied to {} and {}",
            l.type_name(),
            r.type_name()
        ))),
    }
}

pub(crate) fn arith(op: BinOp, l: &Value, r: &Value) -> Result<Value, EvalError> {
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => Ok(match op {
            BinOp::Add => Value::Int(a + b),
            BinOp::Sub => Value::Int(a - b),
            BinOp::Mul => Value::Int(a * b),
            BinOp::Div => {
                if *b == 0 {
                    Value::Undefined
                } else {
                    // OCL `/` is real division.
                    Value::Real(*a as f64 / *b as f64)
                }
            }
            _ => unreachable!(),
        }),
        _ => {
            let (a, b) = match (l.as_real(), r.as_real()) {
                (Some(a), Some(b)) => (a, b),
                _ => {
                    return Err(EvalError::new(format!(
                        "arithmetic on {} and {}",
                        l.type_name(),
                        r.type_name()
                    )))
                }
            };
            Ok(match op {
                BinOp::Add => Value::Real(a + b),
                BinOp::Sub => Value::Real(a - b),
                BinOp::Mul => Value::Real(a * b),
                BinOp::Div => {
                    if b == 0.0 {
                        Value::Undefined
                    } else {
                        Value::Real(a / b)
                    }
                }
                _ => unreachable!(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn cinder_env() -> MapNavigator {
        // Mirrors the paper's example: project 4 with one available volume,
        // quota of 10, user in group 'admin'.
        let project = ObjRef::new("project", 4);
        let volume = ObjRef::new("volume", 7);
        let quota = ObjRef::new("quota_sets", 1);
        let user = ObjRef::new("user", 2);
        let mut nav = MapNavigator::new();
        nav.set_variable("project", project.clone())
            .set_variable("volume", volume.clone())
            .set_variable("quota_sets", quota.clone())
            .set_variable("user", user.clone());
        nav.set_attribute(project.clone(), "id", Value::set(vec![Value::Int(4)]))
            .set_attribute(
                project,
                "volumes",
                Value::set(vec![Value::Obj(volume.clone())]),
            )
            .set_attribute(volume.clone(), "status", "available")
            .set_attribute(volume, "size", 100i64)
            .set_attribute(quota, "volume", 10i64)
            .set_attribute(user, "groups", "admin");
        nav
    }

    fn eval_str(src: &str, nav: &MapNavigator) -> Value {
        let e = parse(src).unwrap();
        EvalContext::new(nav).eval(&e).unwrap()
    }

    #[test]
    fn evaluates_paper_invariant_true() {
        let nav = cinder_env();
        assert_eq!(
            eval_str("project.id->size()=1 and project.volumes->size()>=1", &nav),
            Value::Bool(true)
        );
    }

    #[test]
    fn evaluates_paper_guard() {
        let nav = cinder_env();
        assert_eq!(
            eval_str("volume.status <> 'in-use' and user.groups = 'admin'", &nav),
            Value::Bool(true)
        );
    }

    #[test]
    fn paper_compat_collection_vs_quota_comparison() {
        let nav = cinder_env();
        // project.volumes (a 1-element set) < quota_sets.volume (10)
        assert_eq!(
            eval_str("project.volumes < quota_sets.volume", &nav),
            Value::Bool(true)
        );
    }

    #[test]
    fn strict_mode_rejects_collection_vs_number() {
        let nav = cinder_env();
        let e = parse("project.volumes < quota_sets.volume").unwrap();
        let err = EvalContext::new(&nav)
            .coercion_mode(CoercionMode::Strict)
            .eval(&e)
            .unwrap_err();
        assert!(err.message.contains("strict"));
    }

    #[test]
    fn missing_variable_is_an_error() {
        let nav = MapNavigator::new();
        let e = parse("nosuch = 1").unwrap();
        assert!(EvalContext::new(&nav).eval(&e).is_err());
    }

    #[test]
    fn missing_attribute_is_undefined_and_size_zero() {
        let mut nav = MapNavigator::new();
        nav.set_variable("project", ObjRef::new("project", 1));
        assert_eq!(eval_str("project.volumes->size()", &nav), Value::Int(0));
    }

    #[test]
    fn navigation_over_undefined_is_undefined() {
        let mut nav = MapNavigator::new();
        nav.set_variable("project", ObjRef::new("project", 1));
        assert_eq!(eval_str("project.owner.name", &nav), Value::Undefined);
    }

    #[test]
    fn kleene_false_and_undefined_is_false() {
        let mut nav = MapNavigator::new();
        nav.set_variable("project", ObjRef::new("project", 1));
        assert_eq!(
            eval_str("1 = 2 and project.owner.name = 'x'", &nav),
            Value::Bool(false)
        );
        // reversed order also works (undefined first)
        assert_eq!(
            eval_str("project.owner.missing = project.q and 1 = 2", &nav),
            Value::Bool(false)
        );
    }

    #[test]
    fn false_implies_anything_is_true() {
        let mut nav = MapNavigator::new();
        nav.set_variable("p", ObjRef::new("p", 1));
        assert_eq!(
            eval_str("1 = 2 implies p.missing.more = 3", &nav),
            Value::Bool(true)
        );
    }

    #[test]
    fn equality_with_undefined_is_defined_test() {
        let mut nav = MapNavigator::new();
        nav.set_variable("p", ObjRef::new("p", 1));
        assert_eq!(eval_str("p.missing = null", &nav), Value::Bool(true));
        assert_eq!(eval_str("p.missing <> null", &nav), Value::Bool(false));
    }

    #[test]
    fn pre_function_reads_snapshot() {
        let current = cinder_env();
        let mut pre = cinder_env();
        // In the pre-state the project had two volumes.
        let project = ObjRef::new("project", 4);
        pre.set_attribute(
            project,
            "volumes",
            Value::set(vec![
                Value::Obj(ObjRef::new("volume", 7)),
                Value::Obj(ObjRef::new("volume", 8)),
            ]),
        );
        let e = parse("project.volumes->size() < pre(project.volumes->size())").unwrap();
        let v = EvalContext::with_pre_state(&current, &pre)
            .eval(&e)
            .unwrap();
        assert_eq!(v, Value::Bool(true));
    }

    #[test]
    fn at_pre_marker_reads_snapshot() {
        let current = cinder_env();
        let mut pre = cinder_env();
        let volume = ObjRef::new("volume", 7);
        pre.set_attribute(volume, "status", "in-use");
        let e = parse("volume.status@pre = 'in-use' and volume.status = 'available'").unwrap();
        let v = EvalContext::with_pre_state(&current, &pre)
            .eval(&e)
            .unwrap();
        assert_eq!(v, Value::Bool(true));
    }

    #[test]
    fn pre_without_snapshot_is_an_error() {
        let nav = cinder_env();
        let e = parse("pre(project.id->size()) = 1").unwrap();
        let err = EvalContext::new(&nav).eval(&e).unwrap_err();
        assert!(err.message.contains("pre"));
    }

    #[test]
    fn exists_and_forall() {
        let nav = cinder_env();
        assert_eq!(
            eval_str("project.volumes->exists(v | v.status = 'available')", &nav),
            Value::Bool(true)
        );
        assert_eq!(
            eval_str("project.volumes->forAll(v | v.size > 0)", &nav),
            Value::Bool(true)
        );
        assert_eq!(
            eval_str("project.volumes->exists(v | v.status = 'in-use')", &nav),
            Value::Bool(false)
        );
    }

    #[test]
    fn select_then_size() {
        let nav = cinder_env();
        assert_eq!(
            eval_str(
                "project.volumes->select(v | v.status = 'available')->size()",
                &nav
            ),
            Value::Int(1)
        );
    }

    #[test]
    fn collect_navigates() {
        let nav = cinder_env();
        assert_eq!(
            eval_str("project.volumes->collect(v | v.size)->sum()", &nav),
            Value::Int(100)
        );
    }

    #[test]
    fn implicit_collect_shorthand() {
        let nav = cinder_env();
        // project.volumes.size navigates `size` over each volume.
        assert_eq!(
            eval_str("project.volumes.size->sum()", &nav),
            Value::Int(100)
        );
    }

    #[test]
    fn arrow_on_single_value_wraps_in_set() {
        let nav = cinder_env();
        assert_eq!(eval_str("user.groups->size()", &nav), Value::Int(1));
        assert_eq!(
            eval_str("user.groups->includes('admin')", &nav),
            Value::Bool(true)
        );
    }

    #[test]
    fn collection_ops() {
        let nav = MapNavigator::new();
        assert_eq!(eval_str("Set(1,2,3)->includes(2)", &nav), Value::Bool(true));
        assert_eq!(eval_str("Set(1,2,3)->excludes(9)", &nav), Value::Bool(true));
        assert_eq!(eval_str("Sequence(1,2,2)->count(2)", &nav), Value::Int(2));
        assert_eq!(eval_str("Sequence(3,1,2)->min()", &nav), Value::Int(1));
        assert_eq!(eval_str("Sequence(3,1,2)->max()", &nav), Value::Int(3));
        assert_eq!(eval_str("Sequence(3,1,2)->first()", &nav), Value::Int(3));
        assert_eq!(eval_str("Sequence(3,1,2)->last()", &nav), Value::Int(2));
        assert_eq!(eval_str("Sequence(3,1,2)->at(2)", &nav), Value::Int(1));
        assert_eq!(eval_str("Sequence(3,1,2)->indexOf(2)", &nav), Value::Int(3));
        assert_eq!(
            eval_str("Set(1,2)->union(Set(2,3))->size()", &nav),
            Value::Int(3)
        );
        assert_eq!(
            eval_str("Set(1,2)->intersection(Set(2,3))->size()", &nav),
            Value::Int(1)
        );
        assert_eq!(
            eval_str("Set(1,2)->including(3)->size()", &nav),
            Value::Int(3)
        );
        assert_eq!(
            eval_str("Set(1,2)->excluding(1)->size()", &nav),
            Value::Int(1)
        );
        assert_eq!(eval_str("Set()->isEmpty()", &nav), Value::Bool(true));
        assert_eq!(eval_str("Set(1)->notEmpty()", &nav), Value::Bool(true));
        assert_eq!(
            eval_str("Set(1,2,3)->includesAll(Set(1,3))", &nav),
            Value::Bool(true)
        );
    }

    #[test]
    fn iterate_one_any_isunique() {
        let nav = MapNavigator::new();
        assert_eq!(
            eval_str("Sequence(1,2,3)->one(x | x = 2)", &nav),
            Value::Bool(true)
        );
        assert_eq!(
            eval_str("Sequence(1,2,2)->one(x | x = 2)", &nav),
            Value::Bool(false)
        );
        assert_eq!(
            eval_str("Sequence(1,2,3)->any(x | x > 1)", &nav),
            Value::Int(2)
        );
        assert_eq!(
            eval_str("Sequence(1,2,3)->isUnique(x | x)", &nav),
            Value::Bool(true)
        );
        assert_eq!(
            eval_str("Sequence(1,2,2)->isUnique(x | x)", &nav),
            Value::Bool(false)
        );
    }

    #[test]
    fn string_operations() {
        let nav = MapNavigator::new();
        assert_eq!(
            eval_str("'ab'.concat('cd')", &nav),
            Value::Str("abcd".into())
        );
        assert_eq!(eval_str("'ab'.toUpper()", &nav), Value::Str("AB".into()));
        assert_eq!(eval_str("'AB'.toLower()", &nav), Value::Str("ab".into()));
        assert_eq!(
            eval_str("'hello'.substring(2, 4)", &nav),
            Value::Str("ell".into())
        );
        assert_eq!(eval_str("'hello'.size()", &nav), Value::Int(5));
        assert_eq!(
            eval_str("'hello'.startsWith('he')", &nav),
            Value::Bool(true)
        );
        assert_eq!(
            eval_str("'in-use' + '!'", &nav),
            Value::Str("in-use!".into())
        );
    }

    #[test]
    fn numeric_operations() {
        let nav = MapNavigator::new();
        assert_eq!(eval_str("(0 - 3).abs()", &nav), Value::Int(3));
        assert_eq!(eval_str("7.div(2)", &nav), Value::Int(3));
        assert_eq!(eval_str("7.mod(2)", &nav), Value::Int(1));
        assert_eq!(eval_str("3.max(5)", &nav), Value::Int(5));
        assert_eq!(eval_str("3.min(5)", &nav), Value::Int(3));
        assert_eq!(eval_str("1 / 0", &nav), Value::Undefined);
        assert_eq!(eval_str("6 / 4", &nav), Value::Real(1.5));
        assert_eq!(eval_str("2 + 3 * 4", &nav), Value::Int(14));
    }

    #[test]
    fn if_and_let() {
        let nav = MapNavigator::new();
        assert_eq!(
            eval_str("if 1 < 2 then 'yes' else 'no' endif", &nav),
            Value::Str("yes".into())
        );
        assert_eq!(
            eval_str("let n = Set(1,2,3)->size() in n * 10", &nav),
            Value::Int(30)
        );
    }

    #[test]
    fn let_shadowing_is_lexical() {
        let nav = MapNavigator::new();
        assert_eq!(
            eval_str("let x = 1 in (let x = 2 in x) + x", &nav),
            Value::Int(3)
        );
    }

    #[test]
    fn ocl_is_undefined_calls() {
        let mut nav = MapNavigator::new();
        nav.set_variable("p", ObjRef::new("p", 1));
        assert_eq!(
            eval_str("p.missing.oclIsUndefined()", &nav),
            Value::Bool(true)
        );
        assert_eq!(eval_str("p.oclIsDefined()", &nav), Value::Bool(true));
        assert_eq!(eval_str("p.oclIsTypeOf('p')", &nav), Value::Bool(true));
    }

    #[test]
    fn eval_bool_rejects_non_boolean() {
        let nav = MapNavigator::new();
        let e = parse("1 + 1").unwrap();
        assert!(EvalContext::new(&nav).eval_bool(&e).is_err());
    }

    #[test]
    fn full_listing1_precondition_evaluates() {
        let nav = cinder_env();
        // Adapted first disjunct of Listing 1 with user.groups.
        let src = "(project.id->size()=1 and project.volumes->size()>=1 and \
                    project.volumes < quota_sets.volume and volume.status <> 'in-use' and \
                    user.groups = 'admin')";
        assert_eq!(eval_str(src, &nav), Value::Bool(true));
    }
}

#[cfg(test)]
mod error_path_tests {
    use super::*;
    use crate::parser::parse;

    fn eval_err(src: &str) -> String {
        let nav = MapNavigator::new();
        let e = parse(src).unwrap();
        EvalContext::new(&nav).eval(&e).unwrap_err().message
    }

    #[test]
    fn arity_errors_name_the_operation() {
        assert!(eval_err("Set(1)->size(2)").contains("`->size` expects 0"));
        assert!(eval_err("Set(1)->includes()").contains("expects 1"));
        assert!(eval_err("'a'.concat()").contains("expects 1"));
        assert!(eval_err("3.max()").contains("expects 1"));
    }

    #[test]
    fn unknown_operations_are_reported() {
        assert!(eval_err("Set(1)->frobnicate(2)").contains("unknown collection operation"));
        assert!(eval_err("'a'.frobnicate()").contains("unknown operation"));
    }

    #[test]
    fn type_mismatches_are_reported() {
        assert!(eval_err("'a' and true").contains("`and` applied to"));
        assert!(eval_err("1 or false").contains("`or` applied to"));
        assert!(eval_err("not 3").contains("`not` applied to"));
        assert!(eval_err("true < false").contains("cannot order"));
        assert!(eval_err("'a' - 'b'").contains("arithmetic"));
        assert!(eval_err("Set('x')->sum()").contains("non-numeric"));
        assert!(eval_err("Sequence(true, false)->min()").contains("unordered"));
        assert!(eval_err("1.concat('a')").contains("requires Strings"));
        assert!(eval_err("'a'.substring('x', 2)").contains("Integers"));
        assert!(eval_err("if 3 then 1 else 2 endif").contains("must be Boolean"));
        assert!(eval_err("Set(1)->exists(v | v)").contains("must be Boolean"));
    }

    #[test]
    fn boundary_values_are_undefined_not_errors() {
        let nav = MapNavigator::new();
        let cases = [
            ("Sequence(1,2)->at(0)", Value::Undefined),
            ("Sequence(1,2)->at(3)", Value::Undefined),
            ("Sequence()->first()", Value::Undefined),
            ("Sequence()->min()", Value::Undefined),
            ("Sequence(1)->indexOf(9)", Value::Undefined),
            ("'abc'.substring(0, 2)", Value::Undefined),
            ("'abc'.substring(2, 9)", Value::Undefined),
            ("5.div(0)", Value::Undefined),
            ("5.mod(0)", Value::Undefined),
        ];
        for (src, expected) in cases {
            let e = parse(src).unwrap();
            assert_eq!(
                EvalContext::new(&nav).eval(&e).unwrap(),
                expected,
                "case: {src}"
            );
        }
    }

    #[test]
    fn nested_iterator_shadowing() {
        let nav = MapNavigator::new();
        let e = parse("Sequence(1,2)->forAll(x | Sequence(1,2)->exists(x | x = 2) and x >= 1)")
            .unwrap();
        assert_eq!(EvalContext::new(&nav).eval(&e).unwrap(), Value::Bool(true));
    }

    #[test]
    fn deep_navigation_chain_stays_undefined() {
        let mut nav = MapNavigator::new();
        nav.set_variable("a", ObjRef::new("a", 1));
        let e = parse("a.b.c.d.e.f->size() = 0").unwrap();
        assert_eq!(EvalContext::new(&nav).eval(&e).unwrap(), Value::Bool(true));
    }

    #[test]
    fn implicit_collect_flattens_nested_collections() {
        // Two projects each with a set of volumes: navigating `volumes`
        // over the set of projects flattens one level.
        let p1 = ObjRef::new("p", 1);
        let p2 = ObjRef::new("p", 2);
        let mut nav = MapNavigator::new();
        nav.set_variable(
            "ps",
            Value::set(vec![Value::Obj(p1.clone()), Value::Obj(p2.clone())]),
        );
        nav.set_attribute(p1, "vols", Value::set(vec![Value::Int(1), Value::Int(2)]));
        nav.set_attribute(p2, "vols", Value::set(vec![Value::Int(3)]));
        let e = parse("ps.vols->size() = 3").unwrap();
        assert_eq!(EvalContext::new(&nav).eval(&e).unwrap(), Value::Bool(true));
    }
}

#[cfg(test)]
mod fold_tests {
    use super::*;
    use crate::parser::parse;
    use crate::print::to_string;

    fn eval_str(src: &str) -> Value {
        let nav = MapNavigator::new();
        let e = parse(src).unwrap();
        EvalContext::new(&nav).eval(&e).unwrap()
    }

    #[test]
    fn iterate_sums() {
        assert_eq!(
            eval_str("Sequence(1,2,3,4)->iterate(v; acc = 0 | acc + v)"),
            Value::Int(10)
        );
    }

    #[test]
    fn iterate_concatenates_strings() {
        assert_eq!(
            eval_str("Sequence('a','b','c')->iterate(v; s = '' | s + v)"),
            Value::Str("abc".into())
        );
    }

    #[test]
    fn iterate_over_empty_returns_init() {
        assert_eq!(
            eval_str("Sequence()->iterate(v; acc = 42 | acc + 1)"),
            Value::Int(42)
        );
    }

    #[test]
    fn iterate_expresses_count() {
        assert_eq!(
            eval_str("Sequence(1,5,2,8)->iterate(v; n = 0 | if v > 3 then n + 1 else n endif)"),
            Value::Int(2)
        );
    }

    #[test]
    fn iterate_with_typed_variables() {
        assert_eq!(
            eval_str("Sequence(1,2)->iterate(v : Integer; acc : Integer = 0 | acc + v)"),
            Value::Int(3)
        );
    }

    #[test]
    fn iterate_roundtrips_through_printer() {
        let src = "xs->iterate(v; acc = 0 | acc + v.size) > 10";
        let e = parse(src).unwrap();
        let printed = to_string(&e);
        assert_eq!(parse(&printed).unwrap(), e, "{printed}");
        assert_eq!(printed, src);
    }

    #[test]
    fn iterate_free_variables_exclude_bound() {
        let e = parse("xs->iterate(v; acc = start | acc + v + other)").unwrap();
        assert_eq!(
            e.free_variables(),
            vec!["xs".to_string(), "start".to_string(), "other".to_string()]
        );
    }

    #[test]
    fn iterate_typechecks() {
        use crate::types::{check, PermissiveEnv};
        let e = parse("Sequence(1,2)->iterate(v; acc = 0 | acc + v)").unwrap();
        let report = check(&e, &PermissiveEnv);
        assert!(report.is_ok(), "{:?}", report.issues);
    }

    #[test]
    fn iterate_parse_errors() {
        assert!(parse("xs->iterate(v acc = 0 | acc)").is_err());
        assert!(parse("xs->iterate(v; acc | acc)").is_err());
        assert!(parse("xs->iterate(v; acc = 0 acc)").is_err());
    }

    #[test]
    fn iterate_simplifies_inside() {
        use crate::simplify::simplify;
        let e = parse("xs->iterate(v; acc = (1 + 1) | acc and true)").unwrap();
        let s = simplify(&e);
        assert_eq!(to_string(&s), "xs->iterate(v; acc = 2 | acc)");
    }
}

#[cfg(test)]
mod sorted_by_tests {
    use super::*;
    use crate::parser::parse;

    fn eval_str(src: &str) -> Value {
        let nav = MapNavigator::new();
        EvalContext::new(&nav).eval(&parse(src).unwrap()).unwrap()
    }

    #[test]
    fn sorts_by_key() {
        assert_eq!(
            eval_str("Sequence(3,1,2)->sortedBy(x | x)"),
            Value::sequence(vec![Value::Int(1), Value::Int(2), Value::Int(3)])
        );
        assert_eq!(
            eval_str("Sequence(1,2,3)->sortedBy(x | 0 - x)->first()"),
            Value::Int(3)
        );
    }

    #[test]
    fn sort_is_stable() {
        // Equal keys keep insertion order.
        assert_eq!(
            eval_str("Sequence('bb','a','cc','d')->sortedBy(s | s.size())->at(1)"),
            Value::Str("a".into())
        );
        assert_eq!(
            eval_str("Sequence('bb','a','cc','d')->sortedBy(s | s.size())->at(3)"),
            Value::Str("bb".into())
        );
        assert_eq!(
            eval_str("Sequence('bb','a','cc','d')->sortedBy(s | s.size())->at(4)"),
            Value::Str("cc".into())
        );
    }

    #[test]
    fn unordered_keys_error() {
        let nav = MapNavigator::new();
        let e = parse("Sequence(true, false)->sortedBy(x | x)").unwrap();
        assert!(EvalContext::new(&nav).eval(&e).is_err());
    }

    #[test]
    fn empty_sorts_to_empty() {
        assert_eq!(
            eval_str("Sequence()->sortedBy(x | x)->size()"),
            Value::Int(0)
        );
    }
}
