//! Recursive-descent parser for the OCL subset.
//!
//! Grammar (precedence climbing, loosest first):
//!
//! ```text
//! expr        := implies
//! implies     := or ( ("implies" | "=>" | "==>") or )*          (right-assoc)
//! or          := and ( ("or" | "xor") and )*
//! and         := equality ( "and" equality )*
//! equality    := relational ( ("=" | "<>") relational )*
//! relational  := additive ( ("<" | "<=" | ">" | ">=") additive )*
//! additive    := multiplicative ( ("+" | "-") multiplicative )*
//! multiplicative := unary ( ("*" | "/") unary )*
//! unary       := ("not" | "-") unary | postfix
//! postfix     := primary ( "." ident [ "@pre" ] [ "(" args ")" ]
//!                        | "->" ident "(" [ iterVar "|" ] args ")" )*
//! primary     := literal | ident | "(" expr ")" | ifExpr | letExpr
//!              | "pre" "(" expr ")" | CollKind "{" args "}"
//! ```

use crate::ast::{BinOp, CollectionKind, Expr, IterOp, UnOp};
use crate::token::{lex, LexError, Token, TokenKind};
use std::fmt;

/// An error produced while parsing.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset of the offending token.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            offset: e.offset,
        }
    }
}

/// Parse an OCL source string into an expression.
///
/// # Errors
///
/// Returns a [`ParseError`] when the input is not a well-formed expression of
/// the subset, including trailing junk after a complete expression.
///
/// # Examples
///
/// ```
/// use cm_ocl::parse;
/// let e = parse("project.id->size()=1 and project.volumes->size()=0")?;
/// assert_eq!(e.free_variables(), vec!["project".to_string()]);
/// # Ok::<(), cm_ocl::ParseError>(())
/// ```
pub fn parse(src: &str) -> Result<Expr, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        depth: 0,
    };
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

/// Maximum expression nesting accepted (recursive-descent DoS guard).
const MAX_DEPTH: usize = 128;

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    depth: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<(), ParseError> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{kind}`, found `{}`", self.peek())))
        }
    }

    fn expect_eof(&mut self) -> Result<(), ParseError> {
        if matches!(self.peek(), TokenKind::Eof) {
            Ok(())
        } else {
            Err(self.error(format!("unexpected trailing input `{}`", self.peek())))
        }
    }

    fn error(&self, message: String) -> ParseError {
        ParseError {
            message,
            offset: self.offset(),
        }
    }

    /// Is the current token the identifier `word`?
    fn at_keyword(&self, word: &str) -> bool {
        matches!(self.peek(), TokenKind::Ident(s) if s == word)
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.at_keyword(word) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.error(format!("expected identifier, found `{other}`"))),
        }
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.error("expression nesting too deep".to_string()));
        }
        let out = self.implies();
        self.depth -= 1;
        out
    }

    fn implies(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.or()?;
        if matches!(self.peek(), TokenKind::Implies) || self.at_keyword("implies") {
            self.bump();
            // right-associative: a implies b implies c == a implies (b implies c)
            let rhs = self.implies()?;
            Ok(lhs.implies(rhs))
        } else {
            Ok(lhs)
        }
    }

    fn or(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and()?;
        loop {
            let op = if self.at_keyword("or") {
                BinOp::Or
            } else if self.at_keyword("xor") {
                BinOp::Xor
            } else {
                break;
            };
            self.bump();
            let rhs = self.and()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn and(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.equality()?;
        while self.eat_keyword("and") {
            let rhs = self.equality()?;
            lhs = lhs.and(rhs);
        }
        Ok(lhs)
    }

    fn equality(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.relational()?;
        loop {
            let op = match self.peek() {
                TokenKind::Eq => BinOp::Eq,
                TokenKind::Ne => BinOp::Ne,
                _ => break,
            };
            self.bump();
            let rhs = self.relational()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn relational(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.additive()?;
        loop {
            let op = match self.peek() {
                TokenKind::Lt => BinOp::Lt,
                TokenKind::Le => BinOp::Le,
                TokenKind::Gt => BinOp::Gt,
                TokenKind::Ge => BinOp::Ge,
                _ => break,
            };
            self.bump();
            let rhs = self.additive()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.multiplicative()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                _ => break,
            };
            self.bump();
            let rhs = self.unary()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.error("expression nesting too deep".to_string()));
        }
        let out = self.unary_inner();
        self.depth -= 1;
        out
    }

    fn unary_inner(&mut self) -> Result<Expr, ParseError> {
        if self.eat_keyword("not") {
            let operand = self.unary()?;
            return Ok(Expr::Unary {
                op: UnOp::Not,
                operand: Box::new(operand),
            });
        }
        if matches!(self.peek(), TokenKind::Minus) {
            self.bump();
            let operand = self.unary()?;
            return Ok(Expr::Unary {
                op: UnOp::Neg,
                operand: Box::new(operand),
            });
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        loop {
            match self.peek() {
                TokenKind::Dot => {
                    self.bump();
                    let name = self.expect_ident()?;
                    let at_pre = self.eat(&TokenKind::AtPre);
                    if !at_pre && matches!(self.peek(), TokenKind::LParen) {
                        // method call, e.g. s.concat(t), x.oclIsUndefined()
                        self.bump();
                        let args = self.arg_list()?;
                        self.expect(&TokenKind::RParen)?;
                        e = Expr::Call {
                            source: Box::new(e),
                            op: name,
                            args,
                        };
                    } else {
                        e = Expr::Nav {
                            source: Box::new(e),
                            property: name,
                            at_pre,
                        };
                    }
                }
                TokenKind::AtPre => {
                    // `@pre` directly on a variable or parenthesised
                    // expression: equivalent to the `pre(...)` function form.
                    self.bump();
                    e = Expr::Pre(Box::new(e));
                }
                TokenKind::Arrow => {
                    self.bump();
                    let name = self.expect_ident()?;
                    self.expect(&TokenKind::LParen)?;
                    if name == "iterate" {
                        // `->iterate(v; acc = init | body)` — the general fold.
                        let var = self.expect_ident()?;
                        if self.eat(&TokenKind::Colon) {
                            let _ty = self.expect_ident()?;
                        }
                        self.expect(&TokenKind::Semi)?;
                        let acc = self.expect_ident()?;
                        if self.eat(&TokenKind::Colon) {
                            let _ty = self.expect_ident()?;
                        }
                        self.expect(&TokenKind::Eq)?;
                        let init = self.expr()?;
                        self.expect(&TokenKind::Pipe)?;
                        let body = self.expr()?;
                        self.expect(&TokenKind::RParen)?;
                        e = Expr::Fold {
                            source: Box::new(e),
                            var,
                            acc,
                            init: Box::new(init),
                            body: Box::new(body),
                        };
                        continue;
                    }
                    // Look ahead for `ident |` iterator form.
                    let iter_var = self.try_iter_var();
                    if let Some(var) = iter_var {
                        let op = IterOp::from_name(&name).ok_or_else(|| {
                            self.error(format!("`{name}` is not an iterator operation"))
                        })?;
                        let body = self.expr()?;
                        self.expect(&TokenKind::RParen)?;
                        e = Expr::Iterate {
                            source: Box::new(e),
                            op,
                            var,
                            body: Box::new(body),
                        };
                    } else if let Some(op) = IterOp::from_name(&name) {
                        // Iterator op with elided variable: `->exists(body)`.
                        // Bind the implicit variable `self_`; bodies may use
                        // bare attribute names only via explicit variables,
                        // so we require the body to reference `self_` or be
                        // variable-free.
                        if self.eat(&TokenKind::RParen) {
                            return Err(self.error(format!("`{name}` requires a body expression")));
                        }
                        let body = self.expr()?;
                        self.expect(&TokenKind::RParen)?;
                        e = Expr::Iterate {
                            source: Box::new(e),
                            op,
                            var: "self_".to_string(),
                            body: Box::new(body),
                        };
                    } else {
                        let args = self.arg_list()?;
                        self.expect(&TokenKind::RParen)?;
                        e = Expr::CollOp {
                            source: Box::new(e),
                            op: name,
                            args,
                        };
                    }
                }
                _ => break,
            }
        }
        Ok(e)
    }

    /// If the upcoming tokens are `ident |` or `ident : ident |`, consume
    /// them and return the iterator variable name.
    fn try_iter_var(&mut self) -> Option<String> {
        let save = self.pos;
        if let TokenKind::Ident(name) = self.peek().clone() {
            self.bump();
            // optional `: Type`
            if self.eat(&TokenKind::Colon) && self.expect_ident().is_err() {
                self.pos = save;
                return None;
            }
            if self.eat(&TokenKind::Pipe) {
                return Some(name);
            }
        }
        self.pos = save;
        None
    }

    fn arg_list(&mut self) -> Result<Vec<Expr>, ParseError> {
        let mut args = Vec::new();
        if matches!(self.peek(), TokenKind::RParen) {
            return Ok(args);
        }
        loop {
            args.push(self.expr()?);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(args)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::Int(v))
            }
            TokenKind::Real(v) => {
                self.bump();
                Ok(Expr::Real(v))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::Str(s))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => match name.as_str() {
                "true" => {
                    self.bump();
                    Ok(Expr::Bool(true))
                }
                "false" => {
                    self.bump();
                    Ok(Expr::Bool(false))
                }
                "null" | "OclUndefined" => {
                    self.bump();
                    Ok(Expr::Null)
                }
                "if" => self.if_expr(),
                "let" => self.let_expr(),
                "pre" => {
                    // `pre(` is the old-state function; bare `pre` is a
                    // plain variable reference.
                    let save = self.pos;
                    self.bump();
                    if self.eat(&TokenKind::LParen) {
                        let inner = self.expr()?;
                        self.expect(&TokenKind::RParen)?;
                        Ok(Expr::Pre(Box::new(inner)))
                    } else {
                        self.pos = save;
                        self.bump();
                        Ok(Expr::Var(name))
                    }
                }
                _ => {
                    if let Some(kind) = CollectionKind::from_keyword(&name) {
                        // Collection literal uses `{}`; our lexer has no
                        // braces, so literals are spelled `Set(1,2)`.
                        let save = self.pos;
                        self.bump();
                        if self.eat(&TokenKind::LParen) {
                            let elements = self.arg_list()?;
                            self.expect(&TokenKind::RParen)?;
                            return Ok(Expr::CollectionLiteral { kind, elements });
                        }
                        self.pos = save;
                    }
                    self.bump();
                    Ok(Expr::Var(name))
                }
            },
            other => Err(self.error(format!("expected expression, found `{other}`"))),
        }
    }

    fn if_expr(&mut self) -> Result<Expr, ParseError> {
        // current token is `if`
        self.bump();
        let cond = self.expr()?;
        if !self.eat_keyword("then") {
            return Err(self.error("expected `then`".to_string()));
        }
        let then_branch = self.expr()?;
        if !self.eat_keyword("else") {
            return Err(self.error("expected `else`".to_string()));
        }
        let else_branch = self.expr()?;
        if !self.eat_keyword("endif") {
            return Err(self.error("expected `endif`".to_string()));
        }
        Ok(Expr::If {
            cond: Box::new(cond),
            then_branch: Box::new(then_branch),
            else_branch: Box::new(else_branch),
        })
    }

    fn let_expr(&mut self) -> Result<Expr, ParseError> {
        // current token is `let`
        self.bump();
        let name = self.expect_ident()?;
        // optional `: Type`
        if self.eat(&TokenKind::Colon) {
            let _ty = self.expect_ident()?;
        }
        self.expect(&TokenKind::Eq)?;
        let value = self.expr()?;
        if !self.eat_keyword("in") {
            return Err(self.error("expected `in`".to_string()));
        }
        let body = self.expr()?;
        Ok(Expr::Let {
            name,
            value: Box::new(value),
            body: Box::new(body),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BinOp, Expr, IterOp};

    #[test]
    fn parses_paper_state_invariant() {
        // Figure 3 invariant of project_with_no_volume.
        let e = parse("project.id->size()=1 and project.volumes->size()=0").unwrap();
        match &e {
            Expr::Binary {
                op: BinOp::And,
                lhs,
                rhs,
            } => {
                assert!(matches!(**lhs, Expr::Binary { op: BinOp::Eq, .. }));
                assert!(matches!(**rhs, Expr::Binary { op: BinOp::Eq, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_paper_guard_with_string() {
        let e = parse("volume.status <> 'in-use' and user.id.groups='admin'").unwrap();
        assert_eq!(
            e.free_variables(),
            vec!["volume".to_string(), "user".to_string()]
        );
    }

    #[test]
    fn parses_pre_function_form() {
        let e = parse("project.volumes->size() < pre(project.volumes->size())").unwrap();
        assert!(e.references_pre_state());
    }

    #[test]
    fn parses_at_pre_marker() {
        let e = parse("project.volumes@pre->size() > 0").unwrap();
        assert!(e.references_pre_state());
    }

    #[test]
    fn parses_both_implication_spellings_to_same_ast() {
        let a = parse("a => b").unwrap();
        let b = parse("a ==> b").unwrap();
        let c = parse("a implies b").unwrap();
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn implication_is_right_associative() {
        let e = parse("a => b => c").unwrap();
        match e {
            Expr::Binary {
                op: BinOp::Implies,
                lhs,
                rhs,
            } => {
                assert_eq!(*lhs, Expr::Var("a".into()));
                assert!(matches!(
                    *rhs,
                    Expr::Binary {
                        op: BinOp::Implies,
                        ..
                    }
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn and_binds_tighter_than_or() {
        let e = parse("a or b and c").unwrap();
        match e {
            Expr::Binary {
                op: BinOp::Or,
                lhs,
                rhs,
            } => {
                assert_eq!(*lhs, Expr::Var("a".into()));
                assert!(matches!(*rhs, Expr::Binary { op: BinOp::And, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn comparison_binds_tighter_than_and() {
        let e = parse("x = 1 and y = 2").unwrap();
        assert!(matches!(e, Expr::Binary { op: BinOp::And, .. }));
    }

    #[test]
    fn arithmetic_precedence() {
        let e = parse("1 + 2 * 3").unwrap();
        match e {
            Expr::Binary {
                op: BinOp::Add,
                rhs,
                ..
            } => {
                assert!(matches!(*rhs, Expr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_iterator_with_variable() {
        let e = parse("project.volumes->exists(v | v.status = 'in-use')").unwrap();
        match e {
            Expr::Iterate {
                op: IterOp::Exists,
                var,
                ..
            } => assert_eq!(var, "v"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_iterator_with_typed_variable() {
        let e = parse("vs->forAll(v : Volume | v.size > 0)").unwrap();
        assert!(matches!(
            e,
            Expr::Iterate {
                op: IterOp::ForAll,
                ..
            }
        ));
    }

    #[test]
    fn parses_select_chain() {
        let e = parse("project.volumes->select(v | v.status = 'available')->size() >= 1").unwrap();
        assert!(matches!(e, Expr::Binary { op: BinOp::Ge, .. }));
    }

    #[test]
    fn parses_coll_ops_with_args() {
        let e = parse("xs->includes(3)").unwrap();
        assert!(matches!(e, Expr::CollOp { ref op, .. } if op == "includes"));
    }

    #[test]
    fn parses_if_then_else() {
        let e = parse("if x > 0 then 'pos' else 'neg' endif").unwrap();
        assert!(matches!(e, Expr::If { .. }));
    }

    #[test]
    fn parses_let() {
        let e = parse("let n = xs->size() in n > 0 and n < 10").unwrap();
        assert!(matches!(e, Expr::Let { .. }));
    }

    #[test]
    fn parses_not() {
        let e = parse("not x and y").unwrap();
        // `not` binds tighter than `and`
        assert!(matches!(e, Expr::Binary { op: BinOp::And, .. }));
    }

    #[test]
    fn parses_method_call() {
        let e = parse("name.concat('-suffix') = 'a-suffix'").unwrap();
        assert!(matches!(e, Expr::Binary { op: BinOp::Eq, .. }));
    }

    #[test]
    fn parses_collection_literal() {
        let e = parse("Set(1, 2, 3)->size() = 3").unwrap();
        assert!(matches!(e, Expr::Binary { op: BinOp::Eq, .. }));
    }

    #[test]
    fn pre_as_plain_variable_still_works() {
        let e = parse("pre = 1").unwrap();
        assert!(matches!(e, Expr::Binary { op: BinOp::Eq, .. }));
    }

    #[test]
    fn rejects_trailing_junk() {
        assert!(parse("a = 1 b").is_err());
    }

    #[test]
    fn rejects_missing_endif() {
        assert!(parse("if a then b else c").is_err());
    }

    #[test]
    fn rejects_empty_input() {
        assert!(parse("").is_err());
    }

    #[test]
    fn rejects_unbalanced_parens() {
        assert!(parse("(a and b").is_err());
    }

    #[test]
    fn parses_full_listing1_precondition() {
        // The exact pre-condition text of Listing 1 (first disjunct chain),
        // normalised whitespace.
        let src = "(project.id->size()=1 and project.volumes->size()>=1 and \
                    project.volumes->size() < quota_sets.volume and volume.status <> 'in-use' \
                    and user.groups = 'admin') or \
                   (project.id->size()=1 and project.volumes->size()>=1 and \
                    project.volumes->size() = quota_sets.volume and volume.status <> 'in-use' \
                    and user.groups = 'admin')";
        let e = parse(src).unwrap();
        assert!(matches!(e, Expr::Binary { op: BinOp::Or, .. }));
    }
}

#[cfg(test)]
mod depth_tests {
    use super::*;

    #[test]
    fn deep_parens_rejected_gracefully() {
        let deep = format!("{}x{}", "(".repeat(100_000), ")".repeat(100_000));
        let err = parse(&deep).unwrap_err();
        assert!(err.message.contains("too deep"));
        let ok = format!("{}x{}", "(".repeat(40), ")".repeat(40));
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn deep_not_chain_rejected_gracefully() {
        let deep = format!("{} x", "not ".repeat(100_000));
        assert!(parse(&deep).is_err());
    }
}
