//! A lightweight static type checker for the OCL subset.
//!
//! The checker infers a [`Type`] for an expression given a [`TypeEnv`]
//! describing the root variables and the attribute types of model classes.
//! It is deliberately *gradual*: `Type::Unknown` silences downstream
//! complaints, so partially-typed models (common when only critical
//! resources are modelled, per the paper's Section VI-B) still check.
//!
//! The checker also reports the paper-compat *warnings* that strict OCL
//! would reject — e.g. comparing a collection with an integer — so a
//! security analyst can see where contracts rely on lenient coercion.

use crate::ast::{BinOp, CollectionKind, Expr, IterOp, UnOp};
use std::collections::HashMap;
use std::fmt;

/// Static types of the subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Type {
    /// Boolean.
    Bool,
    /// Integer.
    Int,
    /// Real.
    Real,
    /// String.
    Str,
    /// Instance of a model class (resource definition).
    Object(String),
    /// Collection with element type.
    Coll(CollectionKind, Box<Type>),
    /// Not statically known; compatible with everything.
    Unknown,
}

impl Type {
    /// True if `self` is compatible with `other` (either direction of
    /// `Unknown`, `Int <: Real`, equal otherwise).
    #[must_use]
    pub fn compatible(&self, other: &Type) -> bool {
        match (self, other) {
            (Type::Unknown, _) | (_, Type::Unknown) => true,
            (Type::Int, Type::Real) | (Type::Real, Type::Int) => true,
            (Type::Coll(_, a), Type::Coll(_, b)) => a.compatible(b),
            (a, b) => a == b,
        }
    }

    /// True for `Int`/`Real`/`Unknown`.
    #[must_use]
    pub fn is_numeric(&self) -> bool {
        matches!(self, Type::Int | Type::Real | Type::Unknown)
    }

    /// Element type if this is a collection; single values are their own
    /// element type under `->` implicit conversion.
    #[must_use]
    pub fn element_type(&self) -> Type {
        match self {
            Type::Coll(_, elem) => (**elem).clone(),
            other => other.clone(),
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Bool => write!(f, "Boolean"),
            Type::Int => write!(f, "Integer"),
            Type::Real => write!(f, "Real"),
            Type::Str => write!(f, "String"),
            Type::Object(c) => write!(f, "{c}"),
            Type::Coll(k, e) => write!(f, "{}({e})", k.keyword()),
            Type::Unknown => write!(f, "OclAny"),
        }
    }
}

/// Environment interface: variable and attribute types.
pub trait TypeEnv {
    /// Type of a root variable, or `None` if unknown to the environment.
    fn variable_type(&self, name: &str) -> Option<Type>;
    /// Type of `property` on instances of `class`, or `None` if unknown.
    fn attribute_type(&self, class: &str, property: &str) -> Option<Type>;
}

/// A [`TypeEnv`] backed by hash maps.
#[derive(Debug, Clone, Default)]
pub struct MapTypeEnv {
    variables: HashMap<String, Type>,
    attributes: HashMap<(String, String), Type>,
}

impl MapTypeEnv {
    /// Create an empty environment.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a root variable.
    pub fn declare_variable(&mut self, name: impl Into<String>, ty: Type) -> &mut Self {
        self.variables.insert(name.into(), ty);
        self
    }

    /// Declare an attribute type on a class.
    pub fn declare_attribute(
        &mut self,
        class: impl Into<String>,
        property: impl Into<String>,
        ty: Type,
    ) -> &mut Self {
        self.attributes.insert((class.into(), property.into()), ty);
        self
    }
}

impl TypeEnv for MapTypeEnv {
    fn variable_type(&self, name: &str) -> Option<Type> {
        self.variables.get(name).cloned()
    }

    fn attribute_type(&self, class: &str, property: &str) -> Option<Type> {
        self.attributes
            .get(&(class.to_string(), property.to_string()))
            .cloned()
    }
}

/// A permissive environment that types everything as `Unknown`.
#[derive(Debug, Clone, Copy, Default)]
pub struct PermissiveEnv;

impl TypeEnv for PermissiveEnv {
    fn variable_type(&self, _name: &str) -> Option<Type> {
        Some(Type::Unknown)
    }

    fn attribute_type(&self, _class: &str, _property: &str) -> Option<Type> {
        Some(Type::Unknown)
    }
}

/// A type error or lenient-coercion warning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeIssue {
    /// Description of the issue.
    pub message: String,
    /// `true` for hard errors, `false` for paper-compat warnings.
    pub is_error: bool,
}

impl fmt::Display for TypeIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = if self.is_error { "error" } else { "warning" };
        write!(f, "type {kind}: {}", self.message)
    }
}

/// Result of type checking: the inferred type and any issues found.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeReport {
    /// Inferred type of the whole expression.
    pub ty: Type,
    /// Issues found anywhere in the expression.
    pub issues: Vec<TypeIssue>,
}

impl TypeReport {
    /// True if no hard errors were found (warnings allowed).
    #[must_use]
    pub fn is_ok(&self) -> bool {
        self.issues.iter().all(|i| !i.is_error)
    }

    /// Only the hard errors.
    pub fn errors(&self) -> impl Iterator<Item = &TypeIssue> {
        self.issues.iter().filter(|i| i.is_error)
    }
}

/// Type-check `expr` in `env`.
#[must_use]
pub fn check(expr: &Expr, env: &dyn TypeEnv) -> TypeReport {
    let mut ck = Checker {
        env,
        issues: Vec::new(),
        locals: Vec::new(),
    };
    let ty = ck.infer(expr);
    TypeReport {
        ty,
        issues: ck.issues,
    }
}

struct Checker<'a> {
    env: &'a dyn TypeEnv,
    issues: Vec<TypeIssue>,
    locals: Vec<(String, Type)>,
}

impl Checker<'_> {
    fn error(&mut self, message: String) {
        self.issues.push(TypeIssue {
            message,
            is_error: true,
        });
    }

    fn warn(&mut self, message: String) {
        self.issues.push(TypeIssue {
            message,
            is_error: false,
        });
    }

    fn infer(&mut self, expr: &Expr) -> Type {
        match expr {
            Expr::Bool(_) => Type::Bool,
            Expr::Int(_) => Type::Int,
            Expr::Real(_) => Type::Real,
            Expr::Str(_) => Type::Str,
            Expr::Null => Type::Unknown,
            Expr::Var(name) => {
                if let Some((_, ty)) = self.locals.iter().rev().find(|(n, _)| n == name) {
                    return ty.clone();
                }
                match self.env.variable_type(name) {
                    Some(ty) => ty,
                    None => {
                        self.error(format!("unknown variable `{name}`"));
                        Type::Unknown
                    }
                }
            }
            Expr::Nav {
                source, property, ..
            } => {
                let src_ty = self.infer(source);
                self.navigate_type(&src_ty, property)
            }
            Expr::Pre(inner) => self.infer(inner),
            Expr::CollOp { source, op, args } => {
                let src_ty = self.infer(source);
                let arg_tys: Vec<Type> = args.iter().map(|a| self.infer(a)).collect();
                self.coll_op_type(&src_ty, op, &arg_tys)
            }
            Expr::Iterate {
                source,
                op,
                var,
                body,
            } => {
                let src_ty = self.infer(source);
                let elem = src_ty.element_type();
                self.locals.push((var.clone(), elem.clone()));
                let body_ty = self.infer(body);
                self.locals.pop();
                match op {
                    IterOp::Exists | IterOp::ForAll | IterOp::One | IterOp::IsUnique => {
                        if matches!(op, IterOp::Exists | IterOp::ForAll | IterOp::One)
                            && !body_ty.compatible(&Type::Bool)
                        {
                            self.error(format!(
                                "`{}` body must be Boolean, found {body_ty}",
                                op.name()
                            ));
                        }
                        Type::Bool
                    }
                    IterOp::Select | IterOp::Reject => {
                        if !body_ty.compatible(&Type::Bool) {
                            self.error(format!(
                                "`{}` body must be Boolean, found {body_ty}",
                                op.name()
                            ));
                        }
                        Type::Coll(CollectionKind::Set, Box::new(elem))
                    }
                    IterOp::Collect => Type::Coll(CollectionKind::Bag, Box::new(body_ty)),
                    IterOp::SortedBy => Type::Coll(CollectionKind::Sequence, Box::new(elem)),
                    IterOp::Any => elem,
                }
            }
            Expr::Binary { op, lhs, rhs } => {
                let lt = self.infer(lhs);
                let rt = self.infer(rhs);
                self.binary_type(*op, &lt, &rt)
            }
            Expr::Unary { op, operand } => {
                let t = self.infer(operand);
                match op {
                    UnOp::Not => {
                        if !t.compatible(&Type::Bool) {
                            self.error(format!("`not` applied to {t}"));
                        }
                        Type::Bool
                    }
                    UnOp::Neg => {
                        if !t.is_numeric() {
                            self.error(format!("unary `-` applied to {t}"));
                        }
                        t
                    }
                }
            }
            Expr::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let ct = self.infer(cond);
                if !ct.compatible(&Type::Bool) {
                    self.error(format!("`if` condition must be Boolean, found {ct}"));
                }
                let tt = self.infer(then_branch);
                let et = self.infer(else_branch);
                if tt.compatible(&et) {
                    if tt == Type::Unknown {
                        et
                    } else {
                        tt
                    }
                } else {
                    self.warn(format!("`if` branches have different types: {tt} vs {et}"));
                    Type::Unknown
                }
            }
            Expr::Let { name, value, body } => {
                let vt = self.infer(value);
                self.locals.push((name.clone(), vt));
                let bt = self.infer(body);
                self.locals.pop();
                bt
            }
            Expr::CollectionLiteral { kind, elements } => {
                let mut elem_ty = Type::Unknown;
                for e in elements {
                    let t = self.infer(e);
                    if elem_ty == Type::Unknown {
                        elem_ty = t;
                    } else if !elem_ty.compatible(&t) {
                        self.warn(format!(
                            "mixed element types in collection literal: {elem_ty} vs {t}"
                        ));
                        elem_ty = Type::Unknown;
                    }
                }
                Type::Coll(*kind, Box::new(elem_ty))
            }
            Expr::Fold {
                source,
                var,
                acc,
                init,
                body,
            } => {
                let src_ty = self.infer(source);
                let elem = src_ty.element_type();
                let init_ty = self.infer(init);
                self.locals.push((var.clone(), elem));
                self.locals.push((acc.clone(), init_ty.clone()));
                let body_ty = self.infer(body);
                self.locals.pop();
                self.locals.pop();
                if !body_ty.compatible(&init_ty) {
                    self.warn(format!(
                        "`iterate` body type {body_ty} differs from accumulator type {init_ty}"
                    ));
                }
                body_ty
            }
            Expr::Call { source, op, args } => {
                let st = self.infer(source);
                for a in args {
                    self.infer(a);
                }
                match op.as_str() {
                    "oclIsUndefined" | "oclIsDefined" | "oclIsTypeOf" | "oclIsKindOf"
                    | "startsWith" | "endsWith" => Type::Bool,
                    "concat" | "toUpper" | "toUpperCase" | "toLower" | "toLowerCase"
                    | "substring" | "toString" => Type::Str,
                    "abs" | "max" | "min" => st,
                    "floor" | "round" | "div" | "mod" | "size" => Type::Int,
                    _ => Type::Unknown,
                }
            }
        }
    }

    fn navigate_type(&mut self, src: &Type, property: &str) -> Type {
        match src {
            Type::Object(class) => match self.env.attribute_type(class, property) {
                Some(ty) => ty,
                None => {
                    self.warn(format!(
                        "class `{class}` has no declared property `{property}`"
                    ));
                    Type::Unknown
                }
            },
            Type::Coll(_, elem) => {
                // implicit collect
                let inner = self.navigate_type(&elem.clone(), property);
                Type::Coll(CollectionKind::Bag, Box::new(inner.element_type()))
            }
            Type::Unknown => Type::Unknown,
            other => {
                self.error(format!("cannot navigate `.{property}` on {other}"));
                Type::Unknown
            }
        }
    }

    fn coll_op_type(&mut self, src: &Type, op: &str, args: &[Type]) -> Type {
        if matches!(src, Type::Bool | Type::Int | Type::Real | Type::Str) {
            // Legal via the implicit Set{v} conversion, but worth surfacing.
            self.warn(format!("`->{op}` applied to single value of type {src}"));
        }
        let elem = src.element_type();
        match op {
            "size" | "count" | "indexOf" => Type::Int,
            "isEmpty" | "notEmpty" | "includes" | "excludes" | "includesAll" | "excludesAll" => {
                Type::Bool
            }
            "sum" => {
                if !elem.is_numeric() {
                    self.error(format!("`->sum` over non-numeric elements of type {elem}"));
                }
                elem
            }
            "min" | "max" | "first" | "last" | "at" | "any" => elem,
            "asSet" => Type::Coll(CollectionKind::Set, Box::new(elem)),
            "asSequence" | "append" | "prepend" => {
                Type::Coll(CollectionKind::Sequence, Box::new(elem))
            }
            "asBag" => Type::Coll(CollectionKind::Bag, Box::new(elem)),
            "union" | "intersection" | "including" | "excluding" | "flatten" => {
                if let Some(arg) = args.first() {
                    if !arg.element_type().compatible(&elem) {
                        self.warn(format!(
                            "`->{op}` mixes element types {elem} and {}",
                            arg.element_type()
                        ));
                    }
                }
                Type::Coll(CollectionKind::Set, Box::new(elem))
            }
            other => {
                self.error(format!("unknown collection operation `->{other}`"));
                Type::Unknown
            }
        }
    }

    fn binary_type(&mut self, op: BinOp, lt: &Type, rt: &Type) -> Type {
        match op {
            BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Implies => {
                for t in [lt, rt] {
                    if !t.compatible(&Type::Bool) {
                        self.error(format!("`{}` applied to {t}", op.symbol()));
                    }
                }
                Type::Bool
            }
            BinOp::Eq | BinOp::Ne => {
                if !lt.compatible(rt) {
                    self.warn(format!(
                        "`{}` compares incompatible types {lt} and {rt} (always {})",
                        op.symbol(),
                        op == BinOp::Ne
                    ));
                }
                Type::Bool
            }
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                let coll_num = (matches!(lt, Type::Coll(..)) && rt.is_numeric())
                    || (matches!(rt, Type::Coll(..)) && lt.is_numeric());
                if coll_num {
                    self.warn(format!(
                        "ordering a collection against a number ({lt} vs {rt}); \
                         lenient evaluation coerces to `->size()` (paper-compat)"
                    ));
                } else {
                    let ordered =
                        |t: &Type| t.is_numeric() || matches!(t, Type::Str | Type::Unknown);
                    if !ordered(lt) || !ordered(rt) || !lt.compatible(rt) {
                        self.error(format!("`{}` cannot order {lt} and {rt}", op.symbol()));
                    }
                }
                Type::Bool
            }
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
                if *lt == Type::Str && *rt == Type::Str && op == BinOp::Add {
                    return Type::Str;
                }
                let coll_num = (matches!(lt, Type::Coll(..)) && rt.is_numeric())
                    || (matches!(rt, Type::Coll(..)) && lt.is_numeric());
                if coll_num {
                    self.warn(format!(
                        "arithmetic mixing a collection and a number ({lt} vs {rt}); \
                         lenient evaluation coerces to `->size()` (paper-compat)"
                    ));
                    return Type::Int;
                }
                if !lt.is_numeric() || !rt.is_numeric() {
                    self.error(format!("arithmetic on {lt} and {rt}"));
                    return Type::Unknown;
                }
                if op == BinOp::Div || *lt == Type::Real || *rt == Type::Real {
                    Type::Real
                } else if *lt == Type::Unknown || *rt == Type::Unknown {
                    Type::Unknown
                } else {
                    Type::Int
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn cinder_types() -> MapTypeEnv {
        let mut env = MapTypeEnv::new();
        env.declare_variable("project", Type::Object("project".into()))
            .declare_variable("volume", Type::Object("volume".into()))
            .declare_variable("quota_sets", Type::Object("quota_sets".into()))
            .declare_variable("user", Type::Object("user".into()));
        env.declare_attribute(
            "project",
            "id",
            Type::Coll(CollectionKind::Set, Box::new(Type::Int)),
        )
        .declare_attribute(
            "project",
            "volumes",
            Type::Coll(CollectionKind::Set, Box::new(Type::Object("volume".into()))),
        )
        .declare_attribute("volume", "status", Type::Str)
        .declare_attribute("volume", "size", Type::Int)
        .declare_attribute("quota_sets", "volume", Type::Int)
        .declare_attribute("user", "groups", Type::Str);
        env
    }

    fn check_str(src: &str, env: &dyn TypeEnv) -> TypeReport {
        check(&parse(src).unwrap(), env)
    }

    #[test]
    fn paper_invariant_types_as_bool() {
        let env = cinder_types();
        let r = check_str("project.id->size()=1 and project.volumes->size()=0", &env);
        assert_eq!(r.ty, Type::Bool);
        assert!(r.is_ok(), "{:?}", r.issues);
    }

    #[test]
    fn paper_lenient_comparison_warns_but_passes() {
        let env = cinder_types();
        let r = check_str("project.volumes < quota_sets.volume", &env);
        assert_eq!(r.ty, Type::Bool);
        assert!(r.is_ok());
        assert_eq!(r.issues.len(), 1);
        assert!(r.issues[0].message.contains("paper-compat"));
    }

    #[test]
    fn unknown_variable_is_error() {
        let env = cinder_types();
        let r = check_str("ghost = 1", &env);
        assert!(!r.is_ok());
    }

    #[test]
    fn unknown_property_is_warning() {
        let env = cinder_types();
        let r = check_str("project.ghost = 1", &env);
        assert!(r.is_ok());
        assert_eq!(r.issues.len(), 1);
    }

    #[test]
    fn boolean_connective_on_int_is_error() {
        let env = cinder_types();
        let r = check_str("1 and 2", &env);
        assert!(!r.is_ok());
    }

    #[test]
    fn incompatible_equality_warns() {
        let env = cinder_types();
        let r = check_str("volume.status = 1", &env);
        assert!(r.is_ok());
        assert!(!r.issues.is_empty());
    }

    #[test]
    fn iterator_variable_gets_element_type() {
        let env = cinder_types();
        let r = check_str("project.volumes->forAll(v | v.size > 0)", &env);
        assert_eq!(r.ty, Type::Bool);
        assert!(r.is_ok(), "{:?}", r.issues);
    }

    #[test]
    fn select_returns_collection() {
        let env = cinder_types();
        let r = check_str("project.volumes->select(v | v.status = 'ok')", &env);
        assert!(matches!(r.ty, Type::Coll(_, _)));
    }

    #[test]
    fn sum_over_strings_is_error() {
        let env = cinder_types();
        let r = check_str("project.volumes->collect(v | v.status)->sum()", &env);
        assert!(!r.is_ok());
    }

    #[test]
    fn permissive_env_accepts_anything_navigational() {
        let r = check_str("anything.at.all->size() = 3", &PermissiveEnv);
        assert!(r.is_ok(), "{:?}", r.issues);
        assert_eq!(r.ty, Type::Bool);
    }

    #[test]
    fn division_is_real() {
        let r = check_str("4 / 2", &PermissiveEnv);
        assert_eq!(r.ty, Type::Real);
    }

    #[test]
    fn string_concat_with_plus() {
        let r = check_str("'a' + 'b'", &PermissiveEnv);
        assert_eq!(r.ty, Type::Str);
        assert!(r.is_ok());
    }

    #[test]
    fn arrow_on_scalar_warns() {
        let env = cinder_types();
        let r = check_str("user.groups->size()", &env);
        assert!(r.is_ok());
        assert!(r.issues.iter().any(|i| i.message.contains("single value")));
    }

    #[test]
    fn if_condition_must_be_bool() {
        let r = check_str("if 1 then 2 else 3 endif", &PermissiveEnv);
        assert!(!r.is_ok());
    }
}
