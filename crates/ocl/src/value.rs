//! Runtime values for OCL evaluation.

use crate::ast::CollectionKind;
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// A reference to a model object (a *resource* in the paper's terminology).
///
/// Objects are identified by the class (resource definition) they instantiate
/// and an opaque identifier assigned by the hosting environment.
///
/// The class name is shared (`Arc<str>`): object references are cloned on
/// every snapshot binding and every collection copy during evaluation, and
/// a shared name keeps those clones allocation-free. Equality, ordering,
/// and hashing all compare the name by content, so two refs to the same
/// class built from different strings still compare equal.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjRef {
    /// Name of the resource definition / class.
    pub class: Arc<str>,
    /// Environment-assigned object identifier.
    pub id: u64,
}

impl ObjRef {
    /// Create an object reference.
    #[must_use]
    pub fn new(class: impl Into<Arc<str>>, id: u64) -> Self {
        ObjRef {
            class: class.into(),
            id,
        }
    }
}

impl fmt::Display for ObjRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.class, self.id)
    }
}

/// An OCL runtime value.
///
/// `Undefined` models OCL's `OclUndefined`/`invalid`: navigations over
/// missing objects yield it, and most operations propagate it, with the
/// standard exceptions for boolean connectives (e.g. `false and undefined`
/// is `false`).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `OclUndefined` — absent or erroneous value.
    Undefined,
    /// Boolean.
    Bool(bool),
    /// Integer.
    Int(i64),
    /// Real.
    Real(f64),
    /// String.
    Str(String),
    /// Object reference.
    Obj(ObjRef),
    /// Collection of values.
    Coll(CollectionKind, Vec<Value>),
}

impl Value {
    /// A `Set` collection value, deduplicating elements (first occurrence
    /// wins, preserving insertion order for determinism).
    #[must_use]
    pub fn set(elements: Vec<Value>) -> Value {
        let mut out: Vec<Value> = Vec::with_capacity(elements.len());
        for e in elements {
            if !out.contains(&e) {
                out.push(e);
            }
        }
        Value::Coll(CollectionKind::Set, out)
    }

    /// A `Sequence` collection value.
    #[must_use]
    pub fn sequence(elements: Vec<Value>) -> Value {
        Value::Coll(CollectionKind::Sequence, elements)
    }

    /// A `Bag` collection value.
    #[must_use]
    pub fn bag(elements: Vec<Value>) -> Value {
        Value::Coll(CollectionKind::Bag, elements)
    }

    /// True if the value is `Undefined`.
    #[must_use]
    pub fn is_undefined(&self) -> bool {
        matches!(self, Value::Undefined)
    }

    /// Boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Integer payload, if this is an integer.
    #[must_use]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Numeric payload widened to `f64` (ints and reals).
    #[must_use]
    pub fn as_real(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Real(v) => Some(*v),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Collection elements, if this is a collection.
    #[must_use]
    pub fn as_collection(&self) -> Option<&[Value]> {
        match self {
            Value::Coll(_, items) => Some(items),
            _ => None,
        }
    }

    /// OCL equality: `Undefined = x` is undefined-propagating at the
    /// evaluator level; this method implements the *defined* comparison used
    /// once both operands are known. Ints and reals compare numerically.
    #[must_use]
    pub fn ocl_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Real(b)) | (Value::Real(b), Value::Int(a)) => (*a as f64) == *b,
            (Value::Coll(ka, xs), Value::Coll(kb, ys)) => {
                if ka != kb {
                    return false;
                }
                match ka {
                    CollectionKind::Sequence | CollectionKind::OrderedSet => xs == ys,
                    CollectionKind::Set | CollectionKind::Bag => {
                        // order-insensitive multiset comparison
                        if xs.len() != ys.len() {
                            return false;
                        }
                        let mut remaining: Vec<&Value> = ys.iter().collect();
                        for x in xs {
                            match remaining.iter().position(|y| x.ocl_eq(y)) {
                                Some(i) => {
                                    remaining.remove(i);
                                }
                                None => return false,
                            }
                        }
                        true
                    }
                }
            }
            (a, b) => a == b,
        }
    }

    /// Partial order used by `<`, `<=`, `>`, `>=`. Numbers compare
    /// numerically, strings lexicographically; everything else is unordered.
    #[must_use]
    pub fn ocl_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (a, b) => {
                let (x, y) = (a.as_real()?, b.as_real()?);
                x.partial_cmp(&y)
            }
        }
    }

    /// A short type name for diagnostics (`Integer`, `String`, …).
    #[must_use]
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Undefined => "OclUndefined",
            Value::Bool(_) => "Boolean",
            Value::Int(_) => "Integer",
            Value::Real(_) => "Real",
            Value::Str(_) => "String",
            Value::Obj(_) => "Object",
            Value::Coll(CollectionKind::Set, _) => "Set",
            Value::Coll(CollectionKind::Bag, _) => "Bag",
            Value::Coll(CollectionKind::Sequence, _) => "Sequence",
            Value::Coll(CollectionKind::OrderedSet, _) => "OrderedSet",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Undefined => write!(f, "OclUndefined"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Real(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Obj(o) => write!(f, "{o}"),
            Value::Coll(kind, items) => {
                write!(f, "{}{{", kind.keyword())?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Real(v)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<ObjRef> for Value {
    fn from(o: ObjRef) -> Self {
        Value::Obj(o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_constructor_deduplicates() {
        let v = Value::set(vec![Value::Int(1), Value::Int(2), Value::Int(1)]);
        assert_eq!(v.as_collection().unwrap().len(), 2);
    }

    #[test]
    fn int_real_numeric_equality() {
        assert!(Value::Int(2).ocl_eq(&Value::Real(2.0)));
        assert!(!Value::Int(2).ocl_eq(&Value::Real(2.5)));
    }

    #[test]
    fn set_equality_is_order_insensitive() {
        let a = Value::set(vec![Value::Int(1), Value::Int(2)]);
        let b = Value::set(vec![Value::Int(2), Value::Int(1)]);
        assert!(a.ocl_eq(&b));
    }

    #[test]
    fn sequence_equality_is_order_sensitive() {
        let a = Value::sequence(vec![Value::Int(1), Value::Int(2)]);
        let b = Value::sequence(vec![Value::Int(2), Value::Int(1)]);
        assert!(!a.ocl_eq(&b));
    }

    #[test]
    fn bag_equality_counts_duplicates() {
        let a = Value::bag(vec![Value::Int(1), Value::Int(1)]);
        let b = Value::bag(vec![Value::Int(1)]);
        assert!(!a.ocl_eq(&b));
    }

    #[test]
    fn cmp_across_int_and_real() {
        assert_eq!(
            Value::Int(1).ocl_cmp(&Value::Real(1.5)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn cmp_strings() {
        assert_eq!(
            Value::Str("a".into()).ocl_cmp(&Value::Str("b".into())),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn cmp_incomparable_is_none() {
        assert_eq!(Value::Bool(true).ocl_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Str("in-use".into()).to_string(), "'in-use'");
        assert_eq!(
            Value::sequence(vec![Value::Int(1), Value::Int(2)]).to_string(),
            "Sequence{1, 2}"
        );
        assert_eq!(ObjRef::new("volume", 4).to_string(), "volume#4");
    }
}
