//! Compilation of OCL expressions to a flattened, interned program.
//!
//! The tree-walking interpreter in [`crate::eval`] is the semantic
//! reference, but it pays for generality on every request: `String`-keyed
//! variable and attribute lookups, a fresh `HashMap` key allocation per
//! navigation, re-evaluation of shared invariant subtrees, and a dynamic
//! `pre()` mode flag threaded through the walk. This module lowers an
//! [`Expr`] once, at contract-generation time, into a [`Program`]:
//!
//! * **Interning** — every identifier, attribute name and operation name
//!   becomes a `u32` [`Sym`] in a shared [`SymbolTable`]; the evaluator's
//!   locals stack and the [`EnvView`] snapshot lookups are integer-keyed.
//! * **Flattened arena** — nodes live in one `Vec` with `u32` child
//!   indices, in topological order (children before parents), and are
//!   hash-consed: structurally identical subtrees share one node. The
//!   `pre()` / `@pre` context is resolved during lowering into a boolean
//!   on each `Var`/`Nav` node, so node identity is context-free.
//! * **Constant folding** — lowering runs [`crate::simplify::simplify`]
//!   first, then deduplicates the remaining literals into a constant pool.
//! * **Invariant memoization** — hash-consing makes the source-state
//!   invariant shared by the clauses of one pre-condition disjunction a
//!   single node; [`ProgramBuilder::finish`] assigns a memo slot to every
//!   multi-use node whose free variables cannot be captured by a binder,
//!   so each distinct invariant is evaluated at most once per request.
//! * **Attribute-reference analysis** — lowering records exactly which
//!   `(root variable, attribute)` pairs a program reads, split by
//!   pre-state vs. current-state, the input for [`AttrScope`]d snapshot
//!   probing.
//!
//! Evaluation reuses the interpreter's operator cores
//! (`binary_values`, `collection_op`, `method_call`, `iterate_values`),
//! so both pipelines share one definition of the OCL semantics — the
//! differential property tests in the workspace root rely on this.

use crate::ast::{BinOp, CollectionKind, Expr, IterOp, UnOp};
use crate::eval::{
    arrow_items, binary_values, collection_op, iterate_values, method_call, unary_value,
    CoercionMode, EvalError, MapNavigator,
};
use crate::simplify::simplify;
use crate::value::{ObjRef, Value};
use std::collections::{HashMap, HashSet};
use std::ops::Deref;
use std::sync::Arc;

/// An interned identifier (variable, attribute, or operation name).
pub type Sym = u32;

/// Index of a node in a [`Program`] arena.
pub type NodeId = u32;

const MEMO_NONE: u32 = u32::MAX;

/// Bidirectional `String` ↔ [`Sym`] interner shared by every program
/// compiled from one contract set.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SymbolTable {
    names: Vec<String>,
    index: HashMap<String, Sym>,
}

impl SymbolTable {
    /// Create an empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name`, returning its stable id.
    pub fn intern(&mut self, name: &str) -> Sym {
        if let Some(&s) = self.index.get(name) {
            return s;
        }
        let s = Sym::try_from(self.names.len()).expect("symbol table overflow");
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), s);
        s
    }

    /// Look up an already-interned name without adding it.
    #[must_use]
    pub fn lookup(&self, name: &str) -> Option<Sym> {
        self.index.get(name).copied()
    }

    /// Resolve a symbol back to its name.
    #[must_use]
    pub fn name(&self, sym: Sym) -> &str {
        &self.names[sym as usize]
    }

    /// Number of interned names.
    #[must_use]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// A flattened expression node. Children are referenced by [`NodeId`];
/// argument lists are ranges into the program's side table. All fields are
/// `Copy` integers so nodes can be hash-consed cheaply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Node {
    /// Index into the constant pool.
    Const(u32),
    Var {
        name: Sym,
        pre: bool,
    },
    Nav {
        src: NodeId,
        prop: Sym,
        pre: bool,
    },
    Binary {
        op: BinOp,
        lhs: NodeId,
        rhs: NodeId,
    },
    Unary {
        op: UnOp,
        operand: NodeId,
    },
    If {
        cond: NodeId,
        then_branch: NodeId,
        else_branch: NodeId,
    },
    Let {
        name: Sym,
        value: NodeId,
        body: NodeId,
    },
    CollOp {
        src: NodeId,
        op: Sym,
        args_start: u32,
        args_len: u32,
    },
    Iterate {
        src: NodeId,
        op: IterOp,
        var: Sym,
        body: NodeId,
    },
    Fold {
        src: NodeId,
        var: Sym,
        acc: Sym,
        init: NodeId,
        body: NodeId,
    },
    Call {
        src: NodeId,
        op: Sym,
        args_start: u32,
        args_len: u32,
    },
    CollLit {
        kind: CollectionKind,
        start: u32,
        len: u32,
    },
}

/// A compiled, immutable OCL program: a hash-consed node arena plus the
/// compile-time analyses (memo slots, attribute references) derived from
/// it. Build one with [`ProgramBuilder`]; evaluate roots with
/// [`Program::eval`] / [`Program::eval_bool`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    nodes: Vec<Node>,
    consts: Vec<Value>,
    args: Vec<NodeId>,
    /// Per-node memo slot, `MEMO_NONE` when the node is not memoized.
    memo_slot: Vec<u32>,
    memo_slots: u32,
    attr_refs: Vec<(Sym, Sym, bool)>,
    root_vars: Vec<Sym>,
    exact_scope: bool,
}

impl Program {
    /// Number of arena nodes (compiled-program size for audit output).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of per-request memo slots assigned at compile time.
    #[must_use]
    pub fn memo_slot_count(&self) -> usize {
        self.memo_slots as usize
    }

    /// The `(root variable, attribute, reads-pre-state)` triples this
    /// program navigates, deduplicated and sorted.
    #[must_use]
    pub fn attr_refs(&self) -> &[(Sym, Sym, bool)] {
        &self.attr_refs
    }

    /// Free root variables referenced by the program, sorted by symbol.
    #[must_use]
    pub fn root_vars(&self) -> &[Sym] {
        &self.root_vars
    }

    /// Whether [`Program::attr_refs`] is a *complete* account of state
    /// reads. `let` bindings can alias objects past the analysis, in which
    /// case scoped snapshots must fall back to whole-root probing.
    #[must_use]
    pub fn exact_scope(&self) -> bool {
        self.exact_scope
    }

    /// Evaluate the node `root` against interned environments.
    ///
    /// `scratch` must have been prepared with [`EvalScratch::begin`] for
    /// this program; keeping it across several roots of the *same* program
    /// evaluated against the *same* environments shares memoized invariant
    /// results between them.
    ///
    /// # Errors
    ///
    /// Exactly the interpreter's [`EvalError`] conditions: unknown
    /// variables or operations, type mismatches, `pre()` without a
    /// pre-state environment.
    pub fn eval(
        &self,
        root: NodeId,
        syms: &SymbolTable,
        current: &EnvView<'_>,
        pre: Option<&EnvView<'_>>,
        scratch: &mut EvalScratch,
    ) -> Result<Value, EvalError> {
        Machine {
            prog: self,
            syms,
            current,
            pre,
            mode: CoercionMode::Lenient,
        }
        .eval(root, scratch)
        .map(Ev::into_owned)
    }

    /// Evaluate `root` and require a defined boolean, mirroring
    /// `EvalContext::eval_bool`.
    ///
    /// # Errors
    ///
    /// As [`Program::eval`], plus an error when the result is not a
    /// defined boolean.
    pub fn eval_bool(
        &self,
        root: NodeId,
        syms: &SymbolTable,
        current: &EnvView<'_>,
        pre: Option<&EnvView<'_>>,
        scratch: &mut EvalScratch,
    ) -> Result<bool, EvalError> {
        match self.eval(root, syms, current, pre, scratch)? {
            Value::Bool(b) => Ok(b),
            other => Err(EvalError::new(format!(
                "expected Boolean contract outcome, got {} ({other})",
                other.type_name()
            ))),
        }
    }
}

/// Lowers [`Expr`]s into one shared [`Program`] arena. Call
/// [`ProgramBuilder::add`] once per root expression, then
/// [`ProgramBuilder::finish`].
#[derive(Debug)]
pub struct ProgramBuilder<'a> {
    syms: &'a mut SymbolTable,
    nodes: Vec<Node>,
    consts: Vec<Value>,
    args: Vec<NodeId>,
    dedup: HashMap<Node, NodeId>,
    binders: HashSet<Sym>,
    has_let: bool,
    roots: Vec<NodeId>,
}

impl<'a> ProgramBuilder<'a> {
    /// Start a builder interning into `syms`.
    #[must_use]
    pub fn new(syms: &'a mut SymbolTable) -> Self {
        ProgramBuilder {
            syms,
            nodes: Vec::new(),
            consts: Vec::new(),
            args: Vec::new(),
            dedup: HashMap::new(),
            binders: HashSet::new(),
            has_let: false,
            roots: Vec::new(),
        }
    }

    /// Simplify and lower `expr`, returning the root node of the lowered
    /// subtree. Structurally identical subtrees across multiple `add`
    /// calls share nodes (and therefore memo slots).
    pub fn add(&mut self, expr: &Expr) -> NodeId {
        let id = self.lower(&simplify(expr), false);
        self.roots.push(id);
        id
    }

    fn push(&mut self, node: Node) -> NodeId {
        if let Some(&id) = self.dedup.get(&node) {
            return id;
        }
        let id = NodeId::try_from(self.nodes.len()).expect("program arena overflow");
        self.nodes.push(node);
        self.dedup.insert(node, id);
        id
    }

    fn konst(&mut self, v: Value) -> NodeId {
        let idx = match self.consts.iter().position(|c| *c == v) {
            Some(i) => i as u32,
            None => {
                self.consts.push(v);
                (self.consts.len() - 1) as u32
            }
        };
        self.push(Node::Const(idx))
    }

    fn lower_list(&mut self, exprs: &[Expr], pre: bool) -> (u32, u32) {
        let ids: Vec<NodeId> = exprs.iter().map(|e| self.lower(e, pre)).collect();
        let start = self.args.len() as u32;
        self.args.extend(ids);
        (start, exprs.len() as u32)
    }

    fn lower(&mut self, e: &Expr, pre: bool) -> NodeId {
        match e {
            Expr::Bool(b) => self.konst(Value::Bool(*b)),
            Expr::Int(v) => self.konst(Value::Int(*v)),
            Expr::Real(v) => self.konst(Value::Real(*v)),
            Expr::Str(s) => self.konst(Value::Str(s.clone())),
            Expr::Null => self.konst(Value::Undefined),
            Expr::Var(name) => {
                let name = self.syms.intern(name);
                self.push(Node::Var { name, pre })
            }
            Expr::Nav {
                source,
                property,
                at_pre,
            } => {
                let src = self.lower(source, pre);
                let prop = self.syms.intern(property);
                self.push(Node::Nav {
                    src,
                    prop,
                    pre: pre || *at_pre,
                })
            }
            // The pre-state context is resolved here, at compile time:
            // everything inside pre(...) lowers with the pre flag set.
            Expr::Pre(inner) => self.lower(inner, true),
            Expr::CollOp { source, op, args } => {
                let src = self.lower(source, pre);
                let (args_start, args_len) = self.lower_list(args, pre);
                let op = self.syms.intern(op);
                self.push(Node::CollOp {
                    src,
                    op,
                    args_start,
                    args_len,
                })
            }
            Expr::Iterate {
                source,
                op,
                var,
                body,
            } => {
                let src = self.lower(source, pre);
                let var = self.syms.intern(var);
                self.binders.insert(var);
                let body = self.lower(body, pre);
                self.push(Node::Iterate {
                    src,
                    op: *op,
                    var,
                    body,
                })
            }
            Expr::Binary { op, lhs, rhs } => {
                let lhs = self.lower(lhs, pre);
                let rhs = self.lower(rhs, pre);
                self.push(Node::Binary { op: *op, lhs, rhs })
            }
            Expr::Unary { op, operand } => {
                let operand = self.lower(operand, pre);
                self.push(Node::Unary { op: *op, operand })
            }
            Expr::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let cond = self.lower(cond, pre);
                let then_branch = self.lower(then_branch, pre);
                let else_branch = self.lower(else_branch, pre);
                self.push(Node::If {
                    cond,
                    then_branch,
                    else_branch,
                })
            }
            Expr::Let { name, value, body } => {
                self.has_let = true;
                let value = self.lower(value, pre);
                let name = self.syms.intern(name);
                self.binders.insert(name);
                let body = self.lower(body, pre);
                self.push(Node::Let { name, value, body })
            }
            Expr::CollectionLiteral { kind, elements } => {
                let (start, len) = self.lower_list(elements, pre);
                self.push(Node::CollLit {
                    kind: *kind,
                    start,
                    len,
                })
            }
            Expr::Fold {
                source,
                var,
                acc,
                init,
                body,
            } => {
                let src = self.lower(source, pre);
                let var = self.syms.intern(var);
                let acc = self.syms.intern(acc);
                self.binders.insert(var);
                self.binders.insert(acc);
                let init = self.lower(init, pre);
                let body = self.lower(body, pre);
                self.push(Node::Fold {
                    src,
                    var,
                    acc,
                    init,
                    body,
                })
            }
            Expr::Call { source, op, args } => {
                let src = self.lower(source, pre);
                let (args_start, args_len) = self.lower_list(args, pre);
                let op = self.syms.intern(op);
                self.push(Node::Call {
                    src,
                    op,
                    args_start,
                    args_len,
                })
            }
        }
    }

    /// Each direct child edge of `node`, plus its argument-list entries.
    fn children(node: &Node, args: &[NodeId], mut visit: impl FnMut(NodeId)) {
        match *node {
            Node::Const(_) | Node::Var { .. } => {}
            Node::Nav { src, .. } => visit(src),
            Node::Binary { lhs, rhs, .. } => {
                visit(lhs);
                visit(rhs);
            }
            Node::Unary { operand, .. } => visit(operand),
            Node::If {
                cond,
                then_branch,
                else_branch,
            } => {
                visit(cond);
                visit(then_branch);
                visit(else_branch);
            }
            Node::Let { value, body, .. } => {
                visit(value);
                visit(body);
            }
            Node::CollOp {
                src,
                args_start,
                args_len,
                ..
            }
            | Node::Call {
                src,
                args_start,
                args_len,
                ..
            } => {
                visit(src);
                for &a in &args[args_start as usize..(args_start + args_len) as usize] {
                    visit(a);
                }
            }
            Node::Iterate { src, body, .. } => {
                visit(src);
                visit(body);
            }
            Node::Fold {
                src, init, body, ..
            } => {
                visit(src);
                visit(init);
                visit(body);
            }
            Node::CollLit { start, len, .. } => {
                for &a in &args[start as usize..(start + len) as usize] {
                    visit(a);
                }
            }
        }
    }

    /// Run the compile-time analyses and freeze the arena.
    #[must_use]
    pub fn finish(self) -> Program {
        let n = self.nodes.len();

        // Use counts: every child edge plus every root reference. The
        // arena is topological (children precede parents), so bottom-up
        // passes are simple index loops.
        let mut refs = vec![0u32; n];
        for node in &self.nodes {
            Self::children(node, &self.args, |c| refs[c as usize] += 1);
        }
        for &r in &self.roots {
            refs[r as usize] += 1;
        }

        // Free local-candidate variables per node: a node may be memoized
        // only if no free variable of its subtree is ever used as a binder
        // name anywhere in the program (otherwise its value could depend
        // on the locals stack at the use site). Binder-bound occurrences
        // are subtracted structurally.
        let mut free: Vec<Vec<Sym>> = Vec::with_capacity(n);
        for node in &self.nodes {
            let mut f: Vec<Sym> = Vec::new();
            match *node {
                Node::Var { name, .. } => f.push(name),
                Node::Let { name, value, body } => {
                    f.extend(&free[value as usize]);
                    f.extend(free[body as usize].iter().filter(|s| **s != name));
                }
                Node::Iterate { src, var, body, .. } => {
                    f.extend(&free[src as usize]);
                    f.extend(free[body as usize].iter().filter(|s| **s != var));
                }
                Node::Fold {
                    src,
                    var,
                    acc,
                    init,
                    body,
                } => {
                    f.extend(&free[src as usize]);
                    f.extend(&free[init as usize]);
                    f.extend(
                        free[body as usize]
                            .iter()
                            .filter(|s| **s != var && **s != acc),
                    );
                }
                _ => Self::children(node, &self.args, |c| f.extend(&free[c as usize])),
            }
            f.sort_unstable();
            f.dedup();
            free.push(f);
        }

        // Memo slots: multi-use, closed (no capturable free variable),
        // non-trivial nodes get one per-request slot each.
        let mut memo_slot = vec![MEMO_NONE; n];
        let mut memo_slots = 0u32;
        for i in 0..n {
            let trivial = matches!(self.nodes[i], Node::Const(_) | Node::Var { .. });
            let closed = free[i].iter().all(|s| !self.binders.contains(s));
            if refs[i] >= 2 && closed && !trivial {
                memo_slot[i] = memo_slots;
                memo_slots += 1;
            }
        }

        // Attribute references: navigation on a (non-binder) root
        // variable. Chained navigations past the first hop resolve to
        // objects delivered by the same probe request that bound the
        // first hop, so root-level pairs are exactly the probe-gating
        // granularity.
        let mut attr_refs: Vec<(Sym, Sym, bool)> = Vec::new();
        let mut root_vars: Vec<Sym> = Vec::new();
        for node in &self.nodes {
            match *node {
                Node::Var { name, .. }
                    if !self.binders.contains(&name) && !root_vars.contains(&name) =>
                {
                    root_vars.push(name);
                }
                Node::Nav { src, prop, pre } => {
                    if let Node::Var { name, .. } = self.nodes[src as usize] {
                        if !self.binders.contains(&name) {
                            let r = (name, prop, pre);
                            if !attr_refs.contains(&r) {
                                attr_refs.push(r);
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        attr_refs.sort_unstable();
        root_vars.sort_unstable();

        Program {
            nodes: self.nodes,
            consts: self.consts,
            args: self.args,
            memo_slot,
            memo_slots,
            attr_refs,
            root_vars,
            exact_scope: !self.has_let,
        }
    }
}

/// A memoized result. Scalars are stored (and handed back) by value —
/// their clone is at worst one small allocation; collections are stored
/// behind an [`Arc`] so a hit is a refcount bump instead of a deep clone.
#[derive(Debug, Clone)]
enum MemoVal {
    Plain(Value),
    Shared(Arc<Value>),
}

/// Reusable per-evaluation state: the interned locals stack and the memo
/// slot table. Owned by each monitor log shard so steady-state contract
/// evaluation re-uses the same allocations request after request.
#[derive(Debug, Default)]
pub struct EvalScratch {
    locals: Vec<(Sym, Value)>,
    memo: Vec<Option<MemoVal>>,
}

impl EvalScratch {
    /// Create an empty scratch.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Reset for evaluating roots of `program` against one fixed pair of
    /// environments. Memoized results are only valid while the
    /// environments do not change; call `begin` again when they do.
    pub fn begin(&mut self, program: &Program) {
        self.locals.clear();
        self.memo.clear();
        self.memo.resize(program.memo_slots as usize, None);
    }
}

/// An integer-keyed, borrowed view of a [`MapNavigator`] snapshot.
/// Built once per request; lookups are linear scans over `(Sym, value)`
/// pairs, which beats string hashing at snapshot sizes (a handful of
/// variables, a few dozen attributes) and never allocates.
#[derive(Debug, Default)]
pub struct EnvView<'a> {
    vars: Vec<(Sym, &'a Value)>,
    attrs: Vec<(&'a ObjRef, Sym, &'a Value)>,
}

impl<'a> EnvView<'a> {
    /// Project `nav` through `syms`; bindings whose names were never
    /// interned cannot be referenced by any compiled program and are
    /// dropped.
    #[must_use]
    pub fn from_navigator(nav: &'a MapNavigator, syms: &SymbolTable) -> Self {
        let mut vars = Vec::new();
        for (name, v) in nav.variables() {
            if let Some(s) = syms.lookup(name) {
                vars.push((s, v));
            }
        }
        vars.sort_unstable_by_key(|(s, _)| *s);
        let mut attrs = Vec::new();
        for (obj, prop, v) in nav.attributes() {
            if let Some(p) = syms.lookup(prop) {
                attrs.push((obj, p, v));
            }
        }
        // Sorted by property symbol so lookups binary-search to the
        // equal-prop range and only compare object refs within it.
        attrs.sort_unstable_by_key(|(_, p, _)| *p);
        EnvView { vars, attrs }
    }

    fn variable(&self, s: Sym) -> Option<&'a Value> {
        self.vars
            .binary_search_by_key(&s, |(n, _)| *n)
            .ok()
            .map(|i| self.vars[i].1)
    }

    fn attribute(&self, obj: &ObjRef, prop: Sym) -> Option<&'a Value> {
        let start = self.attrs.partition_point(|(_, p, _)| *p < prop);
        self.attrs[start..]
            .iter()
            .take_while(|(_, p, _)| *p == prop)
            .find(|(o, _, _)| o.id == obj.id && o.class == obj.class)
            .map(|(_, _, v)| *v)
    }
}

/// Attribute-level snapshot scope: the `(root, attribute)` pairs a
/// contract phase may read, resolved to names. The probe layer consults
/// this to decide which snapshot requests to issue. The wildcard
/// attribute `"*"` marks a whole root as needed (the fallback when the
/// compile-time analysis was inexact).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AttrScope {
    pairs: Vec<(String, String)>,
    exact: bool,
    /// Per-root index precomputed at construction (i.e. at contract
    /// compile time): sorted by root name, each entry carrying the
    /// root's wildcard flag and its sorted attribute list. Scope queries
    /// on the probe hot path binary-search this instead of scanning the
    /// full pair list per attribute.
    roots: Vec<RootAttrs>,
}

/// One root's slice of an [`AttrScope`]: its sorted attributes and
/// whether the wildcard `"*"` marked the whole root as needed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct RootAttrs {
    root: String,
    wildcard: bool,
    attrs: Vec<String>,
}

impl AttrScope {
    /// Scope over explicit pairs; `exact` records whether the analysis
    /// proved the list complete.
    #[must_use]
    pub fn new(mut pairs: Vec<(String, String)>, exact: bool) -> Self {
        pairs.sort();
        pairs.dedup();
        let mut roots: Vec<RootAttrs> = Vec::new();
        for (root, attr) in &pairs {
            // `pairs` is sorted by root, so each root's entry is built
            // contiguously and `roots` stays sorted by root name.
            if roots.last().map(|e| e.root.as_str()) != Some(root.as_str()) {
                roots.push(RootAttrs {
                    root: root.clone(),
                    wildcard: false,
                    attrs: Vec::new(),
                });
            }
            let entry = roots.last_mut().expect("entry just pushed");
            if attr == "*" {
                entry.wildcard = true;
            } else {
                entry.attrs.push(attr.clone());
            }
        }
        AttrScope {
            pairs,
            exact,
            roots,
        }
    }

    fn root_entry(&self, root: &str) -> Option<&RootAttrs> {
        self.roots
            .binary_search_by(|e| e.root.as_str().cmp(root))
            .ok()
            .map(|i| &self.roots[i])
    }

    /// Whole-root wildcard scope (used when the analysis is inexact).
    #[must_use]
    pub fn wildcard(roots: &[String]) -> Self {
        AttrScope::new(
            roots.iter().map(|r| (r.clone(), "*".to_string())).collect(),
            false,
        )
    }

    /// Does the scope require `root.attr`?
    #[must_use]
    pub fn contains(&self, root: &str, attr: &str) -> bool {
        self.root_entry(root).is_some_and(|e| {
            e.wildcard || e.attrs.binary_search_by(|a| a.as_str().cmp(attr)).is_ok()
        })
    }

    /// Does the scope require any attribute of `root`?
    #[must_use]
    pub fn mentions_root(&self, root: &str) -> bool {
        self.root_entry(root).is_some()
    }

    /// Does the scope require any attribute of `root` besides
    /// `excluded`? (The probe layer asks this to split a root whose
    /// attributes come from different REST requests, e.g. the volume
    /// item GET vs. the snapshots listing.)
    #[must_use]
    pub fn contains_other_than(&self, root: &str, excluded: &str) -> bool {
        self.root_entry(root)
            .is_some_and(|e| e.wildcard || e.attrs.iter().any(|a| a != excluded))
    }

    /// The sorted `(root, attribute)` pairs.
    #[must_use]
    pub fn pairs(&self) -> &[(String, String)] {
        &self.pairs
    }

    /// Whether the pair list was proven complete at compile time.
    #[must_use]
    pub fn is_exact(&self) -> bool {
        self.exact
    }
}

/// A value flowing out of one [`Machine`] evaluation step: borrowed from
/// the environment or constant pool, owned by the computation, or shared
/// out of the memo table. `Shared` is what makes memoization pay off —
/// a hit hands out an [`Arc`] bump instead of a deep clone, which matters
/// because memoized subtrees are often collection-valued navigations
/// (`project.volumes`) whose deep clone costs more than re-reading a
/// scalar would.
enum Ev<'a> {
    Borrowed(&'a Value),
    Owned(Value),
    Shared(Arc<Value>),
}

impl Deref for Ev<'_> {
    type Target = Value;

    fn deref(&self) -> &Value {
        match self {
            Ev::Borrowed(v) => v,
            Ev::Owned(v) => v,
            Ev::Shared(v) => v,
        }
    }
}

impl Ev<'_> {
    fn into_owned(self) -> Value {
        match self {
            Ev::Borrowed(v) => v.clone(),
            Ev::Owned(v) => v,
            Ev::Shared(v) => Arc::try_unwrap(v).unwrap_or_else(|v| (*v).clone()),
        }
    }

    fn into_shared(self) -> Arc<Value> {
        match self {
            Ev::Borrowed(v) => Arc::new(v.clone()),
            Ev::Owned(v) => Arc::new(v),
            Ev::Shared(v) => v,
        }
    }
}

/// The compiled evaluator: mirrors `EvalContext::eval_in` node for node,
/// sharing the operator cores with the interpreter. Values borrowed from
/// the environment or constant pool flow through as [`Ev::Borrowed`], so
/// reads like `project.volumes->size()` copy nothing.
struct Machine<'a> {
    prog: &'a Program,
    syms: &'a SymbolTable,
    current: &'a EnvView<'a>,
    pre: Option<&'a EnvView<'a>>,
    mode: CoercionMode,
}

impl<'a> Machine<'a> {
    fn env(&self, pre: bool) -> Result<&'a EnvView<'a>, EvalError> {
        if pre {
            self.pre.ok_or_else(|| {
                EvalError::new("`@pre`/`pre()` used but no pre-state snapshot is available")
            })
        } else {
            Ok(self.current)
        }
    }

    fn eval(&self, id: NodeId, scratch: &mut EvalScratch) -> Result<Ev<'a>, EvalError> {
        let slot = self.prog.memo_slot[id as usize];
        if slot != MEMO_NONE {
            match &scratch.memo[slot as usize] {
                Some(MemoVal::Plain(v)) => return Ok(Ev::Owned(v.clone())),
                Some(MemoVal::Shared(v)) => return Ok(Ev::Shared(Arc::clone(v))),
                None => {}
            }
        }
        let out = self.eval_raw(id, scratch)?;
        if slot != MEMO_NONE {
            if matches!(&*out, Value::Coll(..)) {
                let shared = out.into_shared();
                scratch.memo[slot as usize] = Some(MemoVal::Shared(Arc::clone(&shared)));
                return Ok(Ev::Shared(shared));
            }
            scratch.memo[slot as usize] = Some(MemoVal::Plain((*out).clone()));
        }
        Ok(out)
    }

    fn eval_raw(&self, id: NodeId, scratch: &mut EvalScratch) -> Result<Ev<'a>, EvalError> {
        match self.prog.nodes[id as usize] {
            Node::Const(i) => Ok(Ev::Borrowed(&self.prog.consts[i as usize])),
            Node::Var { name, pre } => {
                if let Some((_, v)) = scratch.locals.iter().rev().find(|(n, _)| *n == name) {
                    return Ok(Ev::Owned(v.clone()));
                }
                self.env(pre)?
                    .variable(name)
                    .map(Ev::Borrowed)
                    .ok_or_else(|| {
                        EvalError::new(format!("unknown variable `{}`", self.syms.name(name)))
                    })
            }
            Node::Nav { src, prop, pre } => {
                // Navigation straight off a variable (the `v.status`
                // shape that dominates invariant bodies) reads the
                // binding in place instead of cloning it out of the
                // locals stack first.
                if let Node::Var { name, pre: vpre } = self.prog.nodes[src as usize] {
                    if let Some((_, v)) = scratch.locals.iter().rev().find(|(n, _)| *n == name) {
                        return self.navigate(v, prop, pre);
                    }
                    let v = self.env(vpre)?.variable(name).ok_or_else(|| {
                        EvalError::new(format!("unknown variable `{}`", self.syms.name(name)))
                    })?;
                    return self.navigate(v, prop, pre);
                }
                let src = self.eval(src, scratch)?;
                self.navigate(&src, prop, pre)
            }
            Node::Binary { op, lhs, rhs } => {
                let l = self.eval(lhs, scratch)?;
                match op {
                    BinOp::And if *l == Value::Bool(false) => {
                        return Ok(Ev::Owned(Value::Bool(false)))
                    }
                    BinOp::Or if *l == Value::Bool(true) => {
                        return Ok(Ev::Owned(Value::Bool(true)))
                    }
                    BinOp::Implies if *l == Value::Bool(false) => {
                        return Ok(Ev::Owned(Value::Bool(true)))
                    }
                    _ => {}
                }
                let r = self.eval(rhs, scratch)?;
                binary_values(self.mode, op, &l, &r).map(Ev::Owned)
            }
            Node::Unary { op, operand } => {
                let v = self.eval(operand, scratch)?;
                unary_value(op, &v).map(Ev::Owned)
            }
            Node::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let c = self.eval(cond, scratch)?;
                match &*c {
                    Value::Bool(true) => self.eval(then_branch, scratch),
                    Value::Bool(false) => self.eval(else_branch, scratch),
                    Value::Undefined => Ok(Ev::Owned(Value::Undefined)),
                    other => Err(EvalError::new(format!(
                        "`if` condition must be Boolean, got {}",
                        other.type_name()
                    ))),
                }
            }
            Node::Let { name, value, body } => {
                let v = self.eval(value, scratch)?.into_owned();
                scratch.locals.push((name, v));
                let out = self.eval(body, scratch);
                scratch.locals.pop();
                out
            }
            Node::CollLit { kind, start, len } => {
                let mut items = Vec::with_capacity(len as usize);
                for i in start..start + len {
                    let aid = self.prog.args[i as usize];
                    items.push(self.eval(aid, scratch)?.into_owned());
                }
                Ok(Ev::Owned(match kind {
                    CollectionKind::Set | CollectionKind::OrderedSet => match Value::set(items) {
                        Value::Coll(_, deduped) => Value::Coll(kind, deduped),
                        _ => unreachable!("Value::set returns a collection"),
                    },
                    _ => Value::Coll(kind, items),
                }))
            }
            Node::CollOp {
                src,
                op,
                args_start,
                args_len,
            } => {
                let srcv = self.eval(src, scratch)?;
                self.with_args(args_start, args_len, scratch, |argv| {
                    collection_op(&srcv, self.syms.name(op), argv)
                })
                .map(Ev::Owned)
            }
            Node::Call {
                src,
                op,
                args_start,
                args_len,
            } => {
                let srcv = self.eval(src, scratch)?;
                self.with_args(args_start, args_len, scratch, |argv| {
                    method_call(&srcv, self.syms.name(op), argv)
                })
                .map(Ev::Owned)
            }
            Node::Iterate { src, op, var, body } => {
                let srcv = self.eval(src, scratch)?;
                let items = arrow_items(&srcv);
                iterate_values(op, &items, |item| {
                    scratch.locals.push((var, item.clone()));
                    let out = self.eval(body, scratch).map(Ev::into_owned);
                    scratch.locals.pop();
                    out
                })
                .map(Ev::Owned)
            }
            Node::Fold {
                src,
                var,
                acc,
                init,
                body,
            } => {
                let srcv = self.eval(src, scratch)?;
                let items = arrow_items(&srcv);
                let mut acc_val = self.eval(init, scratch)?.into_owned();
                for item in items.iter() {
                    scratch.locals.push((var, item.clone()));
                    scratch.locals.push((acc, acc_val));
                    let out = self.eval(body, scratch).map(Ev::into_owned);
                    scratch.locals.pop();
                    scratch.locals.pop();
                    acc_val = out?;
                }
                Ok(Ev::Owned(acc_val))
            }
        }
    }

    /// Evaluate an argument range into a stack buffer (typical arity is
    /// 0–2, so no heap allocation on the hot path) and hand the slice to
    /// `f`.
    fn with_args<T>(
        &self,
        start: u32,
        len: u32,
        scratch: &mut EvalScratch,
        f: impl FnOnce(&[Value]) -> Result<T, EvalError>,
    ) -> Result<T, EvalError> {
        let n = len as usize;
        let ids = &self.prog.args[start as usize..start as usize + n];
        if n <= 4 {
            let mut buf: [Value; 4] = std::array::from_fn(|_| Value::Undefined);
            for (slot, &aid) in buf.iter_mut().zip(ids) {
                *slot = self.eval(aid, scratch)?.into_owned();
            }
            f(&buf[..n])
        } else {
            let mut argv = Vec::with_capacity(n);
            for &aid in ids {
                argv.push(self.eval(aid, scratch)?.into_owned());
            }
            f(&argv)
        }
    }

    fn navigate(&self, src: &Value, prop: Sym, pre: bool) -> Result<Ev<'a>, EvalError> {
        match src {
            Value::Undefined => Ok(Ev::Owned(Value::Undefined)),
            Value::Obj(obj) => Ok(self
                .env(pre)?
                .attribute(obj, prop)
                .map(Ev::Borrowed)
                .unwrap_or(Ev::Owned(Value::Undefined))),
            // Implicit collect, exactly as the interpreter: navigate each
            // element, flatten one level, drop undefineds, yield a Bag.
            Value::Coll(_, items) => {
                let mut out = Vec::new();
                for item in items {
                    match self.navigate(item, prop, pre)? {
                        Ev::Owned(Value::Coll(_, inner)) => out.extend(inner),
                        Ev::Owned(Value::Undefined) => {}
                        Ev::Owned(v) => out.push(v),
                        v => match &*v {
                            Value::Coll(_, inner) => out.extend(inner.iter().cloned()),
                            Value::Undefined => {}
                            single => out.push(single.clone()),
                        },
                    }
                }
                Ok(Ev::Owned(Value::bag(out)))
            }
            other => Err(EvalError::new(format!(
                "cannot navigate `.{}` on {}",
                self.syms.name(prop),
                other.type_name()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{EvalContext, Navigator};
    use crate::parser::parse;

    fn cinder_env() -> MapNavigator {
        let project = ObjRef::new("project", 4);
        let volume = ObjRef::new("volume", 7);
        let quota = ObjRef::new("quota_sets", 1);
        let user = ObjRef::new("user", 2);
        let mut nav = MapNavigator::new();
        nav.set_variable("project", project.clone())
            .set_variable("volume", volume.clone())
            .set_variable("quota_sets", quota.clone())
            .set_variable("user", user.clone());
        nav.set_attribute(project.clone(), "id", Value::set(vec![Value::Int(4)]))
            .set_attribute(
                project,
                "volumes",
                Value::set(vec![Value::Obj(volume.clone())]),
            )
            .set_attribute(volume.clone(), "status", "available")
            .set_attribute(volume, "size", 100i64)
            .set_attribute(quota, "volume", 10i64)
            .set_attribute(user, "groups", "admin");
        nav
    }

    /// Compile `src` standalone and evaluate against `nav` (and optional
    /// pre-state), returning both the compiled and interpreted outcomes.
    fn both(
        src: &str,
        nav: &MapNavigator,
        pre_nav: Option<&MapNavigator>,
    ) -> (Result<Value, EvalError>, Result<Value, EvalError>) {
        let e = parse(src).unwrap();
        let mut syms = SymbolTable::new();
        let mut b = ProgramBuilder::new(&mut syms);
        let root = b.add(&e);
        let prog = b.finish();
        let env = EnvView::from_navigator(nav, &syms);
        let pre_env = pre_nav.map(|p| EnvView::from_navigator(p, &syms));
        let mut scratch = EvalScratch::new();
        scratch.begin(&prog);
        let compiled = prog.eval(root, &syms, &env, pre_env.as_ref(), &mut scratch);
        let interp = match pre_nav {
            Some(p) => EvalContext::with_pre_state(nav, p).eval(&e),
            None => EvalContext::new(nav).eval(&e),
        };
        (compiled, interp)
    }

    fn assert_matches_interpreter(src: &str, nav: &MapNavigator) {
        let (compiled, interp) = both(src, nav, None);
        match (&compiled, &interp) {
            (Ok(c), Ok(i)) => assert_eq!(c, i, "case: {src}"),
            (Err(_), Err(_)) => {}
            _ => panic!("divergence on {src}: compiled={compiled:?} interp={interp:?}"),
        }
    }

    #[test]
    fn compiled_matches_interpreter_on_battery() {
        let nav = cinder_env();
        for src in [
            "project.id->size()=1 and project.volumes->size()>=1",
            "volume.status <> 'in-use' and user.groups = 'admin'",
            "project.volumes < quota_sets.volume",
            "project.volumes->exists(v | v.status = 'available')",
            "project.volumes->forAll(v | v.size > 0)",
            "project.volumes->select(v | v.status = 'available')->size()",
            "project.volumes->collect(v | v.size)->sum()",
            "project.volumes.size->sum()",
            "user.groups->includes('admin')",
            "Set(1,2)->union(Set(2,3))->size()",
            "Sequence(3,1,2)->sortedBy(x | x)->first()",
            "Sequence(1,2,3,4)->iterate(v; acc = 0 | acc + v)",
            "let n = Set(1,2,3)->size() in n * 10",
            "if 1 < 2 then 'yes' else 'no' endif",
            "'hello'.substring(2, 4)",
            "project.owner.name",
            "p.missing = null",
            "nosuch = 1",
            "Set(1)->frobnicate(2)",
            "'a'.frobnicate()",
            "1 / 0",
            "6 / 4",
            "(0 - 3).abs()",
            "not (volume.status = 'in-use')",
            "volume.status = 'x' xor user.groups = 'admin'",
        ] {
            assert_matches_interpreter(src, &nav);
        }
    }

    #[test]
    fn compiled_pre_state_matches_interpreter() {
        let current = cinder_env();
        let mut pre = cinder_env();
        let project = ObjRef::new("project", 4);
        pre.set_attribute(
            project,
            "volumes",
            Value::set(vec![
                Value::Obj(ObjRef::new("volume", 7)),
                Value::Obj(ObjRef::new("volume", 8)),
            ]),
        );
        for src in [
            "project.volumes->size() < pre(project.volumes->size())",
            "volume.status@pre = 'available' and volume.status = 'available'",
            "pre(project.volumes)->size() = 2",
        ] {
            let (compiled, interp) = both(src, &current, Some(&pre));
            assert_eq!(compiled.unwrap(), interp.unwrap(), "case: {src}");
        }
    }

    #[test]
    fn shared_invariant_gets_one_memo_slot() {
        // Two disjuncts of one pre-condition share the invariant subtree;
        // hash-consing plus memoization evaluates it once per request.
        let inv = "project.id->size()=1 and project.volumes->size()>=1";
        let c1 = parse(&format!("({inv}) and user.groups = 'admin'")).unwrap();
        let c2 = parse(&format!("({inv}) and user.groups = 'member'")).unwrap();
        let mut syms = SymbolTable::new();
        let mut b = ProgramBuilder::new(&mut syms);
        let r1 = b.add(&c1);
        let r2 = b.add(&c2);
        let prog = b.finish();
        assert!(
            prog.memo_slot_count() >= 1,
            "shared invariant should be memoized, got {} slots",
            prog.memo_slot_count()
        );
        // And both roots still evaluate correctly with a shared scratch.
        let nav = cinder_env();
        let env = EnvView::from_navigator(&nav, &syms);
        let mut scratch = EvalScratch::new();
        scratch.begin(&prog);
        assert!(prog.eval_bool(r1, &syms, &env, None, &mut scratch).unwrap());
        assert!(!prog.eval_bool(r2, &syms, &env, None, &mut scratch).unwrap());
    }

    #[test]
    fn iterate_bodies_are_not_memoized_but_closed_iterates_are() {
        // The body `v.status = 'available'` depends on the binder `v`;
        // the whole exists-iterate is closed over `project` and may be
        // memoized when shared.
        let e = parse(
            "project.volumes->exists(v | v.status = 'available') and \
             project.volumes->exists(v | v.status = 'available')",
        )
        .unwrap();
        let mut syms = SymbolTable::new();
        let mut b = ProgramBuilder::new(&mut syms);
        let root = b.add(&e);
        let prog = b.finish();
        // simplify() may collapse the duplicated conjunct; if it did not,
        // the shared iterate holds a memo slot. Either way evaluation
        // agrees with the interpreter.
        let nav = cinder_env();
        let env = EnvView::from_navigator(&nav, &syms);
        let mut scratch = EvalScratch::new();
        scratch.begin(&prog);
        assert_eq!(
            prog.eval(root, &syms, &env, None, &mut scratch).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn constant_folding_shrinks_the_program() {
        let e = parse("1 + 1 = 2 and true").unwrap();
        let mut syms = SymbolTable::new();
        let mut b = ProgramBuilder::new(&mut syms);
        b.add(&e);
        let prog = b.finish();
        assert_eq!(prog.node_count(), 1, "folds to a single constant node");
    }

    #[test]
    fn attr_refs_split_pre_from_current() {
        let e = parse("pre(volume.size) = volume.size and user.groups = 'admin'").unwrap();
        let mut syms = SymbolTable::new();
        let mut b = ProgramBuilder::new(&mut syms);
        b.add(&e);
        let prog = b.finish();
        let resolved: Vec<(String, String, bool)> = prog
            .attr_refs()
            .iter()
            .map(|&(r, a, p)| (syms.name(r).to_string(), syms.name(a).to_string(), p))
            .collect();
        assert!(resolved.contains(&("volume".into(), "size".into(), true)));
        assert!(resolved.contains(&("volume".into(), "size".into(), false)));
        assert!(resolved.contains(&("user".into(), "groups".into(), false)));
        assert!(prog.exact_scope());
    }

    #[test]
    fn let_marks_scope_inexact() {
        let e = parse("let p = project in p.volumes->size() > 0").unwrap();
        let mut syms = SymbolTable::new();
        let mut b = ProgramBuilder::new(&mut syms);
        b.add(&e);
        let prog = b.finish();
        assert!(!prog.exact_scope());
    }

    #[test]
    fn binder_attrs_attribute_to_collection_root() {
        // v.status is a read on elements of project.volumes; the probe
        // request that binds project.volumes also binds those element
        // attributes, so the only recorded pair is (project, volumes).
        let e = parse("project.volumes->exists(v | v.status = 'error')").unwrap();
        let mut syms = SymbolTable::new();
        let mut b = ProgramBuilder::new(&mut syms);
        b.add(&e);
        let prog = b.finish();
        let resolved: Vec<(String, String)> = prog
            .attr_refs()
            .iter()
            .map(|&(r, a, _)| (syms.name(r).to_string(), syms.name(a).to_string()))
            .collect();
        assert_eq!(resolved, vec![("project".into(), "volumes".into())]);
    }

    #[test]
    fn attr_scope_wildcard_and_contains() {
        let scope = AttrScope::new(
            vec![
                ("project".into(), "volumes".into()),
                ("user".into(), "groups".into()),
            ],
            true,
        );
        assert!(scope.contains("project", "volumes"));
        assert!(!scope.contains("project", "id"));
        assert!(scope.mentions_root("user"));
        assert!(!scope.mentions_root("quota_sets"));
        let wild = AttrScope::wildcard(&["volume".to_string()]);
        assert!(wild.contains("volume", "anything"));
        assert!(!wild.is_exact());
    }

    #[test]
    fn env_view_drops_unreferenced_bindings() {
        let nav = cinder_env();
        let mut syms = SymbolTable::new();
        syms.intern("project");
        syms.intern("volumes");
        let env = EnvView::from_navigator(&nav, &syms);
        assert_eq!(env.vars.len(), 1);
        assert_eq!(env.attrs.len(), 1);
    }

    #[test]
    fn unknown_variable_error_names_the_variable() {
        let nav = MapNavigator::new();
        let (compiled, interp) = both("nosuch = 1", &nav, None);
        assert_eq!(compiled.unwrap_err().message, interp.unwrap_err().message);
    }

    #[test]
    fn scratch_reuse_across_begin_is_clean() {
        let nav = cinder_env();
        let e = parse("project.volumes->size()").unwrap();
        let mut syms = SymbolTable::new();
        let mut b = ProgramBuilder::new(&mut syms);
        let root = b.add(&e);
        let prog = b.finish();
        let env = EnvView::from_navigator(&nav, &syms);
        let mut scratch = EvalScratch::new();
        for _ in 0..3 {
            scratch.begin(&prog);
            assert_eq!(
                prog.eval(root, &syms, &env, None, &mut scratch).unwrap(),
                Value::Int(1)
            );
        }
    }

    #[test]
    fn navigator_trait_is_untouched_oracle() {
        // The interpreter still answers through the dynamic Navigator —
        // the reference oracle for differential tests.
        let nav = cinder_env();
        assert_eq!(
            nav.variable("volume"),
            Some(Value::Obj(ObjRef::new("volume", 7)))
        );
    }
}
