//! Boolean/constant simplification of OCL expressions.
//!
//! Generated contracts accumulate trivial structure — `true and g` when a
//! state has no invariant, `false or d` when a clause can never fire,
//! constant comparisons from synthetic models. The simplifier normalises
//! these without changing semantics, which keeps the generated Listing 1
//! output and the Django skeleton comments readable.
//!
//! Simplification is *conservative*: it only rewrites where OCL's
//! three-valued semantics guarantees equivalence. In Kleene logic
//! `false and x ≡ false` and `true or x ≡ true` hold even for undefined
//! `x`, and `true and x ≡ x` / `false or x ≡ x` are exact; but
//! `x and x ≡ x` style idempotence is *not* applied because evaluating
//! `x` can fail (unknown variable) and duplicates keep error behaviour
//! identical.

use crate::ast::{BinOp, Expr, UnOp};

/// Simplify an expression; returns a semantically equivalent expression.
///
/// # Examples
///
/// ```
/// use cm_ocl::{parse, simplify, to_string};
/// let e = parse("(true and user.groups = 'admin') or false")?;
/// assert_eq!(to_string(&simplify(&e)), "user.groups = 'admin'");
/// # Ok::<(), cm_ocl::ParseError>(())
/// ```
#[must_use]
pub fn simplify(expr: &Expr) -> Expr {
    match expr {
        Expr::Binary { op, lhs, rhs } => {
            let l = simplify(lhs);
            let r = simplify(rhs);
            simplify_binary(*op, l, r)
        }
        Expr::Unary { op, operand } => {
            let inner = simplify(operand);
            match (op, &inner) {
                (UnOp::Not, Expr::Bool(b)) => Expr::Bool(!b),
                (
                    UnOp::Not,
                    Expr::Unary {
                        op: UnOp::Not,
                        operand,
                    },
                ) => (**operand).clone(),
                (UnOp::Neg, Expr::Int(v)) => Expr::Int(-v),
                (UnOp::Neg, Expr::Real(v)) => Expr::Real(-v),
                _ => Expr::Unary {
                    op: *op,
                    operand: Box::new(inner),
                },
            }
        }
        Expr::If {
            cond,
            then_branch,
            else_branch,
        } => {
            let c = simplify(cond);
            let t = simplify(then_branch);
            let e = simplify(else_branch);
            match c {
                Expr::Bool(true) => t,
                Expr::Bool(false) => e,
                c => Expr::If {
                    cond: Box::new(c),
                    then_branch: Box::new(t),
                    else_branch: Box::new(e),
                },
            }
        }
        Expr::Let { name, value, body } => Expr::Let {
            name: name.clone(),
            value: Box::new(simplify(value)),
            body: Box::new(simplify(body)),
        },
        Expr::Nav {
            source,
            property,
            at_pre,
        } => Expr::Nav {
            source: Box::new(simplify(source)),
            property: property.clone(),
            at_pre: *at_pre,
        },
        Expr::CollOp { source, op, args } => Expr::CollOp {
            source: Box::new(simplify(source)),
            op: op.clone(),
            args: args.iter().map(simplify).collect(),
        },
        Expr::Iterate {
            source,
            op,
            var,
            body,
        } => Expr::Iterate {
            source: Box::new(simplify(source)),
            op: *op,
            var: var.clone(),
            body: Box::new(simplify(body)),
        },
        Expr::Pre(inner) => {
            let s = simplify(inner);
            // pre() of a constant is the constant.
            match s {
                Expr::Bool(_) | Expr::Int(_) | Expr::Real(_) | Expr::Str(_) | Expr::Null => s,
                s => Expr::Pre(Box::new(s)),
            }
        }
        Expr::CollectionLiteral { kind, elements } => Expr::CollectionLiteral {
            kind: *kind,
            elements: elements.iter().map(simplify).collect(),
        },
        Expr::Fold {
            source,
            var,
            acc,
            init,
            body,
        } => Expr::Fold {
            source: Box::new(simplify(source)),
            var: var.clone(),
            acc: acc.clone(),
            init: Box::new(simplify(init)),
            body: Box::new(simplify(body)),
        },
        Expr::Call { source, op, args } => Expr::Call {
            source: Box::new(simplify(source)),
            op: op.clone(),
            args: args.iter().map(simplify).collect(),
        },
        leaf => leaf.clone(),
    }
}

fn simplify_binary(op: BinOp, l: Expr, r: Expr) -> Expr {
    use Expr::Bool;
    match op {
        BinOp::And => match (&l, &r) {
            // Kleene-safe even for undefined operands.
            (Bool(false), _) | (_, Bool(false)) => Bool(false),
            (Bool(true), _) => r,
            (_, Bool(true)) => l,
            _ => Expr::Binary {
                op,
                lhs: Box::new(l),
                rhs: Box::new(r),
            },
        },
        BinOp::Or => match (&l, &r) {
            (Bool(true), _) | (_, Bool(true)) => Bool(true),
            (Bool(false), _) => r,
            (_, Bool(false)) => l,
            _ => Expr::Binary {
                op,
                lhs: Box::new(l),
                rhs: Box::new(r),
            },
        },
        BinOp::Implies => match (&l, &r) {
            (Bool(false), _) => Bool(true),
            (Bool(true), _) => r,
            (_, Bool(true)) => Bool(true),
            _ => Expr::Binary {
                op,
                lhs: Box::new(l),
                rhs: Box::new(r),
            },
        },
        BinOp::Xor => match (&l, &r) {
            (Bool(a), Bool(b)) => Bool(a != b),
            _ => Expr::Binary {
                op,
                lhs: Box::new(l),
                rhs: Box::new(r),
            },
        },
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            if let Some(folded) = fold_comparison(op, &l, &r) {
                return folded;
            }
            Expr::Binary {
                op,
                lhs: Box::new(l),
                rhs: Box::new(r),
            }
        }
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
            if let (Expr::Int(a), Expr::Int(b)) = (&l, &r) {
                match op {
                    BinOp::Add => return Expr::Int(a + b),
                    BinOp::Sub => return Expr::Int(a - b),
                    BinOp::Mul => return Expr::Int(a * b),
                    // Division is real-valued and may be undefined; leave it.
                    BinOp::Div => {}
                    _ => unreachable!(),
                }
            }
            Expr::Binary {
                op,
                lhs: Box::new(l),
                rhs: Box::new(r),
            }
        }
    }
}

fn fold_comparison(op: BinOp, l: &Expr, r: &Expr) -> Option<Expr> {
    let ord = match (l, r) {
        (Expr::Int(a), Expr::Int(b)) => a.partial_cmp(b),
        (Expr::Str(a), Expr::Str(b)) => a.partial_cmp(b),
        (Expr::Bool(a), Expr::Bool(b)) if matches!(op, BinOp::Eq | BinOp::Ne) => {
            return Some(Expr::Bool(if op == BinOp::Eq { a == b } else { a != b }));
        }
        _ => None,
    }?;
    use std::cmp::Ordering;
    Some(Expr::Bool(match op {
        BinOp::Eq => ord == Ordering::Equal,
        BinOp::Ne => ord != Ordering::Equal,
        BinOp::Lt => ord == Ordering::Less,
        BinOp::Le => ord != Ordering::Greater,
        BinOp::Gt => ord == Ordering::Greater,
        BinOp::Ge => ord != Ordering::Less,
        _ => return None,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{EvalContext, MapNavigator};
    use crate::parser::parse;
    use crate::print::to_string;

    fn simp(src: &str) -> String {
        to_string(&simplify(&parse(src).unwrap()))
    }

    #[test]
    fn boolean_identities() {
        assert_eq!(simp("true and x"), "x");
        assert_eq!(simp("x and true"), "x");
        assert_eq!(simp("false and x"), "false");
        assert_eq!(simp("x and false"), "false");
        assert_eq!(simp("true or x"), "true");
        assert_eq!(simp("x or false"), "x");
        assert_eq!(simp("false or x"), "x");
    }

    #[test]
    fn implication_identities() {
        assert_eq!(simp("false implies x"), "true");
        assert_eq!(simp("true implies x"), "x");
        assert_eq!(simp("x implies true"), "true");
        // x implies false is NOT simplified to `not x`: undefined x maps
        // to undefined in both, but we keep the conservative form anyway.
        assert_eq!(simp("x implies false"), "x implies false");
    }

    #[test]
    fn negation_identities() {
        assert_eq!(simp("not true"), "false");
        assert_eq!(simp("not not x"), "x");
        assert_eq!(simp("not (1 = 2)"), "true");
    }

    #[test]
    fn constant_folding() {
        assert_eq!(simp("1 + 2 * 3"), "7");
        assert_eq!(simp("1 < 2"), "true");
        assert_eq!(simp("'a' = 'b'"), "false");
        assert_eq!(simp("'in-use' <> 'in-use'"), "false");
        // division stays (may be real/undefined)
        assert_eq!(simp("4 / 2"), "4 / 2");
    }

    #[test]
    fn if_folding() {
        assert_eq!(simp("if 1 < 2 then a else b endif"), "a");
        assert_eq!(simp("if 2 < 1 then a else b endif"), "b");
    }

    #[test]
    fn simplifies_inside_structures() {
        assert_eq!(
            simp("xs->select(v | true and v.ok)->size()"),
            "xs->select(v | v.ok)->size()"
        );
        assert_eq!(simp("pre(true and x)"), "pre(x)");
        assert_eq!(simp("pre(3)"), "3");
    }

    #[test]
    fn generated_contract_shape_cleans_up() {
        // A clause from a state without invariant: `true and guard`.
        assert_eq!(
            simp("(true and user.groups = 'admin') or false"),
            "user.groups = 'admin'"
        );
    }

    #[test]
    fn leaves_undefined_sensitive_forms_alone() {
        // `x and x` is kept (x may error / be undefined).
        assert_eq!(simp("x and x"), "x and x");
        assert_eq!(simp("x or not x"), "x or not x");
    }

    #[test]
    fn semantics_preserved_on_samples() {
        // Evaluate original vs simplified on a small environment.
        let mut nav = MapNavigator::new();
        nav.set_variable("x", true)
            .set_variable("y", false)
            .set_variable("n", 5i64);
        for src in [
            "true and x",
            "x or false",
            "not not y",
            "if 1 < 2 then x else y endif",
            "(true and x) or (false and y)",
            "n + 1 > 2 + 3",
            "x implies (y or true)",
        ] {
            let original = parse(src).unwrap();
            let simplified = simplify(&original);
            let a = EvalContext::new(&nav).eval(&original).unwrap();
            let b = EvalContext::new(&nav).eval(&simplified).unwrap();
            assert_eq!(a, b, "simplification changed semantics of `{src}`");
        }
    }
}
