//! # cm-ocl — an OCL subset for contract-based cloud monitoring
//!
//! This crate implements the Object Constraint Language subset used by the
//! DSN 2018 paper *"Generating Cloud Monitors from Models to Secure
//! Clouds"* (Rauf & Troubitsyna): the language in which state invariants,
//! transition guards and generated method contracts are written.
//!
//! It provides:
//!
//! * a [`lexer`](token) and [`parser`](parse) for OCL expressions,
//!   including the paper's `pre(...)` old-state function and the `=>`
//!   implication spelling of Listing 1;
//! * a typed [`AST`](Expr) with contract-synthesis helpers
//!   ([`Expr::any_of`], [`Expr::all_of`], [`Expr::implies`]);
//! * an [`evaluator`](EvalContext) over a pluggable object environment
//!   ([`Navigator`]) with pre-state snapshots ([`MapNavigator`]), Kleene
//!   three-valued boolean semantics and the paper-compatible lenient
//!   collection/number coercion;
//! * a gradual [`type checker`](check) that flags hard type errors and
//!   paper-compat warnings;
//! * a [`pretty-printer`](to_string) whose output round-trips, plus a
//!   Listing 1 "paper style".
//!
//! ## Example
//!
//! ```
//! use cm_ocl::{parse, EvalContext, MapNavigator, ObjRef, Value};
//!
//! // The Figure 3 invariant of state `project_with_no_volume`:
//! let inv = parse("project.id->size()=1 and project.volumes->size()=0")?;
//!
//! let mut env = MapNavigator::new();
//! let project = ObjRef::new("project", 4);
//! env.set_variable("project", project.clone());
//! env.set_attribute(project.clone(), "id", Value::set(vec![Value::Int(4)]));
//! env.set_attribute(project, "volumes", Value::set(vec![]));
//!
//! assert_eq!(EvalContext::new(&env).eval_bool(&inv)?, true);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ast;
pub mod compile;
pub mod eval;
pub mod parser;
pub mod print;
pub mod simplify;
pub mod token;
pub mod types;
pub mod value;

pub use ast::{BinOp, CollectionKind, Expr, IterOp, UnOp};
pub use compile::{
    AttrScope, EnvView, EvalScratch, NodeId, Program, ProgramBuilder, Sym, SymbolTable,
};
pub use eval::{CoercionMode, EvalContext, EvalError, MapNavigator, Navigator};
pub use parser::{parse, ParseError};
pub use print::{render, to_string, PrintStyle};
pub use simplify::simplify;
pub use token::{lex, LexError, Token, TokenKind};
pub use types::{check, MapTypeEnv, PermissiveEnv, Type, TypeEnv, TypeIssue, TypeReport};
pub use value::{ObjRef, Value};
