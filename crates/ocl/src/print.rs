//! Pretty-printing of OCL expressions back to surface syntax.
//!
//! The printer produces text that re-parses to an equal AST (tested by a
//! round-trip property test), and a *paper style* variant that prints
//! implication as `=>` and the pre-state function as `pre(...)`, matching
//! Listing 1 of the paper.

use crate::ast::{BinOp, Expr, UnOp};
use std::fmt::Write as _;

/// Rendering style for the printer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PrintStyle {
    /// Canonical OCL: `implies`, `@pre` markers kept as parsed.
    #[default]
    Canonical,
    /// Paper's Listing 1 style: implication printed as `=>`.
    Paper,
}

/// Render `expr` in the given style.
#[must_use]
pub fn render(expr: &Expr, style: PrintStyle) -> String {
    let mut out = String::new();
    write_expr(&mut out, expr, 0, style);
    out
}

/// Render `expr` in canonical style.
///
/// # Examples
///
/// ```
/// use cm_ocl::{parse, to_string};
/// let e = parse("a->size() = 1 and b > 2")?;
/// assert_eq!(to_string(&e), "a->size() = 1 and b > 2");
/// # Ok::<(), cm_ocl::ParseError>(())
/// ```
#[must_use]
pub fn to_string(expr: &Expr) -> String {
    render(expr, PrintStyle::Canonical)
}

fn write_expr(out: &mut String, expr: &Expr, parent_prec: u8, style: PrintStyle) {
    match expr {
        Expr::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Expr::Int(v) => {
            let _ = write!(out, "{v}");
        }
        Expr::Real(v) => {
            // Always keep a decimal point so the literal re-lexes as Real.
            if v.fract() == 0.0 && v.is_finite() {
                let _ = write!(out, "{v:.1}");
            } else {
                let _ = write!(out, "{v}");
            }
        }
        Expr::Str(s) => {
            let _ = write!(out, "'{}'", s.replace('\'', "''"));
        }
        Expr::Null => out.push_str("null"),
        Expr::Var(name) => out.push_str(name),
        Expr::Nav {
            source,
            property,
            at_pre,
        } => {
            write_expr(out, source, 10, style);
            let _ = write!(out, ".{property}");
            if *at_pre {
                out.push_str("@pre");
            }
        }
        Expr::CollOp { source, op, args } => {
            write_expr(out, source, 10, style);
            let _ = write!(out, "->{op}(");
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, a, 0, style);
            }
            out.push(')');
        }
        Expr::Iterate {
            source,
            op,
            var,
            body,
        } => {
            write_expr(out, source, 10, style);
            let _ = write!(out, "->{}({var} | ", op.name());
            write_expr(out, body, 0, style);
            out.push(')');
        }
        Expr::Binary { op, lhs, rhs } => {
            let prec = op.precedence();
            let needs_parens = prec < parent_prec;
            if needs_parens {
                out.push('(');
            }
            write_expr(out, lhs, prec, style);
            match (op, style) {
                (BinOp::Implies, PrintStyle::Paper) => out.push_str(" => "),
                (op, _) => {
                    let _ = write!(out, " {} ", op.symbol());
                }
            }
            // +1 on the right side keeps left-associativity unambiguous;
            // implication is right-associative so it reuses its own level.
            let rhs_prec = if *op == BinOp::Implies {
                prec
            } else {
                prec + 1
            };
            write_expr(out, rhs, rhs_prec, style);
            if needs_parens {
                out.push(')');
            }
        }
        Expr::Unary { op, operand } => {
            // Unary binds tighter than any binary operator but looser than
            // postfix (`.`/`->`); parenthesise in postfix positions so
            // `(not x)->size()` does not print as `not x->size()`.
            let needs_parens = parent_prec > 8;
            if needs_parens {
                out.push('(');
            }
            match op {
                UnOp::Not => out.push_str("not "),
                UnOp::Neg => out.push('-'),
            }
            write_expr(out, operand, 9, style);
            if needs_parens {
                out.push(')');
            }
        }
        Expr::If {
            cond,
            then_branch,
            else_branch,
        } => {
            out.push_str("if ");
            write_expr(out, cond, 0, style);
            out.push_str(" then ");
            write_expr(out, then_branch, 0, style);
            out.push_str(" else ");
            write_expr(out, else_branch, 0, style);
            out.push_str(" endif");
        }
        Expr::Let { name, value, body } => {
            // `let … in body` extends as far right as possible; wrap it
            // whenever it appears as an operand.
            let needs_parens = parent_prec > 0;
            if needs_parens {
                out.push('(');
            }
            let _ = write!(out, "let {name} = ");
            write_expr(out, value, 0, style);
            out.push_str(" in ");
            write_expr(out, body, 0, style);
            if needs_parens {
                out.push(')');
            }
        }
        Expr::Pre(inner) => {
            out.push_str("pre(");
            write_expr(out, inner, 0, style);
            out.push(')');
        }
        Expr::CollectionLiteral { kind, elements } => {
            let _ = write!(out, "{}(", kind.keyword());
            for (i, e) in elements.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, e, 0, style);
            }
            out.push(')');
        }
        Expr::Fold {
            source,
            var,
            acc,
            init,
            body,
        } => {
            write_expr(out, source, 10, style);
            let _ = write!(out, "->iterate({var}; {acc} = ");
            write_expr(out, init, 0, style);
            out.push_str(" | ");
            write_expr(out, body, 0, style);
            out.push(')');
        }
        Expr::Call { source, op, args } => {
            // Parenthesise non-atomic receivers: `(0 - 3).abs()`.
            let atomic = matches!(
                **source,
                Expr::Var(_)
                    | Expr::Nav { .. }
                    | Expr::CollOp { .. }
                    | Expr::Call { .. }
                    | Expr::Str(_)
                    | Expr::Int(_)
            );
            if atomic {
                write_expr(out, source, 10, style);
            } else {
                out.push('(');
                write_expr(out, source, 0, style);
                out.push(')');
            }
            let _ = write!(out, ".{op}(");
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, a, 0, style);
            }
            out.push(')');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn roundtrip(src: &str) {
        let e1 = parse(src).unwrap();
        let printed = to_string(&e1);
        let e2 = parse(&printed).unwrap_or_else(|err| {
            panic!("re-parse of `{printed}` failed: {err}");
        });
        assert_eq!(e1, e2, "round-trip changed AST for `{src}` -> `{printed}`");
    }

    #[test]
    fn roundtrips_paper_expressions() {
        roundtrip("project.id->size()=1 and project.volumes->size()=0");
        roundtrip("volume.status <> 'in-use' and user.groups = 'admin'");
        roundtrip("project.volumes->size() < pre(project.volumes->size())");
        roundtrip("(a and b) or (c and d) or (e and f)");
        roundtrip("a => b and c");
        roundtrip("a and (b or c)");
        roundtrip("not a and b");
        roundtrip("not (a and b)");
        roundtrip("1 + 2 * 3 - 4 / 5");
        roundtrip("(1 + 2) * 3");
        roundtrip("xs->select(v | v.status = 'ok')->size() >= 1");
        roundtrip("if x > 0 then 'p' else 'n' endif");
        roundtrip("let n = xs->size() in n > 0");
        roundtrip("x@pre > 1");
        roundtrip("p.volumes@pre->size() = 0");
        roundtrip("Set(1, 2, 3)->includes(2)");
        roundtrip("'a'.concat('b') = 'ab'");
        roundtrip("a - b - c");
        roundtrip("a = b = c");
    }

    #[test]
    fn paper_style_uses_arrow_implies() {
        let e = parse("a implies b").unwrap();
        assert_eq!(render(&e, PrintStyle::Paper), "a => b");
        assert_eq!(render(&e, PrintStyle::Canonical), "a implies b");
    }

    #[test]
    fn subtraction_is_left_associative_after_roundtrip() {
        let e = parse("a - b - c").unwrap();
        assert_eq!(to_string(&e), "a - b - c");
        // (a - b) - c, not a - (b - c)
        let explicit = parse("(a - b) - c").unwrap();
        assert_eq!(e, explicit);
    }

    #[test]
    fn string_escaping_roundtrips() {
        roundtrip("'it''s' = x");
    }

    #[test]
    fn real_literal_keeps_decimal_point() {
        let e = parse("1.0 + 2.5").unwrap();
        assert_eq!(to_string(&e), "1.0 + 2.5");
    }
}

#[cfg(test)]
mod operand_tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn let_as_operand_is_parenthesised() {
        let e = parse("(let x = 1 in x + 1) * 2").unwrap();
        let printed = to_string(&e);
        assert_eq!(parse(&printed).unwrap(), e, "printed: {printed}");
    }

    #[test]
    fn if_as_operand_roundtrips() {
        let e = parse("if a then b else c endif + 1").unwrap();
        assert_eq!(parse(&to_string(&e)).unwrap(), e);
        let e2 = parse("1 + if a then b else c endif").unwrap();
        assert_eq!(parse(&to_string(&e2)).unwrap(), e2);
    }
}
