//! Lexical analysis for the OCL subset.
//!
//! The lexer turns an OCL source string into a sequence of [`Token`]s with
//! source positions. It recognises the token vocabulary used by the paper's
//! contracts (navigation, `->` collection calls, comparison operators,
//! logical connectives including the `=>`/`==>` implication spellings that
//! appear in Listing 1, string/integer/real/boolean literals and the `@pre`
//! postfix marker).

use std::fmt;

/// A kind of lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword-candidate, e.g. `project`, `size`, `and`.
    Ident(String),
    /// Integer literal, e.g. `42`.
    Int(i64),
    /// Real literal, e.g. `3.5`.
    Real(f64),
    /// Single-quoted string literal, e.g. `'in-use'`.
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;` — separates the iterator and accumulator of `iterate`.
    Semi,
    /// `.` — attribute / association navigation.
    Dot,
    /// `->` — collection operation arrow.
    Arrow,
    /// `:` — type ascription in iterator variables / let.
    Colon,
    /// `|` — iterator body separator.
    Pipe,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `=>` or `==>` — implication (paper spelling); the keyword `implies`
    /// lexes as an identifier and is resolved by the parser.
    Implies,
    /// `@pre` — old-value marker on a property call.
    AtPre,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::Int(v) => write!(f, "{v}"),
            TokenKind::Real(v) => write!(f, "{v}"),
            TokenKind::Str(s) => write!(f, "'{s}'"),
            TokenKind::LParen => write!(f, "("),
            TokenKind::RParen => write!(f, ")"),
            TokenKind::Comma => write!(f, ","),
            TokenKind::Semi => write!(f, ";"),
            TokenKind::Dot => write!(f, "."),
            TokenKind::Arrow => write!(f, "->"),
            TokenKind::Colon => write!(f, ":"),
            TokenKind::Pipe => write!(f, "|"),
            TokenKind::Eq => write!(f, "="),
            TokenKind::Ne => write!(f, "<>"),
            TokenKind::Lt => write!(f, "<"),
            TokenKind::Le => write!(f, "<="),
            TokenKind::Gt => write!(f, ">"),
            TokenKind::Ge => write!(f, ">="),
            TokenKind::Plus => write!(f, "+"),
            TokenKind::Minus => write!(f, "-"),
            TokenKind::Star => write!(f, "*"),
            TokenKind::Slash => write!(f, "/"),
            TokenKind::Implies => write!(f, "=>"),
            TokenKind::AtPre => write!(f, "@pre"),
            TokenKind::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token together with its byte offset in the source.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token's kind and payload.
    pub kind: TokenKind,
    /// Byte offset of the first character of the token.
    pub offset: usize,
}

/// An error produced during lexing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Human-readable description of the problem.
    pub message: String,
    /// Byte offset at which the problem was detected.
    pub offset: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize an OCL source string.
///
/// # Errors
///
/// Returns a [`LexError`] on unterminated string literals, malformed numeric
/// literals, a bare `@` not followed by `pre`, or any character outside the
/// OCL subset alphabet.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
            }
            '(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    offset: start,
                });
                i += 1;
            }
            ')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    offset: start,
                });
                i += 1;
            }
            ',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    offset: start,
                });
                i += 1;
            }
            ';' => {
                tokens.push(Token {
                    kind: TokenKind::Semi,
                    offset: start,
                });
                i += 1;
            }
            ':' => {
                tokens.push(Token {
                    kind: TokenKind::Colon,
                    offset: start,
                });
                i += 1;
            }
            '|' => {
                tokens.push(Token {
                    kind: TokenKind::Pipe,
                    offset: start,
                });
                i += 1;
            }
            '.' => {
                tokens.push(Token {
                    kind: TokenKind::Dot,
                    offset: start,
                });
                i += 1;
            }
            '+' => {
                tokens.push(Token {
                    kind: TokenKind::Plus,
                    offset: start,
                });
                i += 1;
            }
            '*' => {
                tokens.push(Token {
                    kind: TokenKind::Star,
                    offset: start,
                });
                i += 1;
            }
            '/' => {
                tokens.push(Token {
                    kind: TokenKind::Slash,
                    offset: start,
                });
                i += 1;
            }
            '-' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Token {
                        kind: TokenKind::Arrow,
                        offset: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Minus,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '=' => {
                // `==>` and `=>` are implication, bare `=` is equality. The
                // paper uses both implication spellings in Listing 1.
                if bytes.get(i + 1) == Some(&b'=') && bytes.get(i + 2) == Some(&b'>') {
                    tokens.push(Token {
                        kind: TokenKind::Implies,
                        offset: start,
                    });
                    i += 3;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Token {
                        kind: TokenKind::Implies,
                        offset: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Eq,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Token {
                        kind: TokenKind::Ne,
                        offset: start,
                    });
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Le,
                        offset: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Lt,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Ge,
                        offset: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Gt,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '@' => {
                let rest = &src[i + 1..];
                if rest.starts_with("pre") {
                    tokens.push(Token {
                        kind: TokenKind::AtPre,
                        offset: start,
                    });
                    i += 4;
                } else {
                    return Err(LexError {
                        message: "expected `pre` after `@`".to_string(),
                        offset: start,
                    });
                }
            }
            '\'' => {
                let mut j = i + 1;
                let mut buf = String::new();
                loop {
                    match bytes.get(j) {
                        None => {
                            return Err(LexError {
                                message: "unterminated string literal".to_string(),
                                offset: start,
                            })
                        }
                        Some(b'\'') => {
                            // doubled quote is an escaped quote
                            if bytes.get(j + 1) == Some(&b'\'') {
                                buf.push('\'');
                                j += 2;
                            } else {
                                j += 1;
                                break;
                            }
                        }
                        Some(&b) => {
                            buf.push(b as char);
                            j += 1;
                        }
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Str(buf),
                    offset: start,
                });
                i = j;
            }
            '0'..='9' => {
                let mut j = i;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                let mut is_real = false;
                // A `.` followed by a digit continues a real literal; a `.`
                // followed by an identifier is navigation (e.g. not valid
                // after a number, but we must not consume it).
                if j < bytes.len()
                    && bytes[j] == b'.'
                    && j + 1 < bytes.len()
                    && bytes[j + 1].is_ascii_digit()
                {
                    is_real = true;
                    j += 1;
                    while j < bytes.len() && bytes[j].is_ascii_digit() {
                        j += 1;
                    }
                }
                let text = &src[i..j];
                if is_real {
                    let v: f64 = text.parse().map_err(|_| LexError {
                        message: format!("malformed real literal `{text}`"),
                        offset: start,
                    })?;
                    tokens.push(Token {
                        kind: TokenKind::Real(v),
                        offset: start,
                    });
                } else {
                    let v: i64 = text.parse().map_err(|_| LexError {
                        message: format!("malformed integer literal `{text}`"),
                        offset: start,
                    })?;
                    tokens.push(Token {
                        kind: TokenKind::Int(v),
                        offset: start,
                    });
                }
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut j = i;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(src[i..j].to_string()),
                    offset: start,
                });
                i = j;
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character `{other}`"),
                    offset: start,
                })
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        offset: src.len(),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_navigation_and_arrow() {
        assert_eq!(
            kinds("project.volumes->size()"),
            vec![
                TokenKind::Ident("project".into()),
                TokenKind::Dot,
                TokenKind::Ident("volumes".into()),
                TokenKind::Arrow,
                TokenKind::Ident("size".into()),
                TokenKind::LParen,
                TokenKind::RParen,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_comparison_operators() {
        assert_eq!(
            kinds("a = b <> c < d <= e > f >= g"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Eq,
                TokenKind::Ident("b".into()),
                TokenKind::Ne,
                TokenKind::Ident("c".into()),
                TokenKind::Lt,
                TokenKind::Ident("d".into()),
                TokenKind::Le,
                TokenKind::Ident("e".into()),
                TokenKind::Gt,
                TokenKind::Ident("f".into()),
                TokenKind::Ge,
                TokenKind::Ident("g".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_both_implication_spellings() {
        assert_eq!(
            kinds("a => b ==> c"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Implies,
                TokenKind::Ident("b".into()),
                TokenKind::Implies,
                TokenKind::Ident("c".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_string_literal_with_hyphen() {
        assert_eq!(
            kinds("volume.status <> 'in-use'"),
            vec![
                TokenKind::Ident("volume".into()),
                TokenKind::Dot,
                TokenKind::Ident("status".into()),
                TokenKind::Ne,
                TokenKind::Str("in-use".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_escaped_quote_in_string() {
        assert_eq!(
            kinds("'it''s'"),
            vec![TokenKind::Str("it's".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(
            kinds("0 42 3.5"),
            vec![
                TokenKind::Int(0),
                TokenKind::Int(42),
                TokenKind::Real(3.5),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn number_followed_by_dot_nav_is_not_real() {
        // `1.abs` style input: the dot must remain a navigation dot.
        assert_eq!(
            kinds("1.max"),
            vec![
                TokenKind::Int(1),
                TokenKind::Dot,
                TokenKind::Ident("max".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_at_pre() {
        assert_eq!(
            kinds("x@pre"),
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::AtPre,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn rejects_unterminated_string() {
        let err = lex("'oops").unwrap_err();
        assert!(err.message.contains("unterminated"));
        assert_eq!(err.offset, 0);
    }

    #[test]
    fn rejects_bare_at() {
        assert!(lex("x@post").is_err());
    }

    #[test]
    fn rejects_unknown_character() {
        assert!(lex("a # b").is_err());
    }

    #[test]
    fn offsets_are_byte_positions() {
        let toks = lex("ab  cd").unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 4);
    }
}
