//! Abstract syntax tree for the OCL subset.
//!
//! The AST is deliberately small and purely data: evaluation lives in
//! [`crate::eval`], typing in [`crate::types`], and printing in
//! [`crate::print`]. Every node is `Clone + PartialEq + Debug` so contracts
//! can be synthesised, compared and stored freely.

use std::fmt;

/// Binary operators of the subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `=` value equality.
    Eq,
    /// `<>` value inequality.
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `and` (strictly evaluated except for false-short-circuit).
    And,
    /// `or`
    Or,
    /// `xor`
    Xor,
    /// `implies` / `=>`
    Implies,
}

impl BinOp {
    /// Surface syntax of the operator, as printed by the pretty-printer.
    #[must_use]
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Implies => "implies",
        }
    }

    /// Parser precedence; higher binds tighter.
    #[must_use]
    pub fn precedence(self) -> u8 {
        match self {
            BinOp::Implies => 1,
            BinOp::Or | BinOp::Xor => 2,
            BinOp::And => 3,
            BinOp::Eq | BinOp::Ne => 4,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 5,
            BinOp::Add | BinOp::Sub => 6,
            BinOp::Mul | BinOp::Div => 7,
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Boolean negation `not`.
    Not,
    /// Arithmetic negation `-`.
    Neg,
}

/// Collection iterator operations invoked with `->op(v | body)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IterOp {
    /// `exists` — true if any element satisfies the body.
    Exists,
    /// `forAll` — true if every element satisfies the body.
    ForAll,
    /// `select` — sub-collection of elements satisfying the body.
    Select,
    /// `reject` — sub-collection of elements not satisfying the body.
    Reject,
    /// `collect` — collection of body values.
    Collect,
    /// `one` — true if exactly one element satisfies the body.
    One,
    /// `any` — some element satisfying the body (undefined if none).
    Any,
    /// `isUnique` — true if body values are pairwise distinct.
    IsUnique,
    /// `sortedBy` — sequence of elements ordered by their body values.
    SortedBy,
}

impl IterOp {
    /// Surface name of the operation.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            IterOp::Exists => "exists",
            IterOp::ForAll => "forAll",
            IterOp::Select => "select",
            IterOp::Reject => "reject",
            IterOp::Collect => "collect",
            IterOp::One => "one",
            IterOp::Any => "any",
            IterOp::IsUnique => "isUnique",
            IterOp::SortedBy => "sortedBy",
        }
    }

    /// Parse an iterator-operation name.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "exists" => IterOp::Exists,
            "forAll" => IterOp::ForAll,
            "select" => IterOp::Select,
            "reject" => IterOp::Reject,
            "collect" => IterOp::Collect,
            "one" => IterOp::One,
            "any" => IterOp::Any,
            "isUnique" => IterOp::IsUnique,
            "sortedBy" => IterOp::SortedBy,
            _ => return None,
        })
    }
}

/// An OCL expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Boolean literal `true` / `false`.
    Bool(bool),
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// String literal.
    Str(String),
    /// `null` / `OclUndefined`.
    Null,
    /// A variable reference (context root such as `project`, `user`,
    /// `result`, or an iterator variable).
    Var(String),
    /// Attribute or association-end navigation: `object.property`.
    ///
    /// `at_pre` marks `property@pre`, i.e. the value in the pre-state.
    Nav {
        /// The navigated source expression.
        source: Box<Expr>,
        /// Property (attribute or association end) name.
        property: String,
        /// Whether the `@pre` marker is attached.
        at_pre: bool,
    },
    /// Collection operation without an iterator variable:
    /// `source->op(args…)`, e.g. `->size()`, `->includes(x)`.
    CollOp {
        /// The collection-valued source.
        source: Box<Expr>,
        /// Operation name, e.g. `size`, `includes`, `isEmpty`.
        op: String,
        /// Arguments inside the parentheses.
        args: Vec<Expr>,
    },
    /// Iterator operation: `source->op(v | body)`.
    Iterate {
        /// The collection-valued source.
        source: Box<Expr>,
        /// Which iterator operation.
        op: IterOp,
        /// Iterator variable name (defaults to `self_` when elided).
        var: String,
        /// Body expression, evaluated with `var` bound to each element.
        body: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        operand: Box<Expr>,
    },
    /// `if c then t else e endif`.
    If {
        /// Condition.
        cond: Box<Expr>,
        /// Then-branch.
        then_branch: Box<Expr>,
        /// Else-branch.
        else_branch: Box<Expr>,
    },
    /// `let name = value in body`.
    Let {
        /// Bound variable name.
        name: String,
        /// Bound value.
        value: Box<Expr>,
        /// Body in which `name` is visible.
        body: Box<Expr>,
    },
    /// `pre(expr)` — evaluate `expr` in the pre-state. This is the function
    /// spelling used throughout the paper's Listing 1; it is equivalent to
    /// distributing `@pre` over every navigation in `expr`.
    Pre(Box<Expr>),
    /// Literal collection `Set{...}` / `Sequence{...}` / `Bag{...}`.
    CollectionLiteral {
        /// Collection kind keyword.
        kind: CollectionKind,
        /// Element expressions.
        elements: Vec<Expr>,
    },
    /// The general OCL fold: `source->iterate(v; acc = init | body)`.
    Fold {
        /// The collection-valued source.
        source: Box<Expr>,
        /// Iterator variable bound to each element.
        var: String,
        /// Accumulator variable name.
        acc: String,
        /// Accumulator's initial value.
        init: Box<Expr>,
        /// Body; its value becomes the accumulator for the next element.
        body: Box<Expr>,
    },
    /// Method/operation call on an object or primitive: `x.op(args)`, e.g.
    /// `s.concat(t)`, `n.abs()`, `x.oclIsUndefined()`.
    Call {
        /// Receiver.
        source: Box<Expr>,
        /// Operation name.
        op: String,
        /// Arguments.
        args: Vec<Expr>,
    },
}

/// OCL collection kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollectionKind {
    /// Unordered, unique elements.
    Set,
    /// Unordered, duplicates allowed.
    Bag,
    /// Ordered, duplicates allowed.
    Sequence,
    /// Ordered, unique elements.
    OrderedSet,
}

impl CollectionKind {
    /// Keyword used in literals, e.g. `Set{1,2}`.
    #[must_use]
    pub fn keyword(self) -> &'static str {
        match self {
            CollectionKind::Set => "Set",
            CollectionKind::Bag => "Bag",
            CollectionKind::Sequence => "Sequence",
            CollectionKind::OrderedSet => "OrderedSet",
        }
    }

    /// Parse a collection keyword.
    #[must_use]
    pub fn from_keyword(kw: &str) -> Option<Self> {
        Some(match kw {
            "Set" => CollectionKind::Set,
            "Bag" => CollectionKind::Bag,
            "Sequence" => CollectionKind::Sequence,
            "OrderedSet" => CollectionKind::OrderedSet,
            _ => return None,
        })
    }
}

impl Expr {
    /// Convenience constructor: `lhs and rhs`.
    #[must_use]
    pub fn and(self, rhs: Expr) -> Expr {
        Expr::Binary {
            op: BinOp::And,
            lhs: Box::new(self),
            rhs: Box::new(rhs),
        }
    }

    /// Convenience constructor: `lhs or rhs`.
    #[must_use]
    pub fn or(self, rhs: Expr) -> Expr {
        Expr::Binary {
            op: BinOp::Or,
            lhs: Box::new(self),
            rhs: Box::new(rhs),
        }
    }

    /// Convenience constructor: `lhs implies rhs`.
    #[must_use]
    pub fn implies(self, rhs: Expr) -> Expr {
        Expr::Binary {
            op: BinOp::Implies,
            lhs: Box::new(self),
            rhs: Box::new(rhs),
        }
    }

    /// Convenience constructor: `not self`.
    #[must_use]
    pub fn negate(self) -> Expr {
        Expr::Unary {
            op: UnOp::Not,
            operand: Box::new(self),
        }
    }

    /// Fold a non-empty iterator of expressions into a disjunction.
    /// Returns `false` literal for an empty iterator (the identity of `or`).
    pub fn any_of<I: IntoIterator<Item = Expr>>(exprs: I) -> Expr {
        let mut it = exprs.into_iter();
        match it.next() {
            None => Expr::Bool(false),
            Some(first) => it.fold(first, Expr::or),
        }
    }

    /// Fold a non-empty iterator of expressions into a conjunction.
    /// Returns `true` literal for an empty iterator (the identity of `and`).
    pub fn all_of<I: IntoIterator<Item = Expr>>(exprs: I) -> Expr {
        let mut it = exprs.into_iter();
        match it.next() {
            None => Expr::Bool(true),
            Some(first) => it.fold(first, Expr::and),
        }
    }

    /// Build a navigation chain from a root variable through properties:
    /// `nav_path("project", ["volumes"])` is `project.volumes`.
    #[must_use]
    pub fn nav_path(root: &str, path: &[&str]) -> Expr {
        let mut e = Expr::Var(root.to_string());
        for p in path {
            e = Expr::Nav {
                source: Box::new(e),
                property: (*p).to_string(),
                at_pre: false,
            };
        }
        e
    }

    /// `self->size()` collection operation on this expression.
    #[must_use]
    pub fn size(self) -> Expr {
        Expr::CollOp {
            source: Box::new(self),
            op: "size".to_string(),
            args: Vec::new(),
        }
    }

    /// Count the syntactic nodes of the expression (used by the scalability
    /// ablation to relate contract size to evaluation cost).
    #[must_use]
    pub fn node_count(&self) -> usize {
        match self {
            Expr::Bool(_)
            | Expr::Int(_)
            | Expr::Real(_)
            | Expr::Str(_)
            | Expr::Null
            | Expr::Var(_) => 1,
            Expr::Nav { source, .. } => 1 + source.node_count(),
            Expr::CollOp { source, args, .. } => {
                1 + source.node_count() + args.iter().map(Expr::node_count).sum::<usize>()
            }
            Expr::Iterate { source, body, .. } => 1 + source.node_count() + body.node_count(),
            Expr::Binary { lhs, rhs, .. } => 1 + lhs.node_count() + rhs.node_count(),
            Expr::Unary { operand, .. } => 1 + operand.node_count(),
            Expr::If {
                cond,
                then_branch,
                else_branch,
            } => 1 + cond.node_count() + then_branch.node_count() + else_branch.node_count(),
            Expr::Let { value, body, .. } => 1 + value.node_count() + body.node_count(),
            Expr::Pre(inner) => 1 + inner.node_count(),
            Expr::CollectionLiteral { elements, .. } => {
                1 + elements.iter().map(Expr::node_count).sum::<usize>()
            }
            Expr::Fold {
                source, init, body, ..
            } => 1 + source.node_count() + init.node_count() + body.node_count(),
            Expr::Call { source, args, .. } => {
                1 + source.node_count() + args.iter().map(Expr::node_count).sum::<usize>()
            }
        }
    }

    /// True if the expression syntactically references the pre-state
    /// (either via `@pre` markers or the `pre(...)` function form).
    #[must_use]
    pub fn references_pre_state(&self) -> bool {
        match self {
            Expr::Pre(_) => true,
            Expr::Nav { source, at_pre, .. } => *at_pre || source.references_pre_state(),
            Expr::Bool(_)
            | Expr::Int(_)
            | Expr::Real(_)
            | Expr::Str(_)
            | Expr::Null
            | Expr::Var(_) => false,
            Expr::CollOp { source, args, .. } => {
                source.references_pre_state() || args.iter().any(Expr::references_pre_state)
            }
            Expr::Iterate { source, body, .. } => {
                source.references_pre_state() || body.references_pre_state()
            }
            Expr::Binary { lhs, rhs, .. } => {
                lhs.references_pre_state() || rhs.references_pre_state()
            }
            Expr::Unary { operand, .. } => operand.references_pre_state(),
            Expr::If {
                cond,
                then_branch,
                else_branch,
            } => {
                cond.references_pre_state()
                    || then_branch.references_pre_state()
                    || else_branch.references_pre_state()
            }
            Expr::Let { value, body, .. } => {
                value.references_pre_state() || body.references_pre_state()
            }
            Expr::CollectionLiteral { elements, .. } => {
                elements.iter().any(Expr::references_pre_state)
            }
            Expr::Fold {
                source, init, body, ..
            } => {
                source.references_pre_state()
                    || init.references_pre_state()
                    || body.references_pre_state()
            }
            Expr::Call { source, args, .. } => {
                source.references_pre_state() || args.iter().any(Expr::references_pre_state)
            }
        }
    }

    /// Collect the names of all free root variables referenced in the
    /// expression, in first-occurrence order. Iterator/let-bound variables
    /// are excluded.
    #[must_use]
    pub fn free_variables(&self) -> Vec<String> {
        let mut out = Vec::new();
        let mut bound = Vec::new();
        self.collect_free(&mut bound, &mut out);
        out
    }

    fn collect_free(&self, bound: &mut Vec<String>, out: &mut Vec<String>) {
        match self {
            Expr::Var(name) => {
                if !bound.iter().any(|b| b == name) && !out.iter().any(|o| o == name) {
                    out.push(name.clone());
                }
            }
            Expr::Bool(_) | Expr::Int(_) | Expr::Real(_) | Expr::Str(_) | Expr::Null => {}
            Expr::Nav { source, .. } => source.collect_free(bound, out),
            Expr::CollOp { source, args, .. } => {
                source.collect_free(bound, out);
                for a in args {
                    a.collect_free(bound, out);
                }
            }
            Expr::Iterate {
                source, var, body, ..
            } => {
                source.collect_free(bound, out);
                bound.push(var.clone());
                body.collect_free(bound, out);
                bound.pop();
            }
            Expr::Binary { lhs, rhs, .. } => {
                lhs.collect_free(bound, out);
                rhs.collect_free(bound, out);
            }
            Expr::Unary { operand, .. } => operand.collect_free(bound, out),
            Expr::If {
                cond,
                then_branch,
                else_branch,
            } => {
                cond.collect_free(bound, out);
                then_branch.collect_free(bound, out);
                else_branch.collect_free(bound, out);
            }
            Expr::Let { name, value, body } => {
                value.collect_free(bound, out);
                bound.push(name.clone());
                body.collect_free(bound, out);
                bound.pop();
            }
            Expr::Pre(inner) => inner.collect_free(bound, out),
            Expr::CollectionLiteral { elements, .. } => {
                for e in elements {
                    e.collect_free(bound, out);
                }
            }
            Expr::Fold {
                source,
                var,
                acc,
                init,
                body,
            } => {
                source.collect_free(bound, out);
                init.collect_free(bound, out);
                bound.push(var.clone());
                bound.push(acc.clone());
                body.collect_free(bound, out);
                bound.pop();
                bound.pop();
            }
            Expr::Call { source, args, .. } => {
                source.collect_free(bound, out);
                for a in args {
                    a.collect_free(bound, out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_of_empty_is_false() {
        assert_eq!(Expr::any_of(Vec::new()), Expr::Bool(false));
    }

    #[test]
    fn all_of_empty_is_true() {
        assert_eq!(Expr::all_of(Vec::new()), Expr::Bool(true));
    }

    #[test]
    fn any_of_folds_left() {
        let e = Expr::any_of(vec![Expr::Var("a".into()), Expr::Var("b".into())]);
        assert_eq!(
            e,
            Expr::Binary {
                op: BinOp::Or,
                lhs: Box::new(Expr::Var("a".into())),
                rhs: Box::new(Expr::Var("b".into())),
            }
        );
    }

    #[test]
    fn nav_path_builds_chain() {
        let e = Expr::nav_path("project", &["volumes"]);
        match e {
            Expr::Nav {
                source,
                property,
                at_pre,
            } => {
                assert_eq!(*source, Expr::Var("project".into()));
                assert_eq!(property, "volumes");
                assert!(!at_pre);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn node_count_counts_all_nodes() {
        let e = Expr::nav_path("p", &["v"]).size(); // Var + Nav + CollOp
        assert_eq!(e.node_count(), 3);
    }

    #[test]
    fn references_pre_state_detects_function_form() {
        let e = Expr::Pre(Box::new(Expr::Var("x".into())));
        assert!(e.references_pre_state());
        assert!(!Expr::Var("x".into()).references_pre_state());
    }

    #[test]
    fn references_pre_state_detects_at_pre_marker() {
        let e = Expr::Nav {
            source: Box::new(Expr::Var("p".into())),
            property: "volumes".into(),
            at_pre: true,
        };
        assert!(e.references_pre_state());
    }

    #[test]
    fn free_variables_skip_iterator_bindings() {
        let e = Expr::Iterate {
            source: Box::new(Expr::Var("volumes".into())),
            op: IterOp::Exists,
            var: "v".into(),
            body: Box::new(Expr::Binary {
                op: BinOp::Eq,
                lhs: Box::new(Expr::Nav {
                    source: Box::new(Expr::Var("v".into())),
                    property: "status".into(),
                    at_pre: false,
                }),
                rhs: Box::new(Expr::Var("wanted".into())),
            }),
        };
        assert_eq!(
            e.free_variables(),
            vec!["volumes".to_string(), "wanted".to_string()]
        );
    }

    #[test]
    fn binop_precedence_ordering() {
        assert!(BinOp::Mul.precedence() > BinOp::Add.precedence());
        assert!(BinOp::Add.precedence() > BinOp::Lt.precedence());
        assert!(BinOp::Lt.precedence() > BinOp::Eq.precedence());
        assert!(BinOp::Eq.precedence() > BinOp::And.precedence());
        assert!(BinOp::And.precedence() > BinOp::Or.precedence());
        assert!(BinOp::Or.precedence() > BinOp::Implies.precedence());
    }
}
