//! The mutant catalog: systematic implementation errors for the
//! Section VI-D validation, generalising the paper's three hand-injected
//! mutants into operator classes.

use cm_cloudsim::{Fault, FaultPlan};
use cm_rbac::Rule;
use std::fmt;

/// Classes of mutation operators over the cloud implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OperatorClass {
    /// The policy rule for an action admits more roles than specified
    /// (classic wrong-authorization: privilege escalation).
    PolicyWiden,
    /// The policy rule admits fewer roles than specified (authorized
    /// users locked out).
    PolicyNarrow,
    /// The developer forgot the authorization check entirely.
    MissingAuthCheck,
    /// The authorization decision is inverted (negation bug).
    InvertedAuthCheck,
    /// The volume-quota functional check was dropped.
    QuotaCheckRemoved,
    /// The `in-use` functional check on delete was dropped.
    InUseCheckRemoved,
    /// A wrong success status code is returned.
    WrongStatusCode,
    /// Success is reported without performing the state change.
    LostUpdate,
}

impl OperatorClass {
    /// All classes, in report order.
    pub const ALL: [OperatorClass; 8] = [
        OperatorClass::PolicyWiden,
        OperatorClass::PolicyNarrow,
        OperatorClass::MissingAuthCheck,
        OperatorClass::InvertedAuthCheck,
        OperatorClass::QuotaCheckRemoved,
        OperatorClass::InUseCheckRemoved,
        OperatorClass::WrongStatusCode,
        OperatorClass::LostUpdate,
    ];

    /// Short name for tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            OperatorClass::PolicyWiden => "policy-widen",
            OperatorClass::PolicyNarrow => "policy-narrow",
            OperatorClass::MissingAuthCheck => "missing-auth-check",
            OperatorClass::InvertedAuthCheck => "inverted-auth-check",
            OperatorClass::QuotaCheckRemoved => "quota-check-removed",
            OperatorClass::InUseCheckRemoved => "in-use-check-removed",
            OperatorClass::WrongStatusCode => "wrong-status-code",
            OperatorClass::LostUpdate => "lost-update",
        }
    }

    /// Inverse of [`OperatorClass::name`] (kill-matrix JSON round-trip).
    #[must_use]
    pub fn from_name(name: &str) -> Option<OperatorClass> {
        OperatorClass::ALL.into_iter().find(|c| c.name() == name)
    }

    /// True for operators that distort *authorization* (the paper's focus).
    #[must_use]
    pub fn is_authorization(self) -> bool {
        matches!(
            self,
            OperatorClass::PolicyWiden
                | OperatorClass::PolicyNarrow
                | OperatorClass::MissingAuthCheck
                | OperatorClass::InvertedAuthCheck
        )
    }
}

impl fmt::Display for OperatorClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A single mutant: a named, classed fault plan.
#[derive(Debug, Clone, PartialEq)]
pub struct Mutant {
    /// Stable identifier, e.g. `M07-widen-volume:delete`.
    pub id: String,
    /// Operator class.
    pub class: OperatorClass,
    /// Human-readable description of the injected error.
    pub description: String,
    /// The fault plan realising the error.
    pub plan: FaultPlan,
}

/// The paper's three mutants (Section VI-D: "we were able to kill all
/// three mutants (errors) systematically introduced in the cloud
/// implementation to detect wrong authorization on resources").
#[must_use]
pub fn paper_mutants() -> Vec<Mutant> {
    vec![
        Mutant {
            id: "P1-delete-role-widened".to_string(),
            class: OperatorClass::PolicyWiden,
            description: "volume:delete wrongly permits role `member` in addition to `admin` \
                          (violates SecReq 1.4)"
                .to_string(),
            plan: FaultPlan::single(Fault::PolicyOverride {
                action: "volume:delete".to_string(),
                rule: Rule::any_role(["admin", "member"]),
            }),
        },
        Mutant {
            id: "P2-post-check-missing".to_string(),
            class: OperatorClass::MissingAuthCheck,
            description: "the authorization check on volume:post was forgotten — any \
                          authenticated user can create volumes (violates SecReq 1.3)"
                .to_string(),
            plan: FaultPlan::single(Fault::SkipAuthCheck {
                action: "volume:post".to_string(),
            }),
        },
        Mutant {
            id: "P3-get-check-inverted".to_string(),
            class: OperatorClass::InvertedAuthCheck,
            description: "the authorization decision on volume:get is inverted — authorized \
                          users are denied, unauthorized ones admitted (violates SecReq 1.1)"
                .to_string(),
            plan: FaultPlan::single(Fault::InvertAuthCheck {
                action: "volume:get".to_string(),
            }),
        },
    ]
}

/// Actions of the volume resource, with the roles Table I specifies.
const VOLUME_ACTIONS: [(&str, &[&str]); 4] = [
    ("volume:get", &["admin", "member", "user"]),
    ("volume:put", &["admin", "member"]),
    ("volume:post", &["admin", "member"]),
    ("volume:delete", &["admin"]),
];

/// The full systematic catalog: every operator class applied to every
/// applicable volume action.
#[must_use]
pub fn standard_catalog() -> Vec<Mutant> {
    let mut mutants = Vec::new();
    let mut n = 0usize;
    let mut push = |class: OperatorClass, action: &str, description: String, plan: FaultPlan| {
        n += 1;
        mutants.push(Mutant {
            id: format!("M{n:02}-{class}-{action}"),
            class,
            description,
            plan,
        });
    };

    for (action, roles) in VOLUME_ACTIONS {
        // Widen: permit everything (any authenticated principal).
        push(
            OperatorClass::PolicyWiden,
            action,
            format!("{action} permits any authenticated user (specified: {roles:?})"),
            FaultPlan::single(Fault::PolicyOverride {
                action: action.to_string(),
                rule: Rule::Always,
            }),
        );
        // Narrow: deny everyone.
        push(
            OperatorClass::PolicyNarrow,
            action,
            format!("{action} denies every role (specified: {roles:?})"),
            FaultPlan::single(Fault::PolicyOverride {
                action: action.to_string(),
                rule: Rule::Never,
            }),
        );
        push(
            OperatorClass::MissingAuthCheck,
            action,
            format!("authorization check for {action} skipped"),
            FaultPlan::single(Fault::SkipAuthCheck {
                action: action.to_string(),
            }),
        );
        push(
            OperatorClass::InvertedAuthCheck,
            action,
            format!("authorization decision for {action} inverted"),
            FaultPlan::single(Fault::InvertAuthCheck {
                action: action.to_string(),
            }),
        );
    }

    push(
        OperatorClass::QuotaCheckRemoved,
        "volume:post",
        "volume creation no longer checks the project quota".to_string(),
        FaultPlan::single(Fault::IgnoreQuota),
    );
    push(
        OperatorClass::InUseCheckRemoved,
        "volume:delete",
        "volume deletion no longer checks the in-use status".to_string(),
        FaultPlan::single(Fault::IgnoreInUse),
    );

    for (action, wrong) in [
        ("volume:get", 202u16),
        ("volume:put", 204),
        ("volume:post", 200),
        ("volume:delete", 200),
    ] {
        push(
            OperatorClass::WrongStatusCode,
            action,
            format!("{action} responds {wrong} instead of the specified success code"),
            FaultPlan::single(Fault::WrongStatusCode {
                action: action.to_string(),
                code: wrong,
            }),
        );
    }

    for action in ["volume:post", "volume:delete", "volume:put"] {
        push(
            OperatorClass::LostUpdate,
            action,
            format!("{action} reports success without changing any state"),
            FaultPlan::single(Fault::DropStateChange {
                action: action.to_string(),
            }),
        );
    }

    mutants
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_mutants_are_three_authorization_errors() {
        let ms = paper_mutants();
        assert_eq!(ms.len(), 3);
        assert!(ms.iter().all(|m| m.class.is_authorization()));
    }

    #[test]
    fn catalog_is_systematic() {
        let ms = standard_catalog();
        // 4 actions × 4 auth operators + quota + in-use + 4 status + 3 lost.
        assert_eq!(ms.len(), 4 * 4 + 1 + 1 + 4 + 3);
        // Ids are unique.
        let mut ids: Vec<&str> = ms.iter().map(|m| m.id.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), ms.len());
        // Every class is represented.
        for class in OperatorClass::ALL {
            assert!(ms.iter().any(|m| m.class == class), "missing {class}");
        }
    }

    #[test]
    fn every_mutant_has_a_single_fault() {
        for m in standard_catalog() {
            assert_eq!(m.plan.faults().len(), 1, "{}", m.id);
        }
    }

    #[test]
    fn operator_class_names_are_distinct() {
        let mut names: Vec<&str> = OperatorClass::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), OperatorClass::ALL.len());
    }
}

/// Actions of the snapshot resource, with the extended-table roles.
const SNAPSHOT_ACTIONS: [(&str, &[&str]); 3] = [
    ("snapshot:get", &["admin", "member", "user"]),
    ("snapshot:post", &["admin", "member"]),
    ("snapshot:delete", &["admin"]),
];

/// Mutants over the snapshot resource (killed by the *extended* oracle
/// suite; the volume-only suite cannot observe them).
#[must_use]
pub fn snapshot_catalog() -> Vec<Mutant> {
    let mut mutants = Vec::new();
    let mut n = 0usize;
    for (action, roles) in SNAPSHOT_ACTIONS {
        for (class, plan) in [
            (
                OperatorClass::PolicyWiden,
                FaultPlan::single(Fault::PolicyOverride {
                    action: action.to_string(),
                    rule: Rule::Always,
                }),
            ),
            (
                OperatorClass::PolicyNarrow,
                FaultPlan::single(Fault::PolicyOverride {
                    action: action.to_string(),
                    rule: Rule::Never,
                }),
            ),
            (
                OperatorClass::MissingAuthCheck,
                FaultPlan::single(Fault::SkipAuthCheck {
                    action: action.to_string(),
                }),
            ),
            (
                OperatorClass::InvertedAuthCheck,
                FaultPlan::single(Fault::InvertAuthCheck {
                    action: action.to_string(),
                }),
            ),
        ] {
            n += 1;
            mutants.push(Mutant {
                id: format!("S{n:02}-{class}-{action}"),
                class,
                description: format!("{action}: {} (specified roles: {roles:?})", class.name()),
                plan,
            });
        }
    }
    mutants
}

#[cfg(test)]
mod snapshot_catalog_tests {
    use super::*;

    #[test]
    fn snapshot_catalog_is_authorization_only() {
        let ms = snapshot_catalog();
        assert_eq!(ms.len(), 12);
        assert!(ms.iter().all(|m| m.class.is_authorization()));
        let mut ids: Vec<&str> = ms.iter().map(|m| m.id.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 12);
    }
}
