//! The kill matrix: requirement id × mutant detection accounting, with a
//! machine-readable artifact and baseline diffing for CI gating.
//!
//! [`run_kill_matrix`] scales the paper's Section VI-D experiment from
//! three hand-made mutants to the **entire** catalog
//! ([`full_catalog`] = [`crate::standard_catalog`] +
//! [`crate::snapshot_catalog`]), executed across every RBAC role of the
//! fixture (`admin`, `member`, `user` and the role-less principal)
//! against live in-process cloudsim instances through the extended
//! monitor-as-test-oracle suite. The result is a matrix
//!
//! > requirement id × mutant → detected / degraded / missed
//!
//! plus per-operator-class kill rates. [`KillMatrix::to_json`] emits the
//! `KILL_MATRIX.json` artifact; [`KillMatrix::diff`] compares a fresh run
//! against the committed baseline so any mutant that used to be detected
//! and no longer is fails the build (`ci.sh campaign`).

use crate::catalog::{snapshot_catalog, standard_catalog, Mutant, OperatorClass};
use cm_cloudsim::PrivateCloud;
use cm_core::TestOracle;
use cm_rest::Json;
use std::collections::BTreeSet;
use std::fmt;
use std::fmt::Write as _;

/// Detection status of one mutant under the oracle suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Detection {
    /// At least one scenario produced a violation verdict.
    Detected,
    /// No violation, but at least one scenario came back
    /// `Verdict::Degraded` — the monitor could not check the very
    /// request that might have caught the mutant. Counted as *not*
    /// killed: a degraded non-verdict must never masquerade as a kill.
    Degraded,
    /// Every scenario passed — the mutant survived.
    Missed,
}

impl Detection {
    /// Stable lowercase name (JSON payload).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Detection::Detected => "detected",
            Detection::Degraded => "degraded",
            Detection::Missed => "missed",
        }
    }

    /// Inverse of [`Detection::name`].
    #[must_use]
    pub fn from_name(name: &str) -> Option<Detection> {
        match name {
            "detected" => Some(Detection::Detected),
            "degraded" => Some(Detection::Degraded),
            "missed" => Some(Detection::Missed),
            _ => None,
        }
    }
}

impl fmt::Display for Detection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One kill-matrix row: a mutant with its per-requirement detections.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixRow {
    /// Mutant id (stable catalog key, e.g. `M07-inverted-auth-check-…`).
    pub mutant_id: String,
    /// Operator class of the mutant.
    pub class: OperatorClass,
    /// Overall detection status.
    pub status: Detection,
    /// Requirement ids under which a violation verdict was recorded.
    pub detected_by: Vec<String>,
    /// Requirement ids that were only reachable through degraded
    /// (uncheckable) scenarios for this mutant.
    pub degraded_on: Vec<String>,
    /// Roles whose scenarios detected the mutant, in suite order.
    pub killed_by_roles: Vec<String>,
    /// Names of the detecting scenarios.
    pub killing_scenarios: Vec<String>,
}

/// The campaign's kill matrix.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KillMatrix {
    /// Requirement-id columns, sorted.
    pub requirements: Vec<String>,
    /// RBAC roles the suite acted under, in suite order.
    pub roles: Vec<String>,
    /// Per-mutant rows, in catalog order.
    pub rows: Vec<MatrixRow>,
}

/// The full campaign catalog: every volume mutant plus every snapshot
/// mutant, in catalog order.
#[must_use]
pub fn full_catalog() -> Vec<Mutant> {
    let mut mutants = standard_catalog();
    mutants.extend(snapshot_catalog());
    mutants
}

/// Run the extended oracle suite over each mutant cloud and assemble the
/// kill matrix.
///
/// The fault-free cloud is run first: it must be clean (a harness with
/// false positives makes every kill meaningless) and it defines the
/// requirement columns and role set of the matrix.
///
/// # Panics
///
/// Panics if the fault-free cloud produces violation verdicts.
#[must_use]
pub fn run_kill_matrix(mutants: &[Mutant]) -> KillMatrix {
    let oracle = TestOracle;
    let clean = oracle.run_extended(PrivateCloud::my_project);
    assert!(
        !clean.killed(),
        "oracle produced false positives on the correct cloud:\n{clean}"
    );

    let requirements: Vec<String> = clean
        .scenarios
        .iter()
        .flat_map(|s| s.requirements.iter().cloned())
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    let mut roles: Vec<String> = Vec::new();
    for s in &clean.scenarios {
        if !roles.contains(&s.role) {
            roles.push(s.role.clone());
        }
    }

    let mut matrix = KillMatrix {
        requirements,
        roles,
        rows: Vec::new(),
    };
    for mutant in mutants {
        let plan = mutant.plan.clone();
        let report = oracle.run_extended(|| PrivateCloud::my_project().with_faults(plan.clone()));

        let mut detected_by = BTreeSet::new();
        let mut killed_by_roles = Vec::new();
        let mut killing_scenarios = Vec::new();
        for s in report.violations() {
            detected_by.extend(s.requirements.iter().cloned());
            if !killed_by_roles.contains(&s.role) {
                killed_by_roles.push(s.role.clone());
            }
            killing_scenarios.push(s.name.clone());
        }
        let degraded_on: BTreeSet<String> = report
            .degraded()
            .iter()
            .flat_map(|s| s.requirements.iter().cloned())
            .collect();

        let status = if !killing_scenarios.is_empty() {
            Detection::Detected
        } else if !degraded_on.is_empty() {
            Detection::Degraded
        } else {
            Detection::Missed
        };
        matrix.rows.push(MatrixRow {
            mutant_id: mutant.id.clone(),
            class: mutant.class,
            status,
            detected_by: detected_by.into_iter().collect(),
            degraded_on: degraded_on.into_iter().collect(),
            killed_by_roles,
            killing_scenarios,
        });
    }
    matrix
}

impl KillMatrix {
    /// Number of mutants in the matrix.
    #[must_use]
    pub fn total(&self) -> usize {
        self.rows.len()
    }

    /// Number of detected (killed) mutants.
    #[must_use]
    pub fn killed(&self) -> usize {
        self.count(Detection::Detected)
    }

    /// Rows with the given status.
    #[must_use]
    pub fn count(&self, status: Detection) -> usize {
        self.rows.iter().filter(|r| r.status == status).count()
    }

    /// Mutation score (`killed / total`, `1.0` when empty).
    #[must_use]
    pub fn score(&self) -> f64 {
        if self.rows.is_empty() {
            return 1.0;
        }
        self.killed() as f64 / self.total() as f64
    }

    /// `(class, killed, total)` per operator class, in
    /// [`OperatorClass::ALL`] order, skipping absent classes.
    #[must_use]
    pub fn by_class(&self) -> Vec<(OperatorClass, usize, usize)> {
        OperatorClass::ALL
            .iter()
            .filter_map(|class| {
                let total = self.rows.iter().filter(|r| r.class == *class).count();
                if total == 0 {
                    return None;
                }
                let killed = self
                    .rows
                    .iter()
                    .filter(|r| r.class == *class && r.status == Detection::Detected)
                    .count();
                Some((*class, killed, total))
            })
            .collect()
    }

    /// The row for a mutant id.
    #[must_use]
    pub fn row(&self, mutant_id: &str) -> Option<&MatrixRow> {
        self.rows.iter().find(|r| r.mutant_id == mutant_id)
    }

    /// Render the matrix as a human table: one column per requirement id
    /// (`X` detected under that requirement, `~` degraded, `.` clean),
    /// plus status, detecting roles and per-class kill rates.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "| {:<34} | {:<8} |", "Mutant", "Status");
        for req in &self.requirements {
            let _ = write!(out, " {req:<3} |");
        }
        let _ = writeln!(out, " {:<18} |", "Killed by roles");
        let _ = write!(out, "|{}|{}|", "-".repeat(36), "-".repeat(10));
        for req in &self.requirements {
            let _ = write!(out, "{}|", "-".repeat(req.len().max(3) + 2));
        }
        let _ = writeln!(out, "{}|", "-".repeat(20));
        for row in &self.rows {
            let _ = write!(out, "| {:<34} | {:<8} |", row.mutant_id, row.status);
            for req in &self.requirements {
                let cell = if row.detected_by.contains(req) {
                    "X"
                } else if row.degraded_on.contains(req) {
                    "~"
                } else {
                    "."
                };
                let _ = write!(out, " {cell:<3} |");
            }
            let _ = writeln!(out, " {:<18} |", row.killed_by_roles.join(","));
        }
        let _ = writeln!(out);
        let _ = writeln!(out, "Per-operator kill rates:");
        for (class, killed, total) in self.by_class() {
            let _ = writeln!(
                out,
                "  {:<22} {killed}/{total} ({:.0}%)",
                class.name(),
                100.0 * killed as f64 / total as f64
            );
        }
        let _ = writeln!(
            out,
            "Overall: {}/{} detected ({:.0}%), {} degraded, {} missed; roles: {}",
            self.killed(),
            self.total(),
            self.score() * 100.0,
            self.count(Detection::Degraded),
            self.count(Detection::Missed),
            self.roles.join(", ")
        );
        out
    }

    /// Serialise as the `KILL_MATRIX.json` artifact.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let str_array =
            |items: &[String]| Json::Array(items.iter().map(|s| Json::Str(s.clone())).collect());
        let mutants = self
            .rows
            .iter()
            .map(|row| {
                Json::object(vec![
                    ("id", Json::Str(row.mutant_id.clone())),
                    ("class", Json::Str(row.class.name().to_string())),
                    ("status", Json::Str(row.status.name().to_string())),
                    ("detected_by", str_array(&row.detected_by)),
                    ("degraded_on", str_array(&row.degraded_on)),
                    ("killed_by_roles", str_array(&row.killed_by_roles)),
                    ("killing_scenarios", str_array(&row.killing_scenarios)),
                ])
            })
            .collect();
        let by_class = self
            .by_class()
            .into_iter()
            .map(|(class, killed, total)| {
                Json::object(vec![
                    ("class", Json::Str(class.name().to_string())),
                    ("killed", Json::Int(killed as i64)),
                    ("total", Json::Int(total as i64)),
                ])
            })
            .collect();
        Json::object(vec![
            ("version", Json::Int(1)),
            ("suite", Json::Str("extended".to_string())),
            ("requirements", str_array(&self.requirements)),
            ("roles", str_array(&self.roles)),
            ("mutants", Json::Array(mutants)),
            ("by_class", Json::Array(by_class)),
            (
                "summary",
                Json::object(vec![
                    ("total", Json::Int(self.total() as i64)),
                    ("detected", Json::Int(self.killed() as i64)),
                    (
                        "degraded",
                        Json::Int(self.count(Detection::Degraded) as i64),
                    ),
                    ("missed", Json::Int(self.count(Detection::Missed) as i64)),
                ]),
            ),
        ])
    }

    /// Deserialise a matrix previously written by [`KillMatrix::to_json`]
    /// (derived sections like `by_class` are recomputed, not trusted).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field.
    pub fn from_json(json: &Json) -> Result<KillMatrix, String> {
        let str_list = |value: &Json, what: &str| -> Result<Vec<String>, String> {
            value
                .as_array()
                .ok_or_else(|| format!("{what} is not an array"))?
                .iter()
                .map(|v| {
                    v.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| format!("{what} holds a non-string"))
                })
                .collect()
        };
        let requirements = str_list(
            json.get("requirements")
                .ok_or("missing `requirements` field")?,
            "requirements",
        )?;
        let roles = str_list(json.get("roles").ok_or("missing `roles` field")?, "roles")?;
        let mut rows = Vec::new();
        for (i, m) in json
            .get("mutants")
            .and_then(Json::as_array)
            .ok_or("missing `mutants` array")?
            .iter()
            .enumerate()
        {
            let field = |key: &str| -> Result<&Json, String> {
                m.get(key)
                    .ok_or_else(|| format!("mutant #{i} missing `{key}`"))
            };
            let class_name = field("class")?
                .as_str()
                .ok_or_else(|| format!("mutant #{i} class is not a string"))?;
            let status_name = field("status")?
                .as_str()
                .ok_or_else(|| format!("mutant #{i} status is not a string"))?;
            rows.push(MatrixRow {
                mutant_id: field("id")?
                    .as_str()
                    .ok_or_else(|| format!("mutant #{i} id is not a string"))?
                    .to_string(),
                class: OperatorClass::from_name(class_name)
                    .ok_or_else(|| format!("unknown operator class `{class_name}`"))?,
                status: Detection::from_name(status_name)
                    .ok_or_else(|| format!("unknown detection status `{status_name}`"))?,
                detected_by: str_list(field("detected_by")?, "detected_by")?,
                degraded_on: str_list(field("degraded_on")?, "degraded_on")?,
                killed_by_roles: str_list(field("killed_by_roles")?, "killed_by_roles")?,
                killing_scenarios: str_list(field("killing_scenarios")?, "killing_scenarios")?,
            });
        }
        Ok(KillMatrix {
            requirements,
            roles,
            rows,
        })
    }

    /// Compare this (fresh) matrix against a committed baseline.
    #[must_use]
    pub fn diff(&self, baseline: &KillMatrix) -> MatrixDiff {
        let mut diff = MatrixDiff::default();
        for base in &baseline.rows {
            match self.row(&base.mutant_id) {
                None => {
                    if base.status == Detection::Detected {
                        diff.regressions.push(format!(
                            "mutant `{}` was detected in the baseline but is no longer \
                             in the catalog",
                            base.mutant_id
                        ));
                    } else {
                        diff.drift
                            .push(format!("mutant `{}` left the catalog", base.mutant_id));
                    }
                }
                Some(cur) => match (base.status, cur.status) {
                    (Detection::Detected, Detection::Detected)
                        if base.detected_by != cur.detected_by =>
                    {
                        diff.drift.push(format!(
                            "mutant `{}` detection moved: [{}] -> [{}]",
                            base.mutant_id,
                            base.detected_by.join(","),
                            cur.detected_by.join(",")
                        ));
                    }
                    (Detection::Detected, Detection::Detected) => {}
                    (Detection::Detected, now) => diff.regressions.push(format!(
                        "mutant `{}` was detected in the baseline but is now {now}",
                        base.mutant_id
                    )),
                    (was, Detection::Detected) => diff.improvements.push(format!(
                        "mutant `{}` was {was} in the baseline and is now detected \
                             (refresh the baseline)",
                        base.mutant_id
                    )),
                    (was, now) if was != now => diff
                        .drift
                        .push(format!("mutant `{}` moved {was} -> {now}", base.mutant_id)),
                    _ => {}
                },
            }
        }
        for cur in &self.rows {
            if baseline.row(&cur.mutant_id).is_none() {
                diff.improvements.push(format!(
                    "new mutant `{}` ({}) — refresh the baseline",
                    cur.mutant_id, cur.status
                ));
            }
        }
        diff
    }
}

impl fmt::Display for KillMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Outcome of diffing a fresh kill matrix against the baseline.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MatrixDiff {
    /// Lost detection power — any entry here fails the build.
    pub regressions: Vec<String>,
    /// Gained detection power or new mutants (baseline refresh hints).
    pub improvements: Vec<String>,
    /// Neutral changes worth reporting (detection moved between
    /// requirements, catalog churn of never-detected mutants).
    pub drift: Vec<String>,
}

impl MatrixDiff {
    /// True when detection power regressed — the CI gate.
    #[must_use]
    pub fn is_regression(&self) -> bool {
        !self.regressions.is_empty()
    }

    /// True when nothing at all changed.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.regressions.is_empty() && self.improvements.is_empty() && self.drift.is_empty()
    }

    /// Human-readable summary.
    #[must_use]
    pub fn render(&self) -> String {
        if self.is_clean() {
            return "kill matrix matches the baseline\n".to_string();
        }
        let mut out = String::new();
        for r in &self.regressions {
            let _ = writeln!(out, "REGRESSION: {r}");
        }
        for d in &self.drift {
            let _ = writeln!(out, "drift: {d}");
        }
        for i in &self.improvements {
            let _ = writeln!(out, "improvement: {i}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::paper_mutants;
    use cm_rest::parse_json;

    #[test]
    fn paper_mutants_fill_the_matrix() {
        let matrix = run_kill_matrix(&paper_mutants());
        assert_eq!(matrix.total(), 3);
        assert_eq!(matrix.killed(), 3, "{matrix}");
        // The extended suite defines all seven requirement columns.
        assert_eq!(
            matrix.requirements,
            vec!["1.1", "1.2", "1.3", "1.4", "2.1", "2.2", "2.3"]
        );
        // All four fixture roles act in the suite.
        assert_eq!(matrix.roles.len(), 4, "{:?}", matrix.roles);
        // The widened-delete mutant is caught under SecReq 1.4 by a
        // non-admin principal.
        let row = matrix.row("P1-delete-role-widened").unwrap();
        assert!(row.detected_by.contains(&"1.4".to_string()), "{row:?}");
        assert!(row.killed_by_roles.iter().any(|r| r != "admin"), "{row:?}");
    }

    #[test]
    fn full_catalog_detects_every_authorization_mutant() {
        let matrix = run_kill_matrix(&full_catalog());
        assert_eq!(matrix.total(), 37);
        for row in &matrix.rows {
            if row.class.is_authorization() {
                assert_eq!(
                    row.status,
                    Detection::Detected,
                    "authorization mutant survived: {}",
                    row.mutant_id
                );
            }
            // Nothing in-process can go degraded.
            assert_ne!(row.status, Detection::Degraded, "{}", row.mutant_id);
        }
        assert!(matrix.score() >= 0.85, "{matrix}");
        // Every class appears in the per-class rates.
        assert_eq!(matrix.by_class().len(), OperatorClass::ALL.len());
    }

    #[test]
    fn json_roundtrip_preserves_rows() {
        let matrix = run_kill_matrix(&paper_mutants());
        let text = matrix.to_json().to_pretty_string();
        let parsed = KillMatrix::from_json(&parse_json(&text).unwrap()).unwrap();
        assert_eq!(parsed, matrix);
    }

    #[test]
    fn from_json_rejects_malformed_payloads() {
        assert!(KillMatrix::from_json(&Json::Null).is_err());
        let missing_mutants = Json::object(vec![
            ("requirements", Json::Array(vec![])),
            ("roles", Json::Array(vec![])),
        ]);
        assert!(KillMatrix::from_json(&missing_mutants).is_err());
        let bad_class = parse_json(
            r#"{"requirements":[],"roles":[],"mutants":[{"id":"m","class":"nope",
                "status":"missed","detected_by":[],"degraded_on":[],
                "killed_by_roles":[],"killing_scenarios":[]}]}"#,
        )
        .unwrap();
        assert!(KillMatrix::from_json(&bad_class)
            .unwrap_err()
            .contains("unknown operator class"));
    }

    #[test]
    fn diff_flags_lost_detection_as_regression() {
        let baseline = run_kill_matrix(&paper_mutants());
        let mut current = baseline.clone();
        assert!(current.diff(&baseline).is_clean());

        current.rows[0].status = Detection::Missed;
        current.rows[0].detected_by.clear();
        let diff = current.diff(&baseline);
        assert!(diff.is_regression());
        assert!(diff.render().contains("REGRESSION"), "{}", diff.render());

        // The opposite direction is an improvement, not a regression.
        let diff_back = baseline.diff(&current);
        assert!(!diff_back.is_regression());
        assert!(!diff_back.improvements.is_empty());

        // A vanished detected mutant is a regression too.
        let mut shrunk = baseline.clone();
        shrunk.rows.remove(0);
        let diff_shrunk = shrunk.diff(&baseline);
        assert!(diff_shrunk.is_regression());

        // A degraded mutant is not a kill.
        let mut degraded = baseline.clone();
        degraded.rows[1].status = Detection::Degraded;
        degraded.rows[1].detected_by.clear();
        assert!(degraded.diff(&baseline).is_regression());
    }

    #[test]
    fn render_draws_requirement_columns() {
        let matrix = run_kill_matrix(&paper_mutants());
        let text = matrix.render();
        assert!(text.contains("| 1.4 |"), "{text}");
        assert!(text.contains("detected"), "{text}");
        assert!(text.contains("Per-operator kill rates"), "{text}");
        assert!(text.contains("Overall: 3/3"), "{text}");
    }
}
