//! The mutation campaign runner and kill-matrix reporting.
//!
//! Reproduces Section VI-D quantitatively: each mutant cloud is exercised
//! by the monitor-as-test-oracle suite; a mutant is **killed** when at
//! least one scenario yields a violation verdict. The paper reports 3/3
//! mutants killed; the extended campaign reports a kill matrix per
//! operator class.

use crate::catalog::{Mutant, OperatorClass};
use cm_cloudsim::PrivateCloud;
use cm_core::TestOracle;
use std::fmt;
use std::fmt::Write as _;

/// Result for one mutant.
#[derive(Debug, Clone, PartialEq)]
pub struct MutantResult {
    /// The mutant.
    pub mutant: Mutant,
    /// Whether the oracle killed it.
    pub killed: bool,
    /// Names of the scenarios that detected it.
    pub killing_scenarios: Vec<String>,
    /// Verdicts of the killing scenarios (parallel to
    /// `killing_scenarios`).
    pub verdicts: Vec<String>,
}

/// The whole campaign's outcome.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CampaignResult {
    /// Per-mutant rows, in catalog order.
    pub rows: Vec<MutantResult>,
}

impl CampaignResult {
    /// Number of mutants exercised.
    #[must_use]
    pub fn total(&self) -> usize {
        self.rows.len()
    }

    /// Number of mutants killed.
    #[must_use]
    pub fn killed(&self) -> usize {
        self.rows.iter().filter(|r| r.killed).count()
    }

    /// Mutation score (`killed / total`, `1.0` when empty).
    #[must_use]
    pub fn score(&self) -> f64 {
        if self.rows.is_empty() {
            return 1.0;
        }
        self.killed() as f64 / self.total() as f64
    }

    /// Surviving mutants.
    #[must_use]
    pub fn survivors(&self) -> Vec<&MutantResult> {
        self.rows.iter().filter(|r| !r.killed).collect()
    }

    /// `(killed, total)` per operator class, in [`OperatorClass::ALL`]
    /// order, skipping classes with no mutants.
    #[must_use]
    pub fn by_class(&self) -> Vec<(OperatorClass, usize, usize)> {
        OperatorClass::ALL
            .iter()
            .filter_map(|class| {
                let rows: Vec<&MutantResult> = self
                    .rows
                    .iter()
                    .filter(|r| r.mutant.class == *class)
                    .collect();
                if rows.is_empty() {
                    return None;
                }
                let killed = rows.iter().filter(|r| r.killed).count();
                Some((*class, killed, rows.len()))
            })
            .collect()
    }

    /// Score over authorization operators only (the paper's focus).
    #[must_use]
    pub fn authorization_score(&self) -> f64 {
        let rows: Vec<&MutantResult> = self
            .rows
            .iter()
            .filter(|r| r.mutant.class.is_authorization())
            .collect();
        if rows.is_empty() {
            return 1.0;
        }
        rows.iter().filter(|r| r.killed).count() as f64 / rows.len() as f64
    }

    /// Render the kill matrix as an ASCII report.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "| {:<28} | {:<22} | {:<8} | {:<40} |",
            "Mutant", "Operator", "Killed", "First killing scenario"
        );
        let _ = writeln!(
            out,
            "|{}|{}|{}|{}|",
            "-".repeat(30),
            "-".repeat(24),
            "-".repeat(10),
            "-".repeat(42)
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "| {:<28} | {:<22} | {:<8} | {:<40} |",
                r.mutant.id,
                r.mutant.class.name(),
                if r.killed { "KILLED" } else { "survived" },
                r.killing_scenarios.first().map_or("-", String::as_str),
            );
        }
        let _ = writeln!(out);
        let _ = writeln!(out, "Per-operator kill rates:");
        for (class, killed, total) in self.by_class() {
            let _ = writeln!(
                out,
                "  {:<22} {killed}/{total} ({:.0}%)",
                class.name(),
                100.0 * killed as f64 / total as f64
            );
        }
        let _ = writeln!(
            out,
            "Overall: {}/{} killed ({:.0}%); authorization operators: {:.0}%",
            self.killed(),
            self.total(),
            self.score() * 100.0,
            self.authorization_score() * 100.0
        );
        out
    }
}

impl fmt::Display for CampaignResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Run the oracle suite over each mutant cloud.
///
/// The baseline (fault-free) cloud must survive — a campaign over a
/// harness with false positives is meaningless — so this runs the suite
/// once on the correct cloud first and panics on a harness defect.
///
/// # Panics
///
/// Panics if the fault-free cloud produces violation verdicts.
#[must_use]
pub fn run_campaign(mutants: &[Mutant]) -> CampaignResult {
    let oracle = TestOracle;
    let baseline = oracle.run(PrivateCloud::my_project);
    assert!(
        !baseline.killed(),
        "oracle produced false positives on the correct cloud:\n{baseline}"
    );

    let mut result = CampaignResult::default();
    for mutant in mutants {
        let plan = mutant.plan.clone();
        let report = oracle.run(|| PrivateCloud::my_project().with_faults(plan.clone()));
        let killing: Vec<(String, String)> = report
            .violations()
            .iter()
            .map(|s| (s.name.clone(), s.verdict.to_string()))
            .collect();
        result.rows.push(MutantResult {
            mutant: mutant.clone(),
            killed: !killing.is_empty(),
            killing_scenarios: killing.iter().map(|(n, _)| n.clone()).collect(),
            verdicts: killing.into_iter().map(|(_, v)| v).collect(),
        });
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{paper_mutants, standard_catalog};

    #[test]
    fn all_three_paper_mutants_are_killed() {
        // The paper's headline result: "we were able to kill all three
        // mutants systematically introduced in the cloud implementation".
        let result = run_campaign(&paper_mutants());
        assert_eq!(result.total(), 3);
        assert_eq!(result.killed(), 3, "{result}");
        assert!((result.score() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn extended_campaign_kills_all_authorization_mutants() {
        let result = run_campaign(&standard_catalog());
        assert!(
            result.authorization_score() >= 0.999,
            "authorization mutants survived:\n{result}"
        );
        // Overall score is high; any survivor must be a non-authorization
        // operator whose effect the model abstracts away.
        assert!(result.score() >= 0.85, "{result}");
        for survivor in result.survivors() {
            assert!(
                !survivor.mutant.class.is_authorization(),
                "authorization mutant survived: {}",
                survivor.mutant.id
            );
        }
    }

    #[test]
    fn kill_matrix_renders() {
        let result = run_campaign(&paper_mutants());
        let text = result.render();
        assert!(text.contains("P1-delete-role-widened"));
        assert!(text.contains("KILLED"));
        assert!(text.contains("Per-operator kill rates"));
        assert!(text.contains("Overall: 3/3"));
    }

    #[test]
    fn by_class_partitions_rows() {
        let result = run_campaign(&paper_mutants());
        let by_class = result.by_class();
        let total: usize = by_class.iter().map(|(_, _, t)| t).sum();
        assert_eq!(total, result.total());
    }
}

/// Run the *extended* oracle suite (volumes + snapshots) over each mutant.
///
/// # Panics
///
/// As [`run_campaign`]: panics if the fault-free cloud is not clean.
#[must_use]
pub fn run_extended_campaign(mutants: &[Mutant]) -> CampaignResult {
    let oracle = TestOracle;
    let baseline = oracle.run_extended(PrivateCloud::my_project);
    assert!(
        !baseline.killed(),
        "extended oracle produced false positives on the correct cloud:\n{baseline}"
    );
    let mut result = CampaignResult::default();
    for mutant in mutants {
        let plan = mutant.plan.clone();
        let report = oracle.run_extended(|| PrivateCloud::my_project().with_faults(plan.clone()));
        let killing: Vec<(String, String)> = report
            .violations()
            .iter()
            .map(|s| (s.name.clone(), s.verdict.to_string()))
            .collect();
        result.rows.push(MutantResult {
            mutant: mutant.clone(),
            killed: !killing.is_empty(),
            killing_scenarios: killing.iter().map(|(n, _)| n.clone()).collect(),
            verdicts: killing.into_iter().map(|(_, v)| v).collect(),
        });
    }
    result
}

#[cfg(test)]
mod extended_campaign_tests {
    use super::*;
    use crate::catalog::snapshot_catalog;

    #[test]
    fn all_snapshot_mutants_killed_by_extended_suite() {
        let result = run_extended_campaign(&snapshot_catalog());
        assert_eq!(
            result.killed(),
            result.total(),
            "snapshot mutants survived:\n{result}"
        );
    }
}
