//! # cm-mutation — the Section VI-D mutation experiment, systematised
//!
//! The paper validates its cloud monitor by injecting three
//! wrong-authorization errors into the OpenStack deployment and showing
//! the monitor kills all three. This crate reproduces that experiment and
//! generalises it:
//!
//! * [`paper_mutants`] — the three named mutants of Section VI-D;
//! * [`standard_catalog`] — a systematic catalog over eight operator
//!   classes (policy widening/narrowing, missing/inverted checks, dropped
//!   functional checks, wrong status codes, lost updates);
//! * [`run_campaign`] — runs the monitor-as-test-oracle suite over every
//!   mutant cloud and reports a kill matrix with per-operator rates;
//! * [`run_kill_matrix`] — the full campaign: the entire catalog across
//!   every RBAC role, producing a requirement × mutant kill matrix with
//!   a `KILL_MATRIX.json` artifact and baseline diffing for CI gating.
//!
//! ## Example
//!
//! ```
//! use cm_mutation::{paper_mutants, run_campaign};
//!
//! let result = run_campaign(&paper_mutants());
//! assert_eq!(result.killed(), 3); // the paper's 3/3
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod campaign;
pub mod catalog;
pub mod matrix;

pub use campaign::{run_campaign, run_extended_campaign, CampaignResult, MutantResult};
pub use catalog::{paper_mutants, snapshot_catalog, standard_catalog, Mutant, OperatorClass};
pub use matrix::{full_catalog, run_kill_matrix, Detection, KillMatrix, MatrixDiff, MatrixRow};
