//! Concurrent-throughput experiment — the payoff of `process(&self)`.
//!
//! Eight client threads drive eight *disjoint* projects through the
//! monitor over live TCP, against a cloud whose every modelled action
//! carries a 1 ms injected service delay (so throughput is bounded by
//! backend latency, exactly the regime the paper's proxy deployment
//! lives in — not by CPU, which matters on single-core CI runners).
//!
//! Two monitor deployments are compared on identical fixtures:
//!
//! * **baseline** — the pre-refactor shape: one `Arc<Mutex<CloudMonitor>>`
//!   in front of the server, every request serialized through the lock;
//! * **sharded**  — the current shape: a bare `Arc<CloudMonitor>` whose
//!   `process(&self)` serializes per resource shard only, so disjoint
//!   projects proceed in parallel.
//!
//! Results land in `BENCH_concurrent_throughput.json` at the repo root.
//! The run fails if the sharded monitor is not at least 3x faster.

use cm_cloudsim::{Fault, FaultPlan, PrivateCloud};
use cm_core::{CloudMonitor, Mode};
use cm_httpkit::{send, HttpServer, RemoteService};
use cm_model::{cinder, HttpMethod};
use cm_rest::{RestRequest, RestService, SharedRestService};
use std::sync::{Arc, Mutex};
use std::time::Instant;

const THREADS: usize = 8;
const REQUESTS_PER_THREAD: usize = 20;

/// A monitored multi-project cloud over live TCP: the cloud server, the
/// monitor wrapping it remotely (authenticated into every project), and
/// one scoped client token per project.
struct Fixture {
    cloud_server: HttpServer,
    monitor: CloudMonitor<RemoteService>,
    tokens: Vec<String>,
}

fn fixture() -> Fixture {
    let plan = FaultPlan::single(Fault::Delay {
        action: "*".into(),
        millis: 1,
    });
    let cloud = PrivateCloud::multi_project(THREADS).with_faults(plan);
    let mut tokens = Vec::new();
    for pid in 1..=THREADS as u64 {
        // Strided id allocation makes the seeded volume's id equal the
        // project id.
        cloud
            .state_of(pid)
            .create_volume(pid, "bench", 1, false)
            .expect("seed volume");
        tokens.push(
            cloud
                .issue_token_scoped("alice", "alice-pw", pid)
                .expect("fixture credentials")
                .token,
        );
    }
    let cloud = Arc::new(cloud);
    let cloud_handle = Arc::clone(&cloud);
    let cloud_server =
        HttpServer::bind("127.0.0.1:0", Arc::new(move |req| cloud_handle.call(&req)))
            .expect("bind cloud server");
    let remote = RemoteService::new(cloud_server.local_addr());
    let mut monitor = CloudMonitor::generate(
        &cinder::resource_model(),
        &cinder::behavioral_model(),
        None,
        remote,
    )
    .expect("fixture models generate")
    .mode(Mode::Enforce);
    for pid in 1..=THREADS as u64 {
        monitor
            .authenticate_scoped("alice", "alice-pw", pid)
            .expect("fixture admin");
    }
    Fixture {
        cloud_server,
        monitor,
        tokens,
    }
}

/// Drive `THREADS x REQUESTS_PER_THREAD` authorized volume reads, one
/// thread per project, against a monitor served at `addr`. Returns the
/// wall-clock seconds for the whole batch.
fn drive(addr: std::net::SocketAddr, tokens: &[String]) -> f64 {
    let start = Instant::now();
    let clients: Vec<_> = tokens
        .iter()
        .enumerate()
        .map(|(i, token)| {
            let pid = i as u64 + 1;
            let token = token.clone();
            std::thread::spawn(move || {
                for _ in 0..REQUESTS_PER_THREAD {
                    let resp = send(
                        addr,
                        &RestRequest::new(HttpMethod::Get, format!("/v3/{pid}/volumes/{pid}"))
                            .auth_token(&token),
                    )
                    .expect("live response");
                    assert!(resp.status.is_success(), "{resp:?}");
                }
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread");
    }
    start.elapsed().as_secs_f64()
}

fn main() {
    let total = (THREADS * REQUESTS_PER_THREAD) as f64;

    // Baseline: the whole monitor behind one mutex, as `cmcli serve`
    // shipped before the sharded-locking refactor.
    let f = fixture();
    let baseline = Arc::new(Mutex::new(f.monitor));
    let handle = Arc::clone(&baseline);
    let server = HttpServer::bind(
        "127.0.0.1:0",
        Arc::new(move |req| handle.lock().unwrap().handle(&req)),
    )
    .expect("bind monitor server");
    let baseline_secs = drive(server.local_addr(), &f.tokens);
    server.shutdown();
    f.cloud_server.shutdown();
    let baseline_rps = total / baseline_secs;

    // Sharded: the same monitor shared without any outer lock.
    let f = fixture();
    let monitor = Arc::new(f.monitor);
    let handle = Arc::clone(&monitor);
    let server = HttpServer::bind("127.0.0.1:0", Arc::new(move |req| handle.call(&req)))
        .expect("bind monitor server");
    let sharded_secs = drive(server.local_addr(), &f.tokens);
    server.shutdown();
    f.cloud_server.shutdown();
    let sharded_rps = total / sharded_secs;

    let speedup = sharded_rps / baseline_rps;
    println!("CONCURRENT THROUGHPUT ({THREADS} threads x {REQUESTS_PER_THREAD} requests, disjoint projects, 1ms backend delay)");
    println!();
    println!("  single-mutex baseline : {baseline_rps:8.1} req/s  ({baseline_secs:.3}s)");
    println!("  sharded &self monitor : {sharded_rps:8.1} req/s  ({sharded_secs:.3}s)");
    println!("  speedup               : {speedup:8.2}x");

    let json = format!(
        "{{\n  \"benchmark\": \"concurrent_throughput\",\n  \"threads\": {THREADS},\n  \
         \"requests_per_thread\": {REQUESTS_PER_THREAD},\n  \"backend_delay_ms\": 1,\n  \
         \"baseline_rps\": {baseline_rps:.1},\n  \"sharded_rps\": {sharded_rps:.1},\n  \
         \"speedup\": {speedup:.2}\n}}\n"
    );
    let out = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_concurrent_throughput.json"
    );
    std::fs::write(out, json).expect("write benchmark artifact");
    println!();
    println!("wrote {out}");

    assert!(
        speedup >= 3.0,
        "sharded monitor must be at least 3x the mutexed baseline, got {speedup:.2}x"
    );
}
