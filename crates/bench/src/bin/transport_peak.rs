//! Transport-peak probe: isolates where each microsecond of the proxy
//! topology goes. Three rungs, fastest first:
//!
//! 1. `echo` — a trivial handler on the reactor, pipelined clients: the
//!    raw transport ceiling.
//! 2. `deny` — the generated monitor, all-forbidden mix (no cloud hop):
//!    transport + contract evaluation.
//! 3. `proxy` — the full two-hop mix: adds the monitor→cloud probes.
//!
//! Prints req/s per rung; no artifact. Used to attribute regressions.

use cm_cloudsim::PrivateCloud;
use cm_core::{cinder_monitor, Mode, SnapshotPolicy};
use cm_httpkit::{
    read_response_buf, serialize_request, ConnectionMode, HttpServer, RemoteService, ServerConfig,
    Transport,
};
use cm_model::HttpMethod;
use cm_rest::{Json, RestRequest, RestResponse, SharedRestService};
use std::io::{BufReader, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

const THREADS: usize = 8;
const BATCH: usize = 32;

fn hammer(
    addr: SocketAddr,
    per_thread: usize,
    make: impl Fn(usize, usize) -> RestRequest + Send + Sync + 'static,
) -> f64 {
    let make = Arc::new(make);
    let start = Instant::now();
    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let make = Arc::clone(&make);
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                stream
                    .set_read_timeout(Some(Duration::from_secs(30)))
                    .expect("timeout");
                let mut writer = stream.try_clone().expect("clone");
                let mut reader = BufReader::new(stream);
                let mut wire = Vec::new();
                let mut issued = 0;
                while issued < per_thread {
                    let batch = BATCH.min(per_thread - issued);
                    wire.clear();
                    for i in issued..issued + batch {
                        serialize_request(&mut wire, &make(t, i), ConnectionMode::KeepAlive);
                    }
                    writer.write_all(&wire).expect("write");
                    for _ in 0..batch {
                        read_response_buf(&mut reader).expect("response");
                    }
                    issued += batch;
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("thread");
    }
    (THREADS * per_thread) as f64 / start.elapsed().as_secs_f64()
}

fn config() -> ServerConfig {
    ServerConfig {
        transport: Transport::Reactor,
        max_requests_per_conn: 1 << 20,
        ..ServerConfig::default()
    }
}

fn main() {
    let per_thread: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4000);
    // Optional rung filter: run only rungs whose label contains the
    // second argument (e.g. `transport_peak 6000 read`).
    let only: Option<String> = std::env::args().nth(2);
    let want = |label: &str| only.as_deref().is_none_or(|o| label.contains(o));

    // Rung 1: echo.
    let echo = HttpServer::bind_with(
        "127.0.0.1:0",
        Arc::new(|_req| RestResponse::ok(Json::Bool(true))),
        config(),
    )
    .expect("bind echo");
    if want("echo") {
        let rps = hammer(echo.local_addr(), per_thread, |t, i| {
            RestRequest::new(HttpMethod::Get, format!("/echo/{t}/{i}"))
        });
        echo.shutdown();
        println!("echo  (reactor transport ceiling) : {rps:8.0} req/s");
    }

    // Shared fixture for the monitor rungs.
    let cloud = PrivateCloud::my_project();
    let pid = cloud.project_id();
    let alice = cloud.issue_token("alice", "alice-pw").expect("tok").token;
    let carol = cloud.issue_token("carol", "carol-pw").expect("tok").token;
    cloud
        .state_mut()
        .create_volume(pid, "seed", 1, false)
        .expect("seed");
    let cloud = Arc::new(cloud);
    let cloud_handle = Arc::clone(&cloud);
    let cloud_server = HttpServer::bind_with(
        "127.0.0.1:0",
        Arc::new(move |req| cloud_handle.call(&req)),
        config(),
    )
    .expect("bind cloud");
    let mut monitor = cinder_monitor(RemoteService::new(cloud_server.local_addr()))
        .expect("models")
        .mode(Mode::Enforce)
        .snapshot_policy(SnapshotPolicy::Scoped)
        .report_states(false)
        .speculative_reads(true);
    monitor.authenticate("alice", "alice-pw").expect("auth");
    let monitor = Arc::new(monitor);
    let monitor_handle = Arc::clone(&monitor);
    let monitor_server = HttpServer::bind_with(
        "127.0.0.1:0",
        Arc::new(move |req| monitor_handle.call(&req)),
        config(),
    )
    .expect("bind monitor");
    let addr = monitor_server.local_addr();

    // Rung 1b: the cloud-sim itself over the reactor — what each probe
    // GET costs the backend.
    let cloud_addr = cloud_server.local_addr();
    if want("cloud") {
        let alice3 = alice.clone();
        let rps = hammer(cloud_addr, per_thread, move |_t, _i| {
            RestRequest::new(HttpMethod::Get, format!("/v3/{pid}/volumes/1")).auth_token(&alice3)
        });
        println!("cloud (probe GET on cloud-sim)    : {rps:8.0} req/s");
        let alice4 = alice.clone();
        let rps = hammer(cloud_addr, per_thread, move |_t, _i| {
            RestRequest::new(HttpMethod::Get, format!("/v3/{pid}/volumes")).auth_token(&alice4)
        });
        println!("cloud (volumes listing)           : {rps:8.0} req/s");
        let alice5 = alice.clone();
        let rps = hammer(cloud_addr, per_thread, move |_t, _i| {
            RestRequest::new(HttpMethod::Get, format!("/identity/tokens/{alice5}"))
        });
        println!("cloud (token introspection)       : {rps:8.0} req/s");
    }

    // Rung 0: monitor over an *in-process* cloud — no backend network
    // hop at all; isolates contract evaluation + snapshot compute.
    let local_cloud = PrivateCloud::my_project();
    let lpid = local_cloud.project_id();
    let lalice = local_cloud
        .issue_token("alice", "alice-pw")
        .expect("tok")
        .token;
    local_cloud
        .state_mut()
        .create_volume(lpid, "seed", 1, false)
        .expect("seed");
    let mut local_monitor = cinder_monitor(local_cloud)
        .expect("models")
        .mode(Mode::Enforce)
        .snapshot_policy(SnapshotPolicy::Scoped)
        .report_states(false)
        .speculative_reads(true);
    local_monitor
        .authenticate("alice", "alice-pw")
        .expect("auth");
    let local_monitor = Arc::new(local_monitor);
    let lm = Arc::clone(&local_monitor);
    let local_server =
        HttpServer::bind_with("127.0.0.1:0", Arc::new(move |req| lm.call(&req)), config())
            .expect("bind local monitor");
    if want("local") {
        let rps = hammer(local_server.local_addr(), per_thread, move |_t, _i| {
            RestRequest::new(HttpMethod::Get, format!("/v3/{lpid}/volumes/1")).auth_token(&lalice)
        });
        local_server.shutdown();
        println!("local (monitor, in-process cloud) : {rps:8.0} req/s");
    }

    // Rung 2: all requests denied locally — no cloud hop.
    if want("deny") {
        let carol2 = carol.clone();
        let rps = hammer(addr, per_thread, move |_t, _i| {
            RestRequest::new(HttpMethod::Delete, format!("/v3/{pid}/volumes/1")).auth_token(&carol2)
        });
        println!("deny  (monitor, no cloud hop)     : {rps:8.0} req/s");
    }

    // Rung 2b: authorized read — cloud probe path only.
    if want("read") {
        let alice2 = alice.clone();
        let rps = hammer(addr, per_thread, move |_t, _i| {
            RestRequest::new(HttpMethod::Get, format!("/v3/{pid}/volumes/1")).auth_token(&alice2)
        });
        println!("read  (monitor + cloud probe)     : {rps:8.0} req/s");
    }

    // Rung 2c: unmodelled passthrough — pure proxy hop.
    if want("pass") {
        let rps = hammer(addr, per_thread, |t, i| {
            RestRequest::new(HttpMethod::Get, format!("/unmodelled/{t}/{i}"))
        });
        println!("pass  (unmodelled passthrough)    : {rps:8.0} req/s");
    }

    // Rung 3: the full bench mix.
    if want("mix") {
        let rps = hammer(addr, per_thread, move |t, i| match (t + i) % 3 {
            0 => {
                RestRequest::new(HttpMethod::Get, format!("/v3/{pid}/volumes/1")).auth_token(&alice)
            }
            1 => RestRequest::new(HttpMethod::Delete, format!("/v3/{pid}/volumes/1"))
                .auth_token(&carol),
            _ => RestRequest::new(HttpMethod::Get, format!("/unmodelled/{t}/{i}")),
        });
        println!("mix   (full bench mix)            : {rps:8.0} req/s");
    }

    for line in monitor.metrics().render_text().lines() {
        if line.contains("p50") || line.contains("us") || line.contains("latency") {
            println!("  {line}");
        }
    }

    monitor_server.shutdown();
    cloud_server.shutdown();
}
