//! Contract-evaluation experiment — the payoff of the compile pipeline.
//!
//! Two comparisons on the extended Cinder scenario (volumes + snapshots,
//! seven method contracts):
//!
//! * **interpreter vs compiled** — one "request's worth" of contract
//!   work per iteration (pre-condition, exercised requirements,
//!   post-condition) for every contract, through the tree-walking
//!   [`cm_contracts::MethodContract`] interpreter and through the interned
//!   [`cm_contracts::CompiledContractSet`] programs with a reused
//!   [`cm_ocl::EvalScratch`];
//! * **full vs scoped snapshot** — the probe round-trips and wall-clock
//!   of [`StateProber::snapshot_checked`] against
//!   [`StateProber::snapshot_attrs`] driven by the compiled
//!   `DELETE(volume)` pre-scope.
//!
//! Results land in `BENCH_contract_eval.json` at the repo root. The run
//! fails if the compiled pipeline is not at least 2x the interpreter.
//! `--smoke` runs a handful of iterations, writes the artifact to
//! `BENCH_contract_eval.smoke.json` instead, and skips the speedup
//! assertion (used by `ci.sh` to keep CI fast and load-tolerant).

use cm_cloudsim::PrivateCloud;
use cm_core::{cinder_monitor_extended, ProbeTarget, StateProber};
use cm_ocl::{EnvView, EvalScratch};
use cm_rest::SharedRestService;
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Counts the probe round-trips a snapshot costs.
struct CountingCloud {
    inner: PrivateCloud,
    hits: AtomicU64,
}

impl SharedRestService for CountingCloud {
    fn call(&self, request: &cm_rest::RestRequest) -> cm_rest::RestResponse {
        self.hits.fetch_add(1, Ordering::Relaxed);
        self.inner.call(request)
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let eval_iters: u32 = if smoke { 5 } else { 2_000 };
    let snap_iters: u32 = if smoke { 5 } else { 500 };

    // The monitor is only borrowed for its generated artefacts: the
    // merged interpreter contract set and its compiled counterpart.
    let monitor = cinder_monitor_extended(PrivateCloud::my_project()).expect("models generate");
    let contracts = monitor.contracts();
    let compiled = monitor.compiled_contracts();
    let syms = compiled.symbols();

    // A second, identical cloud provides the evaluation environments:
    // one seeded volume carrying one snapshot, probed with admin
    // authority exactly as the monitor would.
    let cloud = PrivateCloud::my_project();
    let pid = cloud.project_id();
    let vid = cloud
        .state_mut()
        .create_volume(pid, "bench", 1, false)
        .expect("seed volume")
        .id;
    let sid = cloud
        .state_mut()
        .create_snapshot(pid, vid, "bench-snap")
        .expect("seed snapshot")
        .id;
    let admin = cloud
        .issue_token("alice", "alice-pw")
        .expect("fixture credentials")
        .token;
    let target = ProbeTarget {
        project_id: pid,
        volume_id: Some(vid),
        snapshot_id: Some(sid),
        user_token: admin.clone(),
        monitor_token: admin,
    };
    let prober = StateProber::default();
    let pre_state = prober.snapshot(&cloud, &target);
    let post_state = prober.snapshot(&cloud, &target);

    // Parity first: on this environment, the compiled programs must give
    // the interpreter's verdicts contract for contract.
    let mut scratch = EvalScratch::new();
    for (c, cc) in contracts.contracts.iter().zip(compiled.contracts()) {
        let pre_view = EnvView::from_navigator(&pre_state, syms);
        let post_view = EnvView::from_navigator(&post_state, syms);
        cc.begin_pre(&mut scratch);
        assert_eq!(
            c.evaluate_pre(&pre_state).ok(),
            cc.evaluate_pre(syms, &pre_view, &mut scratch).ok(),
            "pre parity for {}",
            c.trigger
        );
        cc.begin_post(&mut scratch);
        assert_eq!(
            c.evaluate_post(&post_state, &pre_state).ok(),
            cc.evaluate_post(syms, &post_view, &pre_view, &mut scratch)
                .ok(),
            "post parity for {}",
            c.trigger
        );
    }

    // One "request's worth" of interpreter work: tree-walk every
    // contract's pre, requirements, post.
    let interp_pass = |n: u32| {
        for _ in 0..n {
            for c in &contracts.contracts {
                black_box(c.evaluate_pre(&pre_state).ok());
                black_box(c.exercised_requirements(&pre_state).ok());
                black_box(c.evaluate_post(&post_state, &pre_state).ok());
            }
        }
    };
    // The same work through the interned programs. View construction is
    // inside the loop — the monitor rebuilds views per request too.
    let mut compiled_pass = |n: u32| {
        for _ in 0..n {
            let pre_view = EnvView::from_navigator(&pre_state, syms);
            let post_view = EnvView::from_navigator(&post_state, syms);
            for cc in compiled.contracts() {
                cc.begin_pre(&mut scratch);
                black_box(cc.evaluate_pre(syms, &pre_view, &mut scratch).ok());
                black_box(
                    cc.enabled_clause_indices(syms, &pre_view, &mut scratch)
                        .ok(),
                );
                cc.begin_post(&mut scratch);
                black_box(
                    cc.evaluate_post(syms, &post_view, &pre_view, &mut scratch)
                        .ok(),
                );
            }
        }
    };

    // Interleave timed chunks (after a warmup of each) so frequency
    // scaling and cache drift hit both pipelines equally.
    let chunks = 10;
    let per_chunk = (eval_iters / chunks).max(1);
    interp_pass(per_chunk);
    compiled_pass(per_chunk);
    let mut interp_secs = 0.0;
    let mut compiled_secs = 0.0;
    for _ in 0..chunks {
        let start = Instant::now();
        interp_pass(per_chunk);
        interp_secs += start.elapsed().as_secs_f64();
        let start = Instant::now();
        compiled_pass(per_chunk);
        compiled_secs += start.elapsed().as_secs_f64();
    }
    let eval_iters = per_chunk * chunks;

    let per_iter_contracts = contracts.contracts.len() as f64;
    let interp_us = interp_secs * 1e6 / f64::from(eval_iters) / per_iter_contracts;
    let compiled_us = compiled_secs * 1e6 / f64::from(eval_iters) / per_iter_contracts;
    let eval_speedup = interp_secs / compiled_secs;

    // Snapshot comparison: full probing vs the DELETE(volume) pre-scope.
    let counting = CountingCloud {
        inner: cloud,
        hits: AtomicU64::new(0),
    };
    let delete_volume = compiled
        .contracts()
        .iter()
        .find(|c| c.trigger.to_string() == "DELETE(volume)")
        .expect("modelled trigger");
    let scope = delete_volume.pre_scope();

    counting.hits.store(0, Ordering::Relaxed);
    let start = Instant::now();
    for _ in 0..snap_iters {
        black_box(prober.snapshot_checked(&counting, &target));
    }
    let full_secs = start.elapsed().as_secs_f64();
    let full_probes = counting.hits.load(Ordering::Relaxed) / u64::from(snap_iters);

    counting.hits.store(0, Ordering::Relaxed);
    let start = Instant::now();
    for _ in 0..snap_iters {
        black_box(prober.snapshot_attrs(&counting, &target, scope));
    }
    let scoped_secs = start.elapsed().as_secs_f64();
    let scoped_probes = counting.hits.load(Ordering::Relaxed) / u64::from(snap_iters);
    let snap_speedup = full_secs / scoped_secs;

    println!("CONTRACT EVALUATION ({eval_iters} iters x {per_iter_contracts} contracts: pre + requirements + post)");
    println!();
    println!("  interpreter : {interp_us:8.2} us/contract");
    println!("  compiled    : {compiled_us:8.2} us/contract");
    println!("  speedup     : {eval_speedup:8.2}x");
    println!();
    println!("SNAPSHOT ({snap_iters} iters, DELETE(volume) pre-scope)");
    println!();
    println!(
        "  full   : {:8.2} us, {full_probes} probe requests",
        full_secs * 1e6 / f64::from(snap_iters)
    );
    println!(
        "  scoped : {:8.2} us, {scoped_probes} probe requests",
        scoped_secs * 1e6 / f64::from(snap_iters)
    );
    println!("  speedup: {snap_speedup:8.2}x");

    let json = format!(
        "{{\n  \"benchmark\": \"contract_eval\",\n  \"smoke\": {smoke},\n  \"eval_iters\": {eval_iters},\n  \
         \"contracts\": {per_iter_contracts},\n  \"interpreter_us_per_contract\": {interp_us:.2},\n  \
         \"compiled_us_per_contract\": {compiled_us:.2},\n  \"eval_speedup\": {eval_speedup:.2},\n  \
         \"snapshot_iters\": {snap_iters},\n  \"full_snapshot_probes\": {full_probes},\n  \
         \"scoped_snapshot_probes\": {scoped_probes},\n  \"snapshot_speedup\": {snap_speedup:.2}\n}}\n"
    );
    // Smoke runs (CI) keep their numbers out of the committed-artifact
    // namespace — they land in *.smoke.json, which the workflow uploads
    // and .gitignore hides.
    let out = if smoke {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_contract_eval.smoke.json"
        )
    } else {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_contract_eval.json"
        )
    };
    std::fs::write(out, json).expect("write benchmark artifact");
    println!();
    println!("wrote {out}");

    if smoke {
        println!("smoke mode: skipping speedup assertion");
        return;
    }

    assert!(
        eval_speedup >= 2.0,
        "compiled pipeline must be at least 2x the interpreter, got {eval_speedup:.2}x"
    );
}
