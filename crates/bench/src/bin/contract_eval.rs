//! Contract-evaluation experiment — the payoff of the compile pipeline.
//!
//! Two comparisons on the extended Cinder scenario (volumes + snapshots,
//! seven method contracts):
//!
//! * **interpreter vs compiled** — one "request's worth" of contract
//!   work per iteration (pre-condition, exercised requirements,
//!   post-condition) for every contract, through the tree-walking
//!   [`cm_contracts::MethodContract`] interpreter and through the interned
//!   [`cm_contracts::CompiledContractSet`] programs with a reused
//!   [`cm_ocl::EvalScratch`];
//! * **full vs scoped snapshot** — the probe round-trips and wall-clock
//!   of [`StateProber::snapshot_checked`] against
//!   [`StateProber::snapshot_attrs`] driven by the compiled
//!   `DELETE(volume)` pre-scope;
//! * **replica vs scoped monitoring** — a full authorized request mix
//!   through two monitors, one probing a scoped snapshot per request
//!   and one binding the evaluation environment from the model-derived
//!   shadow replica. The replica side must serve steady state with
//!   **zero** probe GETs per request, agree with the scoped oracle
//!   verdict for verdict, and (non-smoke) be at least 1.5x faster.
//!
//! Results land in `BENCH_contract_eval.json` at the repo root. The run
//! fails if the compiled pipeline is not at least 2x the interpreter.
//! `--smoke` runs a handful of iterations, writes the artifact to
//! `BENCH_contract_eval.smoke.json` instead, and skips the speedup
//! assertions (used by `ci.sh` to keep CI fast and load-tolerant).

use cm_cloudsim::PrivateCloud;
use cm_core::{
    cinder_monitor_extended, CloudMonitor, Mode, ProbeTarget, SnapshotPolicy, StateProber,
};
use cm_model::HttpMethod;
use cm_ocl::{EnvView, EvalScratch};
use cm_rest::{Json, RestRequest, SharedRestService};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Counts the probe round-trips a snapshot costs.
struct CountingCloud {
    inner: PrivateCloud,
    hits: AtomicU64,
}

impl SharedRestService for CountingCloud {
    fn call(&self, request: &cm_rest::RestRequest) -> cm_rest::RestResponse {
        self.hits.fetch_add(1, Ordering::Relaxed);
        self.inner.call(request)
    }
}

/// A cloud wrapped for monitored-mix measurement: counts backend GETs
/// through a shared handle (the wrapper itself serves behind HTTP).
struct MonitoredCloud {
    inner: PrivateCloud,
    gets: Arc<AtomicU64>,
}

impl SharedRestService for MonitoredCloud {
    fn call(&self, request: &cm_rest::RestRequest) -> cm_rest::RestResponse {
        if request.method == HttpMethod::Get {
            self.gets.fetch_add(1, Ordering::Relaxed);
        }
        self.inner.call(request)
    }
}

struct MonitoredFixture {
    monitor: CloudMonitor<cm_httpkit::RemoteService>,
    // Keeps the backend serving for the fixture's lifetime.
    _cloud_server: cm_httpkit::HttpServer,
    gets: Arc<AtomicU64>,
    pid: u64,
    vid: u64,
    sid: u64,
    token: String,
}

/// The `cmcli serve` deployment in miniature: the cloud behind a real
/// HTTP hop, the monitor probing and forwarding through a pooled
/// client — so a probe round-trip costs what it costs in production,
/// not a function call.
fn monitored_fixture(policy: SnapshotPolicy) -> MonitoredFixture {
    let cloud = PrivateCloud::my_project();
    let pid = cloud.project_id();
    let vid = cloud
        .state_mut()
        .create_volume(pid, "bench", 1, false)
        .expect("seed volume")
        .id;
    let sid = cloud
        .state_mut()
        .create_snapshot(pid, vid, "bench-snap")
        .expect("seed snapshot")
        .id;
    let token = cloud
        .issue_token("alice", "alice-pw")
        .expect("fixture credentials")
        .token;
    let gets = Arc::new(AtomicU64::new(0));
    let wrapper = Arc::new(MonitoredCloud {
        inner: cloud,
        gets: Arc::clone(&gets),
    });
    let cloud_server = cm_httpkit::HttpServer::bind(
        "127.0.0.1:0",
        Arc::new(move |req: cm_rest::RestRequest| wrapper.call(&req)),
    )
    .expect("bind cloud server");
    let mut monitor =
        cinder_monitor_extended(cm_httpkit::RemoteService::new(cloud_server.local_addr()))
            .expect("models generate")
            .mode(Mode::Observe)
            .snapshot_policy(policy);
    monitor
        .authenticate("alice", "alice-pw")
        .expect("fixture credentials");
    MonitoredFixture {
        monitor,
        _cloud_server: cloud_server,
        gets,
        pid,
        vid,
        sid,
        token,
    }
}

/// One authorized "request's worth" of monitored traffic: two reads and
/// a create/delete mutation pair, all passing their contracts.
fn monitored_mix(f: &MonitoredFixture) {
    let reqs = [
        RestRequest::new(HttpMethod::Get, format!("/v3/{}/volumes/{}", f.pid, f.vid))
            .auth_token(&f.token),
        RestRequest::new(
            HttpMethod::Get,
            format!("/v3/{}/volumes/{}/snapshots/{}", f.pid, f.vid, f.sid),
        )
        .auth_token(&f.token),
    ];
    for req in &reqs {
        black_box(f.monitor.process(req));
    }
    let created = f.monitor.process(
        &RestRequest::new(HttpMethod::Post, format!("/v3/{}/volumes", f.pid))
            .auth_token(&f.token)
            .json(Json::object(vec![(
                "volume",
                Json::object(vec![("name", Json::Str("mix".into()))]),
            )])),
    );
    let new_vid = created
        .response
        .body
        .expect("created volume body")
        .get("volume")
        .and_then(|v| v.get("id"))
        .and_then(Json::as_int)
        .expect("created volume id");
    black_box(
        f.monitor.process(
            &RestRequest::new(
                HttpMethod::Delete,
                format!("/v3/{}/volumes/{new_vid}", f.pid),
            )
            .auth_token(&f.token),
        ),
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let eval_iters: u32 = if smoke { 5 } else { 2_000 };
    let snap_iters: u32 = if smoke { 5 } else { 500 };

    // The monitor is only borrowed for its generated artefacts: the
    // merged interpreter contract set and its compiled counterpart.
    let monitor = cinder_monitor_extended(PrivateCloud::my_project()).expect("models generate");
    let contracts = monitor.contracts();
    let compiled = monitor.compiled_contracts();
    let syms = compiled.symbols();

    // A second, identical cloud provides the evaluation environments:
    // one seeded volume carrying one snapshot, probed with admin
    // authority exactly as the monitor would.
    let cloud = PrivateCloud::my_project();
    let pid = cloud.project_id();
    let vid = cloud
        .state_mut()
        .create_volume(pid, "bench", 1, false)
        .expect("seed volume")
        .id;
    let sid = cloud
        .state_mut()
        .create_snapshot(pid, vid, "bench-snap")
        .expect("seed snapshot")
        .id;
    let admin = cloud
        .issue_token("alice", "alice-pw")
        .expect("fixture credentials")
        .token;
    let target = ProbeTarget {
        project_id: pid,
        volume_id: Some(vid),
        snapshot_id: Some(sid),
        user_token: admin.clone(),
        monitor_token: admin,
    };
    let prober = StateProber::default();
    let pre_state = prober.snapshot(&cloud, &target);
    let post_state = prober.snapshot(&cloud, &target);

    // Parity first: on this environment, the compiled programs must give
    // the interpreter's verdicts contract for contract.
    let mut scratch = EvalScratch::new();
    for (c, cc) in contracts.contracts.iter().zip(compiled.contracts()) {
        let pre_view = EnvView::from_navigator(&pre_state, syms);
        let post_view = EnvView::from_navigator(&post_state, syms);
        cc.begin_pre(&mut scratch);
        assert_eq!(
            c.evaluate_pre(&pre_state).ok(),
            cc.evaluate_pre(syms, &pre_view, &mut scratch).ok(),
            "pre parity for {}",
            c.trigger
        );
        cc.begin_post(&mut scratch);
        assert_eq!(
            c.evaluate_post(&post_state, &pre_state).ok(),
            cc.evaluate_post(syms, &post_view, &pre_view, &mut scratch)
                .ok(),
            "post parity for {}",
            c.trigger
        );
    }

    // One "request's worth" of interpreter work: tree-walk every
    // contract's pre, requirements, post.
    let interp_pass = |n: u32| {
        for _ in 0..n {
            for c in &contracts.contracts {
                black_box(c.evaluate_pre(&pre_state).ok());
                black_box(c.exercised_requirements(&pre_state).ok());
                black_box(c.evaluate_post(&post_state, &pre_state).ok());
            }
        }
    };
    // The same work through the interned programs. View construction is
    // inside the loop — the monitor rebuilds views per request too.
    let mut compiled_pass = |n: u32| {
        for _ in 0..n {
            let pre_view = EnvView::from_navigator(&pre_state, syms);
            let post_view = EnvView::from_navigator(&post_state, syms);
            for cc in compiled.contracts() {
                cc.begin_pre(&mut scratch);
                black_box(cc.evaluate_pre(syms, &pre_view, &mut scratch).ok());
                black_box(
                    cc.enabled_clause_indices(syms, &pre_view, &mut scratch)
                        .ok(),
                );
                cc.begin_post(&mut scratch);
                black_box(
                    cc.evaluate_post(syms, &post_view, &pre_view, &mut scratch)
                        .ok(),
                );
            }
        }
    };

    // Interleave timed chunks (after a warmup of each) so frequency
    // scaling and cache drift hit both pipelines equally.
    let chunks = 10;
    let per_chunk = (eval_iters / chunks).max(1);
    interp_pass(per_chunk);
    compiled_pass(per_chunk);
    let mut interp_secs = 0.0;
    let mut compiled_secs = 0.0;
    for _ in 0..chunks {
        let start = Instant::now();
        interp_pass(per_chunk);
        interp_secs += start.elapsed().as_secs_f64();
        let start = Instant::now();
        compiled_pass(per_chunk);
        compiled_secs += start.elapsed().as_secs_f64();
    }
    let eval_iters = per_chunk * chunks;

    let per_iter_contracts = contracts.contracts.len() as f64;
    let interp_us = interp_secs * 1e6 / f64::from(eval_iters) / per_iter_contracts;
    let compiled_us = compiled_secs * 1e6 / f64::from(eval_iters) / per_iter_contracts;
    let eval_speedup = interp_secs / compiled_secs;

    // Snapshot comparison: full probing vs the DELETE(volume) pre-scope.
    let counting = CountingCloud {
        inner: cloud,
        hits: AtomicU64::new(0),
    };
    let delete_volume = compiled
        .contracts()
        .iter()
        .find(|c| c.trigger.to_string() == "DELETE(volume)")
        .expect("modelled trigger");
    let scope = delete_volume.pre_scope();

    counting.hits.store(0, Ordering::Relaxed);
    let start = Instant::now();
    for _ in 0..snap_iters {
        black_box(prober.snapshot_checked(&counting, &target));
    }
    let full_secs = start.elapsed().as_secs_f64();
    let full_probes = counting.hits.load(Ordering::Relaxed) / u64::from(snap_iters);

    counting.hits.store(0, Ordering::Relaxed);
    let start = Instant::now();
    for _ in 0..snap_iters {
        black_box(prober.snapshot_attrs(&counting, &target, scope));
    }
    let scoped_secs = start.elapsed().as_secs_f64();
    let scoped_probes = counting.hits.load(Ordering::Relaxed) / u64::from(snap_iters);
    let snap_speedup = full_secs / scoped_secs;

    // Monitored mix: replica vs scoped through the full monitor. Parity
    // first — identical scripts through both monitors must agree verdict
    // for verdict and requirement for requirement (the scoped side is
    // the probing oracle the replica claims to equal).
    let mix_iters: u32 = if smoke { 3 } else { 300 };
    let replica_fixture = monitored_fixture(SnapshotPolicy::Replica);
    let scoped_fixture = monitored_fixture(SnapshotPolicy::Scoped);
    let parity_req = RestRequest::new(
        HttpMethod::Get,
        format!(
            "/v3/{}/volumes/{}",
            replica_fixture.pid, replica_fixture.vid
        ),
    )
    .auth_token(&replica_fixture.token);
    for _ in 0..8 {
        let a = replica_fixture.monitor.process(&parity_req);
        let scoped_req = RestRequest::new(
            HttpMethod::Get,
            format!("/v3/{}/volumes/{}", scoped_fixture.pid, scoped_fixture.vid),
        )
        .auth_token(&scoped_fixture.token);
        let b = scoped_fixture.monitor.process(&scoped_req);
        assert_eq!(a.verdict, b.verdict, "replica/scoped verdict parity");
        assert_eq!(
            a.requirements, b.requirements,
            "replica/scoped requirement parity"
        );
    }

    // Steady-state probe cost: the replica is seeded now, so a window of
    // M monitored GETs must cost exactly M backend GETs — the forwards
    // themselves — and zero probe round-trips.
    let window = if smoke { 5 } else { 200 };
    let before = replica_fixture.gets.load(Ordering::Relaxed);
    for _ in 0..window {
        black_box(replica_fixture.monitor.process(&parity_req));
    }
    let backend_gets = replica_fixture.gets.load(Ordering::Relaxed) - before;
    let replica_probes_per_request = (backend_gets as f64 - f64::from(window)) / f64::from(window);
    assert!(
        replica_probes_per_request == 0.0,
        "replica steady state must probe zero times per request, got {replica_probes_per_request}"
    );

    // Wall-clock: interleaved chunks of the authorized mix.
    let mix_chunks = 10;
    let per_mix_chunk = (mix_iters / mix_chunks).max(1);
    for _ in 0..per_mix_chunk {
        monitored_mix(&replica_fixture);
        monitored_mix(&scoped_fixture);
    }
    let mut replica_secs = 0.0;
    let mut scoped_monitor_secs = 0.0;
    for _ in 0..mix_chunks {
        let start = Instant::now();
        for _ in 0..per_mix_chunk {
            monitored_mix(&replica_fixture);
        }
        replica_secs += start.elapsed().as_secs_f64();
        let start = Instant::now();
        for _ in 0..per_mix_chunk {
            monitored_mix(&scoped_fixture);
        }
        scoped_monitor_secs += start.elapsed().as_secs_f64();
    }
    let replica_speedup = scoped_monitor_secs / replica_secs;
    let mix_iters = per_mix_chunk * mix_chunks;

    println!("CONTRACT EVALUATION ({eval_iters} iters x {per_iter_contracts} contracts: pre + requirements + post)");
    println!();
    println!("  interpreter : {interp_us:8.2} us/contract");
    println!("  compiled    : {compiled_us:8.2} us/contract");
    println!("  speedup     : {eval_speedup:8.2}x");
    println!();
    println!("SNAPSHOT ({snap_iters} iters, DELETE(volume) pre-scope)");
    println!();
    println!(
        "  full   : {:8.2} us, {full_probes} probe requests",
        full_secs * 1e6 / f64::from(snap_iters)
    );
    println!(
        "  scoped : {:8.2} us, {scoped_probes} probe requests",
        scoped_secs * 1e6 / f64::from(snap_iters)
    );
    println!("  speedup: {snap_speedup:8.2}x");
    println!();
    println!("MONITORED MIX ({mix_iters} iters x 4 authorized requests, replica vs scoped)");
    println!();
    println!(
        "  scoped  : {:8.2} us/mix",
        scoped_monitor_secs * 1e6 / f64::from(mix_iters)
    );
    println!(
        "  replica : {:8.2} us/mix, {replica_probes_per_request} probe GETs per steady-state request",
        replica_secs * 1e6 / f64::from(mix_iters)
    );
    println!("  speedup : {replica_speedup:8.2}x");

    let json = format!(
        "{{\n  \"benchmark\": \"contract_eval\",\n  \"smoke\": {smoke},\n  \"eval_iters\": {eval_iters},\n  \
         \"contracts\": {per_iter_contracts},\n  \"interpreter_us_per_contract\": {interp_us:.2},\n  \
         \"compiled_us_per_contract\": {compiled_us:.2},\n  \"eval_speedup\": {eval_speedup:.2},\n  \
         \"snapshot_iters\": {snap_iters},\n  \"full_snapshot_probes\": {full_probes},\n  \
         \"scoped_snapshot_probes\": {scoped_probes},\n  \"snapshot_speedup\": {snap_speedup:.2},\n  \
         \"mix_iters\": {mix_iters},\n  \"replica_probes_per_request\": {replica_probes_per_request},\n  \
         \"replica_speedup\": {replica_speedup:.2}\n}}\n"
    );
    // Smoke runs (CI) keep their numbers out of the committed-artifact
    // namespace — they land in *.smoke.json, which the workflow uploads
    // and .gitignore hides.
    let out = if smoke {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_contract_eval.smoke.json"
        )
    } else {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_contract_eval.json"
        )
    };
    std::fs::write(out, json).expect("write benchmark artifact");
    println!();
    println!("wrote {out}");

    if smoke {
        println!("smoke mode: skipping speedup assertions");
        return;
    }

    assert!(
        eval_speedup >= 2.0,
        "compiled pipeline must be at least 2x the interpreter, got {eval_speedup:.2}x"
    );
    assert!(
        replica_speedup >= 1.5,
        "replica monitoring must be at least 1.5x scoped probing, got {replica_speedup:.2}x"
    );
}
