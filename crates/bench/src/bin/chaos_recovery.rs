//! Chaos-recovery experiment — the payoff of the resilience layer.
//!
//! The monitor-over-TCP topology is driven through a backend flap:
//!
//! 1. **healthy** — sequential authorized reads against a live cloud,
//!    establishing the round-trip baseline;
//! 2. **outage** — the cloud server is shut down mid-run. The first few
//!    requests pay connect failures until the circuit breaker trips;
//!    everything after is shed in microseconds. The metric that matters:
//!    the *average* cost of an outage request must stay below one
//!    request-deadline budget — a monitor without the breaker pays the
//!    full connect/read timeout on every single request;
//! 3. **recovery** — the cloud comes back on the same address. After one
//!    breaker cooldown, the *first* request must already pass: recovery
//!    happens within a single half-open probe, not a slow re-warm.
//!
//! Every outage request must come out `Verdict::Degraded` — the flap
//! must never produce a contract-violation verdict.
//!
//! Results land in `BENCH_chaos_recovery.json` at the repo root.
//! `--smoke` runs a reduced flap, writes the artifact to
//! `BENCH_chaos_recovery.smoke.json` instead, and skips the timing
//! assertions (used by `ci.sh`).

use cm_cloudsim::PrivateCloud;
use cm_core::{cinder_monitor, Mode, Verdict};
use cm_httpkit::{ClientConfig, HttpServer, PooledClient, RemoteService};
use cm_model::HttpMethod;
use cm_rest::{RestRequest, SharedRestService};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The deadline budget each logical backend request gets — the "1 RTT
/// budget" the shed-cost assertion is phrased against.
const REQUEST_DEADLINE: Duration = Duration::from_millis(500);
const BREAKER_COOLDOWN: Duration = Duration::from_millis(100);

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let healthy_n: usize = if smoke { 10 } else { 200 };
    let outage_n: usize = if smoke { 10 } else { 200 };

    let cloud = Arc::new(PrivateCloud::my_project());
    let pid = cloud.project_id();
    let alice = cloud
        .issue_token("alice", "alice-pw")
        .expect("fixture")
        .token;
    cloud
        .state_mut()
        .create_volume(pid, "seed", 1, false)
        .expect("seed volume");

    let handle = Arc::clone(&cloud);
    let server = HttpServer::bind("127.0.0.1:0", Arc::new(move |req| handle.call(&req)))
        .expect("bind cloud server");
    let addr = server.local_addr();

    let client = Arc::new(PooledClient::new(ClientConfig {
        read_timeout: Duration::from_millis(200),
        request_deadline: REQUEST_DEADLINE,
        max_retries: 0,
        breaker_threshold: 3,
        breaker_cooldown: BREAKER_COOLDOWN,
        ..ClientConfig::default()
    }));
    let mut monitor = cinder_monitor(RemoteService::with_client(addr, Arc::clone(&client)))
        .expect("models generate")
        .mode(Mode::Enforce);
    monitor
        .authenticate("alice", "alice-pw")
        .expect("admin authority");

    let read = RestRequest::new(HttpMethod::Get, format!("/v3/{pid}/volumes/1")).auth_token(&alice);

    println!("CHAOS RECOVERY ({healthy_n} healthy + {outage_n} outage requests, backend flap)");
    println!();

    // Phase 1 — healthy baseline.
    let start = Instant::now();
    for _ in 0..healthy_n {
        let outcome = monitor.process(&read);
        assert_eq!(outcome.verdict, Verdict::Pass, "healthy phase: {outcome:?}");
    }
    let healthy_avg_us = start.elapsed().as_micros() as f64 / healthy_n as f64;
    println!("  healthy   : {healthy_avg_us:9.0} us/request (monitored read, pre+post snapshots)");

    // Phase 2 — outage: the backend dies. The breaker turns timeouts
    // into microsecond sheds.
    server.shutdown();
    let start = Instant::now();
    for _ in 0..outage_n {
        let outcome = monitor.process(&read);
        assert_eq!(
            outcome.verdict,
            Verdict::Degraded,
            "outage must degrade, never produce a contract verdict: {outcome:?}"
        );
    }
    let outage_elapsed = start.elapsed();
    let outage_avg_us = outage_elapsed.as_micros() as f64 / outage_n as f64;
    let sheds = client
        .stats()
        .sheds
        .load(std::sync::atomic::Ordering::Relaxed);
    println!("  outage    : {outage_avg_us:9.0} us/request ({sheds} requests shed by the breaker)");

    // Phase 3 — recovery on the same address after one cooldown.
    let handle = Arc::clone(&cloud);
    let revived = match HttpServer::bind(addr, Arc::new(move |req| handle.call(&req))) {
        Ok(s) => s,
        Err(e) => {
            // The OS reassigned the port meanwhile; the flap cannot be
            // completed, but the shed measurements above still stand.
            println!("  recovery  : skipped (could not rebind {addr}: {e})");
            return;
        }
    };
    std::thread::sleep(BREAKER_COOLDOWN + Duration::from_millis(50));
    let start = Instant::now();
    let recovery = monitor.process(&read);
    let recovery_us = start.elapsed().as_micros();
    let recovered_first_try = recovery.verdict == Verdict::Pass;
    println!(
        "  recovery  : {recovery_us:9} us to first {} after cooldown",
        if recovered_first_try {
            "pass"
        } else {
            "NON-PASS"
        }
    );
    let snapshot = client.stats().snapshot();
    println!("  transport : {snapshot:?}");
    revived.shutdown();

    let budget_us = REQUEST_DEADLINE.as_micros() as f64;
    let stats: Vec<String> = snapshot
        .iter()
        .map(|(k, v)| format!("    \"{k}\": {v}"))
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"chaos_recovery\",\n  \"smoke\": {smoke},\n  \"healthy_requests\": {healthy_n},\n  \
         \"outage_requests\": {outage_n},\n  \"healthy_avg_us\": {healthy_avg_us:.0},\n  \
         \"outage_avg_us\": {outage_avg_us:.0},\n  \"deadline_budget_us\": {budget_us:.0},\n  \
         \"recovery_us\": {recovery_us},\n  \"recovered_within_one_probe\": {recovered_first_try},\n  \
         \"transport\": {{\n{}\n  }}\n}}\n",
        stats.join(",\n")
    );
    // Smoke runs land in *.smoke.json (uploaded by CI, gitignored) so
    // shared-runner numbers never shadow the committed artifact.
    let out = if smoke {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_chaos_recovery.smoke.json"
        )
    } else {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_chaos_recovery.json"
        )
    };
    std::fs::write(out, json).expect("write benchmark artifact");
    println!();
    println!("wrote {out}");

    if smoke {
        println!("smoke mode: skipping timing assertions");
        return;
    }

    // One request-deadline budget is what a breaker-less client pays per
    // outage request; shedding must make the *average* far cheaper.
    assert!(
        outage_avg_us < budget_us,
        "average outage request ({outage_avg_us:.0} us) must cost less than one \
         deadline budget ({budget_us:.0} us)"
    );
    assert!(
        recovered_first_try,
        "recovery must complete within one half-open probe: {recovery:?}"
    );
}
