//! Experiment F3 — regenerate the paper's Figure 3: the Cinder resource
//! model (left) and the behavioural model of a project (right), as text
//! and as Graphviz DOT.

use cm_model::{
    behavioral_model_dot, behavioral_model_text, cinder, resource_model_dot, resource_model_text,
    validate_behavioral_model, validate_resource_model,
};

fn main() {
    let resources = cinder::resource_model();
    let behavior = cinder::behavioral_model();

    println!("FIGURE 3 (LEFT): EXTRACT OF CINDER RESOURCE MODEL");
    println!();
    print!("{}", resource_model_text(&resources));
    println!();
    println!("FIGURE 3 (RIGHT): EXTRACT OF CINDER BEHAVIORAL MODEL");
    println!();
    print!("{}", behavioral_model_text(&behavior));
    println!();

    let res_report = validate_resource_model(&resources);
    let beh_report = validate_behavioral_model(&behavior, Some(&resources));
    println!("validation: resource model: {res_report}");
    println!("validation: behavioral model: {beh_report}");
    println!();

    println!("--- DOT (resource model; render with `dot -Tpng`) ---");
    print!("{}", resource_model_dot(&resources));
    println!("--- DOT (behavioral model) ---");
    print!("{}", behavioral_model_dot(&behavior));
}
