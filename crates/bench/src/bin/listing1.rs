//! Experiment L1 — regenerate the paper's Listing 1: the pre- and
//! post-conditions generated for DELETE on the volume resource (and, for
//! completeness, the other three methods).

use cm_contracts::{generate, render_listing};
use cm_model::{cinder, HttpMethod, Trigger};

fn main() {
    let set = generate(&cinder::behavioral_model()).expect("cinder model generates");

    println!("LISTING 1: GENERATED PRE- AND POST-CONDITIONS");
    println!();
    let delete = set
        .contract_for(&Trigger::new(HttpMethod::Delete, "volume"))
        .expect("DELETE(volume) modelled");
    print!("{}", render_listing(delete, ".../v3/{project_id}/volumes"));
    println!();
    println!(
        "shape check: {} disjuncts in the pre-condition, {} implications in the \
         post-condition (paper: 3 and 3)",
        delete.clauses.len(),
        delete.clauses.len()
    );
    println!();

    for method in [HttpMethod::Get, HttpMethod::Put, HttpMethod::Post] {
        if let Some(c) = set.contract_for(&Trigger::new(method, "volume")) {
            println!("--- {}(volume) ---", method);
            print!("{}", render_listing(c, ".../v3/{project_id}/volumes"));
            println!();
        }
    }
}
