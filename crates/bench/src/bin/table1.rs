//! Experiment T1 — regenerate the paper's Table I (security requirements
//! for the Cinder API) from the model layer, plus its compilation into a
//! `policy.json` the simulated cloud enforces.

use cm_rbac::cinder_table1;

fn main() {
    let table = cinder_table1();
    println!("TABLE I: SECURITY REQUIREMENTS FOR CINDER API (EXCERPT)");
    println!();
    print!("{}", table.render());
    println!();
    println!("Compiled policy.json:");
    println!("{}", table.to_policy().render());
    println!();
    println!("Synthesised OCL authorization guards (Section IV-C):");
    for method in cm_model::HttpMethod::ALL {
        if let Some(guard) = table.guard("volume", method) {
            println!(
                "  {method}(volume): {}",
                cm_ocl::render(&guard, cm_ocl::PrintStyle::Paper)
            );
        }
    }
}
