//! Experiment L2/L3 — regenerate the paper's Listings 2 and 3: the
//! generated `views.py` (method dispatch + contracts + forwarding) and
//! `urls.py` (URI-to-view mapping) of the Django monitor.

use cm_codegen::{urls_py, views_py};
use cm_contracts::generate;
use cm_model::cinder;
use cm_rest::RouteTable;

fn main() {
    let resources = cinder::resource_model();
    let routes = RouteTable::derive(&resources, "/v3");
    let contracts = generate(&cinder::behavioral_model()).expect("cinder model generates");

    println!("LISTING 3: URIS AND VIEWS MAPPING FOR CLOUD MONITOR (urls.py)");
    println!();
    println!("{}", urls_py(&routes, "cmonitor"));

    println!("LISTING 2: DELETE VIEW IN CLOUD MONITOR (views.py, volume excerpt)");
    println!();
    let views = views_py(&routes, &contracts, "http://130.232.85.9");
    // Print only the volume-related excerpt, as the paper does.
    let mut printing = false;
    for line in views.lines() {
        if line.starts_with("def volume(") || line.starts_with("def volume_") {
            printing = true;
        } else if line.starts_with("def ") {
            printing = false;
        }
        if printing {
            println!("{line}");
        }
    }
}
