//! Experiment E1 + ablation A3 — the Section VI-D mutation validation.
//!
//! First the paper's three wrong-authorization mutants (expected result:
//! 3/3 killed, matching "we were able to kill all three mutants"), then
//! the extended systematic campaign with per-operator kill rates, and
//! finally a phase-latency breakdown of the monitor doing that work.

use cm_core::Mode;
use cm_mutation::{
    paper_mutants, run_campaign, run_extended_campaign, snapshot_catalog, standard_catalog,
};

fn main() {
    println!("EXPERIMENT VI-D: MONITORING OPENSTACK — MUTANT VALIDATION");
    println!();
    println!("The paper's three mutants (wrong authorization on resources):");
    let paper = run_campaign(&paper_mutants());
    print!("{paper}");
    println!();
    for row in &paper.rows {
        println!("  {} — {}", row.mutant.id, row.mutant.description);
        for (scenario, verdict) in row.killing_scenarios.iter().zip(&row.verdicts) {
            println!("      killed by: {scenario} [{verdict}]");
        }
    }
    println!();
    assert_eq!(paper.killed(), 3, "paper reproduction requires 3/3 kills");
    println!("paper result reproduced: 3/3 mutants killed");
    println!();

    println!("ABLATION A3: EXTENDED SYSTEMATIC CAMPAIGN");
    println!();
    let extended = run_campaign(&standard_catalog());
    print!("{extended}");
    println!();
    if extended.survivors().is_empty() {
        println!("no survivors");
    } else {
        println!("survivor analysis (model-abstraction limits, not monitor defects):");
        for s in extended.survivors() {
            println!("  {} — {}", s.mutant.id, s.mutant.description);
        }
    }
    println!();

    println!("ABLATION A3b: SNAPSHOT-RESOURCE CAMPAIGN (extended models)");
    println!();
    let snapshots = run_extended_campaign(&snapshot_catalog());
    print!("{snapshots}");
    println!();

    println!("MONITOR PHASE-LATENCY BREAKDOWN");
    println!();
    println!("{}", cm_bench::phase_latency_report(Mode::Enforce, 50));
}
