//! Ablation A6 — model slicing (the paper's future-work item): how much
//! monitor do you get from how much model?
//!
//! For each slice of the Cinder behavioural model (by security
//! requirement), this binary reports the sliced model's size, the
//! generated contract set, and — the interesting part — which mutants a
//! monitor generated *from the slice alone* still kills. A DELETE-only
//! monitor kills exactly the DELETE mutants: slicing trades coverage for
//! model simplicity, precisely as Section VI-B's "model only the critical
//! scenarios" methodology prescribes.

use cm_cloudsim::{Fault, FaultPlan, PrivateCloud};
use cm_contracts::generate;
use cm_core::{CloudMonitor, Mode};
use cm_model::{cinder, slice_behavioral_model, HttpMethod, SliceCriterion};
use cm_rbac::Rule;
use cm_rest::{Json, RestRequest};

fn main() {
    let full = cinder::behavioral_model();
    println!("ABLATION A6: MODEL SLICING (paper future work, implemented)");
    println!();
    println!(
        "full model: {} states, {} transitions, {} contracts",
        full.states.len(),
        full.transitions.len(),
        generate(&full).expect("generates").contracts.len()
    );
    println!();
    println!(
        "| {:<8} | {:<6} | {:<11} | {:<9} | {:<19} | {:<19} |",
        "Slice", "States", "Transitions", "Contracts", "DELETE mutant", "GET mutant"
    );
    println!(
        "|{}|{}|{}|{}|{}|{}|",
        "-".repeat(10),
        "-".repeat(8),
        "-".repeat(13),
        "-".repeat(11),
        "-".repeat(21),
        "-".repeat(21)
    );

    for req in ["1.1", "1.2", "1.3", "1.4"] {
        let slice =
            slice_behavioral_model(&full, &SliceCriterion::Requirements(vec![req.to_string()]));
        let contracts = generate(&slice).expect("slice generates");
        let delete_verdict = probe_mutant(
            &slice,
            FaultPlan::single(Fault::PolicyOverride {
                action: "volume:delete".into(),
                rule: Rule::Always,
            }),
            HttpMethod::Delete,
        );
        let get_verdict = probe_mutant(
            &slice,
            FaultPlan::single(Fault::InvertAuthCheck {
                action: "volume:get".into(),
            }),
            HttpMethod::Get,
        );
        println!(
            "| {:<8} | {:<6} | {:<11} | {:<9} | {:<19} | {:<19} |",
            format!("SecReq {req}"),
            slice.states.len(),
            slice.transitions.len(),
            contracts.contracts.len(),
            delete_verdict,
            get_verdict,
        );
    }
    println!();
    println!(
        "reading: a monitor generated from the SecReq 1.4 slice alone kills the\n\
         DELETE mutant but cannot see the GET mutant (not-modelled pass-through),\n\
         and vice versa — coverage follows the model, exactly as designed."
    );
}

/// Build a monitor from `slice` over a mutant cloud, fire one
/// characteristic request, and describe the verdict.
fn probe_mutant(slice: &cm_model::BehavioralModel, plan: FaultPlan, method: HttpMethod) -> String {
    let cloud = PrivateCloud::my_project().with_faults(plan);
    let pid = cloud.project_id();
    let vid = cloud
        .state_mut()
        .create_volume(pid, "seed", 1, false)
        .expect("quota allows")
        .id;
    // carol (role user) for the DELETE escalation; alice for the GET denial.
    let (user, password) = match method {
        HttpMethod::Delete => ("carol", "carol-pw"),
        _ => ("alice", "alice-pw"),
    };
    let token = cloud.issue_token(user, password).expect("fixture").token;
    let mut monitor = CloudMonitor::generate(&cinder::resource_model(), slice, None, cloud)
        .expect("slice monitor generates")
        .mode(Mode::Observe);
    monitor.authenticate("alice", "alice-pw").expect("fixture");
    let mut req = RestRequest::new(method, format!("/v3/{pid}/volumes/{vid}")).auth_token(&token);
    if method == HttpMethod::Put {
        req = req.json(Json::object(vec![(
            "volume",
            Json::object(vec![("name", Json::Str("x".into()))]),
        )]));
    }
    let outcome = monitor.process(&req);
    if outcome.verdict.is_violation() {
        format!("KILLED ({})", outcome.verdict)
    } else {
        format!("unseen ({})", outcome.verdict)
    }
}
