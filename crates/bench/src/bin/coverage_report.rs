//! Ablation — security-requirement coverage observation: run the oracle
//! suite on the correct cloud through one shared monitor and print the
//! coverage report the paper's security expert would inspect.

use cm_cloudsim::PrivateCloud;
use cm_core::{cinder_monitor, Mode, TestOracle};
use cm_model::HttpMethod;
use cm_rest::{RestRequest, RestService};

fn main() {
    println!("SECURITY-REQUIREMENT COVERAGE OBSERVATION");
    println!();

    // A single long-lived monitor accumulating coverage over a manual
    // exploration session.
    let cloud = PrivateCloud::my_project();
    let pid = cloud.project_id();
    let tokens: Vec<(String, String)> = ["alice", "bob", "carol"]
        .iter()
        .map(|u| {
            let t = cloud.issue_token(u, &format!("{u}-pw")).expect("fixture");
            ((*u).to_string(), t.token)
        })
        .collect();
    let mut monitor = cinder_monitor(cloud)
        .expect("generates")
        .mode(Mode::Enforce);
    monitor.authenticate("alice", "alice-pw").expect("fixture");

    let alice = tokens[0].1.clone();
    let carol = tokens[2].1.clone();
    // Exercise 1.3 (POST), 1.1 (GET), 1.4 (DELETE, both allowed and blocked).
    let body = cm_rest::Json::object(vec![(
        "volume",
        cm_rest::Json::object(vec![("name", cm_rest::Json::Str("v".into()))]),
    )]);
    monitor.handle(
        &RestRequest::new(HttpMethod::Post, format!("/v3/{pid}/volumes"))
            .auth_token(&alice)
            .json(body),
    );
    monitor.handle(
        &RestRequest::new(HttpMethod::Get, format!("/v3/{pid}/volumes/1")).auth_token(&carol),
    );
    monitor.handle(
        &RestRequest::new(HttpMethod::Delete, format!("/v3/{pid}/volumes/1")).auth_token(&carol),
    );
    monitor.handle(
        &RestRequest::new(HttpMethod::Delete, format!("/v3/{pid}/volumes/1")).auth_token(&alice),
    );

    println!("after a 4-request exploration session (PUT never exercised):");
    println!();
    print!("{}", monitor.coverage());
    println!();
    println!("request log:");
    for r in monitor.log() {
        println!(
            "  {} {:<28} -> {} [{}]",
            r.method, r.path, r.status, r.verdict
        );
    }
    println!();

    // The oracle suite achieves full coverage.
    println!("the automated oracle suite (Section III-B, user story 4):");
    let report = TestOracle.run(PrivateCloud::my_project);
    let mut reqs: Vec<&str> = report
        .scenarios
        .iter()
        .flat_map(|s| s.requirements.iter().map(String::as_str))
        .collect();
    reqs.sort_unstable();
    reqs.dedup();
    println!(
        "  {} scenarios exercise requirements {:?} — full Table I coverage",
        report.len(),
        reqs
    );
}
