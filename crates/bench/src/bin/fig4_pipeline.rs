//! Experiment F4 — the Figure 4 tool pipeline end to end:
//! UML models → XMI export → XMI import → `uml2django` code generation →
//! generated Django project tree, with the same models also instantiated
//! as a native runtime monitor.

use cm_codegen::{uml2django, Uml2DjangoOptions};
use cm_model::cinder;
use cm_xmi::{export, import};

fn main() {
    // Step 1 (manual in the paper): the analyst models in MagicDraw and
    // exports XMI. Here: the canned Figure 3 models, exported by cm-xmi.
    let resources = cinder::resource_model();
    let behavior = cinder::behavioral_model();
    let xmi = export(Some(&resources), &[&behavior]);
    println!("step 1: XMI export             {:>6} bytes", xmi.len());

    // Step 2: the tool reads the XMI back (lossless round-trip).
    let doc = import(&xmi).expect("exported XMI imports");
    assert_eq!(doc.resources.as_ref(), Some(&resources));
    assert_eq!(doc.behaviors, vec![behavior]);
    println!(
        "step 2: XMI import             {} classes, {} state machine(s) — round-trip exact",
        doc.resources.as_ref().map_or(0, |r| r.definitions.len()),
        doc.behaviors.len()
    );

    // Step 3: uml2django ProjectName DiagramsFileinXML.
    let project = uml2django(
        "CMonitor",
        &xmi,
        &Uml2DjangoOptions {
            cloud_base_url: "http://130.232.85.9".to_string(),
            security: None,
        },
    )
    .expect("pipeline generates");
    println!(
        "step 3: uml2django             {} files, {} bytes total",
        project.files.len(),
        project.total_bytes()
    );
    for (path, content) in &project.files {
        println!("        {:<24} {:>6} bytes", path, content.len());
    }

    // Step 4: the same models drive the native runtime monitor.
    let cloud = cm_cloudsim::PrivateCloud::my_project();
    let monitor = cm_core::cinder_monitor(cloud).expect("monitor generates");
    println!(
        "step 4: native monitor         {} routes, {} contracts ({} clauses)",
        monitor.routes().routes().len(),
        monitor.contracts().contracts.len(),
        monitor.contracts().clause_count()
    );
    println!();
    println!("pipeline complete: models -> XMI -> monitor code + runtime monitor");
}
