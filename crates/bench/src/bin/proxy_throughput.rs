//! Proxy-throughput experiment — the payoff of the transport stack, now
//! measured across three generations and an open-loop load generator.
//!
//! The full network topology of the paper's deployment is stood up on
//! loopback TCP — private cloud served over HTTP, generated monitor
//! wrapping it through a remote-service adapter, monitor itself served
//! over HTTP — and driven by 8 concurrent client threads with a
//! deterministic request mix (authorized read / forbidden delete /
//! unmodelled passthrough). Modes:
//!
//! * **baseline** — the historical transport: worker-pool server,
//!   `Connection: close` everywhere, a fresh TCP connect per client
//!   request *and* per probe round-trip the monitor makes;
//! * **pooled worker-pool** — HTTP/1.1 keep-alive at both hops on the
//!   thread-per-connection engine (the PR 4 configuration);
//! * **pooled reactor** — the same keep-alive clients against the
//!   readiness-polled epoll reactor on both hops;
//! * **pipelined reactor** — raw clients batching pipelined requests on
//!   keep-alive connections, letting the reactor drain a whole batch
//!   per readiness event (one read, N handlers, one `writev`);
//! * **open-loop loadgen** — arrival-rate-driven sweep against the
//!   reactor: requests are issued on a fixed schedule regardless of
//!   completions (no coordinated omission) and p50/p95/p99 latency is
//!   measured from the *scheduled* send time, tracing the saturation
//!   curve.
//!
//! Every closed-loop mode records statuses per thread in issue order and
//! they must match exactly across modes — the transport may only change
//! how fast the answers arrive, never the answers. The open-loop sweep
//! checks every response against the per-class fingerprint from the
//! closed-loop run.
//!
//! Results land in `BENCH_proxy_throughput.json` at the repo root. The
//! full run fails unless the reactor clears 3x the committed PR 4
//! pooled worker-pool figure (`PR4_POOLED_BASELINE_RPS`) and the
//! 24k req/s floor. `--smoke` runs a handful of
//! requests, writes `BENCH_proxy_throughput.smoke.json` instead, and
//! skips the speedup assertions (used by `ci.sh`).

use cm_cloudsim::PrivateCloud;
use cm_core::{cinder_monitor, Mode, SnapshotPolicy};
use cm_httpkit::{
    read_response_buf, send, serialize_request, AdminRoutes, ConnectionMode, HttpServer,
    OverloadConfig, PooledClient, RemoteService, ServerConfig, Transport,
};
use cm_model::HttpMethod;
use cm_obs::{BrownoutSignal, Lane, MetricsRegistry, NullSink, OverloadStats};
use cm_rest::{RestRequest, SharedRestService, StatusCode};
use std::io::{BufReader, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const THREADS: usize = 8;
/// The committed PR 4 result (`pooled_rps` in the previous
/// `BENCH_proxy_throughput.json`): HTTP/1.1 keep-alive on the
/// thread-per-connection worker pool, default monitor configuration.
/// The reactor headline is gated against this fixed figure so the bar
/// cannot drift with same-run noise or monitor-side tuning.
const PR4_POOLED_BASELINE_RPS: f64 = 7988.0;
/// Pipelined-mode batch depth: enough to amortize the per-event syscall
/// cost without overflowing a single 16 KiB reactor read.
const PIPELINE_BATCH: usize = 32;

/// Overload experiment: the monitor rides a single reactor shard so the
/// run queue is one well-defined line, with a tight queue-wait budget —
/// the goodput curve is about shape past saturation, not headline rps.
const OVERLOAD_DEADLINE: Duration = Duration::from_millis(10);
const OVERLOAD_QUEUE_LIMIT: usize = 512;
/// Loadgen concurrency for the overload sweep: enough in-flight
/// requests to hold the single shard's queue wait well past the budget
/// (the shard clears ~13k req/s, so 256 in-flight is ~20ms of queue).
const OVERLOAD_THREADS: usize = 256;
/// The acceptance bar: goodput at 2x saturation must hold this fraction
/// of the peak goodput seen anywhere on the curve.
const GOODPUT_FLOOR: f64 = 0.85;

/// The deterministic request mix, same as the concurrency battery's.
fn request_for(pid: u64, t: usize, i: usize, alice: &str, carol: &str) -> RestRequest {
    match (t + i) % 3 {
        0 => RestRequest::new(HttpMethod::Get, format!("/v3/{pid}/volumes/1")).auth_token(alice),
        1 => RestRequest::new(HttpMethod::Delete, format!("/v3/{pid}/volumes/1")).auth_token(carol),
        _ => RestRequest::new(HttpMethod::Get, format!("/unmodelled/{t}/{i}")),
    }
}

/// The two-hop topology (cloud server ← monitor ← clients), generic over
/// transport engine and backend-adapter pooling.
struct Topology {
    cloud_server: HttpServer,
    monitor_server: HttpServer,
    addr: SocketAddr,
    pid: u64,
    alice: String,
    carol: String,
}

impl Topology {
    fn stand_up(transport: Transport, keep_alive: bool, pooled_backend: bool) -> Topology {
        let cloud = PrivateCloud::my_project();
        let pid = cloud.project_id();
        let alice = cloud
            .issue_token("alice", "alice-pw")
            .expect("fixture")
            .token;
        let carol = cloud
            .issue_token("carol", "carol-pw")
            .expect("fixture")
            .token;
        cloud
            .state_mut()
            .create_volume(pid, "seed", 1, false)
            .expect("seed volume");

        let config = ServerConfig {
            transport,
            keep_alive,
            // The pipelined mode rides one connection per client thread
            // for the whole run; never recycle it mid-batch.
            max_requests_per_conn: 1 << 20,
            ..ServerConfig::default()
        };
        let cloud = Arc::new(cloud);
        let cloud_handle = Arc::clone(&cloud);
        let cloud_server = HttpServer::bind_with(
            "127.0.0.1:0",
            Arc::new(move |req| cloud_handle.call(&req)),
            config.clone(),
        )
        .expect("bind cloud server");

        let remote = if pooled_backend {
            RemoteService::new(cloud_server.local_addr())
        } else {
            RemoteService::connection_per_request(cloud_server.local_addr())
        };
        // Production-lean monitor configuration, identical across every
        // transport mode (parity is asserted on the responses): scoped
        // probing, no post-pass state diagnostics, and the speculative
        // safe-method sandwich. Recorded in the JSON artifact.
        let mut monitor = cinder_monitor(remote)
            .expect("models generate")
            .mode(Mode::Enforce)
            .snapshot_policy(SnapshotPolicy::Scoped)
            .report_states(false)
            .speculative_reads(true);
        monitor
            .authenticate("alice", "alice-pw")
            .expect("admin authority");
        let monitor = Arc::new(monitor);
        let monitor_handle = Arc::clone(&monitor);
        let monitor_server = HttpServer::bind_with(
            "127.0.0.1:0",
            Arc::new(move |req| monitor_handle.call(&req)),
            config,
        )
        .expect("bind monitor server");
        let addr = monitor_server.local_addr();

        Topology {
            cloud_server,
            monitor_server,
            addr,
            pid,
            alice,
            carol,
        }
    }

    fn tear_down(self) -> u64 {
        let client_connections = self.monitor_server.connections_accepted();
        self.monitor_server.shutdown();
        self.cloud_server.shutdown();
        client_connections
    }
}

struct ModeResult {
    /// Status codes per thread, in issue order — the parity fingerprint.
    statuses: Vec<Vec<u16>>,
    rps: f64,
    client_connections: u64,
    /// Per-request latency in microseconds, merged across threads and
    /// sorted ascending. Empty for the pipelined mode (batch-granular).
    latencies_us: Vec<u64>,
}

impl ModeResult {
    fn percentile(&self, p: f64) -> f64 {
        percentile(&self.latencies_us, p)
    }
}

fn percentile(sorted_us: &[u64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * (sorted_us.len() - 1) as f64).round() as usize;
    sorted_us[rank.min(sorted_us.len() - 1)] as f64
}

/// Closed-loop: each thread issues its next request only after the
/// previous response arrives.
fn run_closed(transport: Transport, keep_alive: bool, per_thread: usize) -> ModeResult {
    let topo = Topology::stand_up(transport, keep_alive, keep_alive);
    let (addr, pid) = (topo.addr, topo.pid);

    let start = Instant::now();
    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let alice = topo.alice.clone();
            let carol = topo.carol.clone();
            std::thread::spawn(move || {
                // One pooled client per thread: one live connection each.
                let client = PooledClient::default();
                let mut statuses = Vec::with_capacity(per_thread);
                let mut latencies = Vec::with_capacity(per_thread);
                for i in 0..per_thread {
                    let req = request_for(pid, t, i, &alice, &carol);
                    let issued = Instant::now();
                    let resp = if keep_alive {
                        client.request(addr, &req).expect("pooled response")
                    } else {
                        send(addr, &req).expect("one-shot response")
                    };
                    latencies.push(issued.elapsed().as_micros() as u64);
                    statuses.push(resp.status.0);
                }
                (statuses, latencies)
            })
        })
        .collect();
    let mut statuses = Vec::with_capacity(THREADS);
    let mut latencies_us = Vec::new();
    for w in workers {
        let (s, l) = w.join().expect("client thread");
        statuses.push(s);
        latencies_us.extend(l);
    }
    let elapsed = start.elapsed().as_secs_f64();
    latencies_us.sort_unstable();

    ModeResult {
        statuses,
        rps: (THREADS * per_thread) as f64 / elapsed,
        client_connections: topo.tear_down(),
        latencies_us,
    }
}

/// Pipelined: each thread writes `PIPELINE_BATCH` requests back-to-back
/// on its keep-alive connection, then reads the batch of responses — the
/// reactor answers a whole batch per readiness event.
fn run_pipelined(per_thread: usize) -> ModeResult {
    let topo = Topology::stand_up(Transport::Reactor, true, true);
    let (addr, pid) = (topo.addr, topo.pid);

    let start = Instant::now();
    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let alice = topo.alice.clone();
            let carol = topo.carol.clone();
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                stream
                    .set_read_timeout(Some(Duration::from_secs(30)))
                    .expect("read timeout");
                let mut writer = stream.try_clone().expect("clone stream");
                let mut reader = BufReader::new(stream);
                let mut statuses = Vec::with_capacity(per_thread);
                let mut wire = Vec::new();
                let mut issued = 0usize;
                while issued < per_thread {
                    let batch = PIPELINE_BATCH.min(per_thread - issued);
                    wire.clear();
                    for i in issued..issued + batch {
                        let req = request_for(pid, t, i, &alice, &carol);
                        serialize_request(&mut wire, &req, ConnectionMode::KeepAlive);
                    }
                    writer.write_all(&wire).expect("write batch");
                    for _ in 0..batch {
                        let resp = read_response_buf(&mut reader).expect("pipelined response");
                        statuses.push(resp.status.0);
                    }
                    issued += batch;
                }
                statuses
            })
        })
        .collect();
    let statuses: Vec<Vec<u16>> = workers
        .into_iter()
        .map(|w| w.join().expect("client thread"))
        .collect();
    let elapsed = start.elapsed().as_secs_f64();

    ModeResult {
        statuses,
        rps: (THREADS * per_thread) as f64 / elapsed,
        client_connections: topo.tear_down(),
        latencies_us: Vec::new(),
    }
}

struct OpenLoopPoint {
    target_rps: f64,
    achieved_rps: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
}

/// Open-loop: request *i* is due at `start + i/rate` no matter how the
/// previous ones fared; latency counts from the scheduled time, so a
/// saturated server shows up as an exploding tail, not a flattered one.
fn run_open_loop(topo: &Topology, target_rps: f64, total: usize) -> OpenLoopPoint {
    let (addr, pid) = (topo.addr, topo.pid);
    let interval = Duration::from_secs_f64(1.0 / target_rps);
    let next = Arc::new(AtomicUsize::new(0));
    let start = Instant::now();
    let workers: Vec<_> = (0..THREADS)
        .map(|_| {
            let alice = topo.alice.clone();
            let carol = topo.carol.clone();
            let next = Arc::clone(&next);
            std::thread::spawn(move || {
                let client = PooledClient::default();
                let mut latencies = Vec::new();
                let mut results = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        return (latencies, results);
                    }
                    let due = start + interval.mul_f64(i as f64);
                    let now = Instant::now();
                    if due > now {
                        std::thread::sleep(due - now);
                    }
                    let req = request_for(pid, 0, i, &alice, &carol);
                    let resp = client.request(addr, &req).expect("open-loop response");
                    latencies.push(due.elapsed().as_micros() as u64);
                    results.push((i, resp.status.0));
                }
            })
        })
        .collect();
    let mut latencies = Vec::with_capacity(total);
    let mut results = Vec::with_capacity(total);
    for w in workers {
        let (l, r) = w.join().expect("loadgen thread");
        latencies.extend(l);
        results.extend(r);
    }
    let elapsed = start.elapsed().as_secs_f64();
    latencies.sort_unstable();

    // Per-class parity: every response must match its mix class.
    let mut class_status = [0u16; 3];
    for (i, status) in &results {
        let class = i % 3;
        if class_status[class] == 0 {
            class_status[class] = *status;
        }
        assert_eq!(
            class_status[class], *status,
            "open-loop response diverged within mix class {class}"
        );
    }

    OpenLoopPoint {
        target_rps,
        achieved_rps: total as f64 / elapsed,
        p50_us: percentile(&latencies, 50.0),
        p95_us: percentile(&latencies, 95.0),
        p99_us: percentile(&latencies, 99.0),
    }
}

/// The overload topology: same two hops, but the monitor server runs a
/// single reactor shard with deadline-aware admission enabled and the
/// admin plane wrapped in, sharing one [`OverloadStats`] with the bench.
fn stand_up_overload() -> (Topology, Arc<OverloadStats>) {
    let cloud = PrivateCloud::my_project();
    let pid = cloud.project_id();
    let alice = cloud
        .issue_token("alice", "alice-pw")
        .expect("fixture")
        .token;
    let carol = cloud
        .issue_token("carol", "carol-pw")
        .expect("fixture")
        .token;
    cloud
        .state_mut()
        .create_volume(pid, "seed", 1, false)
        .expect("seed volume");

    let cloud = Arc::new(cloud);
    let cloud_handle = Arc::clone(&cloud);
    let cloud_server = HttpServer::bind_with(
        "127.0.0.1:0",
        Arc::new(move |req| cloud_handle.call(&req)),
        ServerConfig {
            transport: Transport::Reactor,
            keep_alive: true,
            max_requests_per_conn: 1 << 20,
            ..ServerConfig::default()
        },
    )
    .expect("bind cloud server");

    let mut monitor = cinder_monitor(RemoteService::new(cloud_server.local_addr()))
        .expect("models generate")
        .mode(Mode::Enforce)
        .snapshot_policy(SnapshotPolicy::Scoped)
        .report_states(false)
        .speculative_reads(true);
    monitor
        .authenticate("alice", "alice-pw")
        .expect("admin authority");
    let monitor = Arc::new(monitor);
    let monitor_handle = Arc::clone(&monitor);

    let stats = Arc::new(OverloadStats::new());
    let admin = AdminRoutes::new(Arc::new(MetricsRegistry::new()), Arc::new(NullSink))
        .with_overload(Arc::clone(&stats), Arc::new(BrownoutSignal::new()));
    let monitor_server = HttpServer::bind_with(
        "127.0.0.1:0",
        admin.wrap(Arc::new(move |req| monitor_handle.call(&req))),
        ServerConfig {
            transport: Transport::Reactor,
            shards: 1,
            keep_alive: true,
            max_requests_per_conn: 1 << 20,
            overload: OverloadConfig {
                enabled: true,
                deadline: OVERLOAD_DEADLINE,
                queue_limit: OVERLOAD_QUEUE_LIMIT,
                stats: Some(Arc::clone(&stats)),
                ..OverloadConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("bind monitor server");
    let addr = monitor_server.local_addr();

    (
        Topology {
            cloud_server,
            monitor_server,
            addr,
            pid,
            alice,
            carol,
        },
        stats,
    )
}

struct OverloadPoint {
    multiple: f64,
    target_rps: f64,
    goodput_rps: f64,
    admitted: usize,
    shed: usize,
}

/// One overload sweep point: open-loop arrivals at `target_rps`; every
/// non-shed response counts toward goodput, every shed must carry the
/// `X-CM-Overload` marker on a 503 — a silent drop or an unmarked
/// refusal fails the run. A health poller rides along for the whole
/// point: the admin lane must answer 200 throughout the storm.
fn run_overload_point(
    topo: &Topology,
    multiple: f64,
    target_rps: f64,
    total: usize,
) -> OverloadPoint {
    let (addr, pid) = (topo.addr, topo.pid);
    let interval = Duration::from_secs_f64(1.0 / target_rps);
    let next = Arc::new(AtomicUsize::new(0));
    let stop_health = Arc::new(AtomicBool::new(false));
    let health_stop = Arc::clone(&stop_health);
    let health = std::thread::spawn(move || {
        let mut polls = 0u64;
        while !health_stop.load(Ordering::Relaxed) {
            let resp = send(addr, &RestRequest::new(HttpMethod::Get, "/-/health"))
                .expect("health answers mid-storm");
            assert_eq!(resp.status, StatusCode::OK, "admin lane shed under load");
            assert!(!resp.is_overload_shed());
            polls += 1;
            std::thread::sleep(Duration::from_millis(10));
        }
        polls
    });
    let start = Instant::now();
    let workers: Vec<_> = (0..OVERLOAD_THREADS)
        .map(|_| {
            let alice = topo.alice.clone();
            let carol = topo.carol.clone();
            let next = Arc::clone(&next);
            std::thread::spawn(move || {
                let client = PooledClient::default();
                let mut admitted = 0usize;
                let mut shed = 0usize;
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        return (admitted, shed);
                    }
                    let due = start + interval.mul_f64(i as f64);
                    let now = Instant::now();
                    if due > now {
                        std::thread::sleep(due - now);
                    }
                    let req = request_for(pid, 0, i, &alice, &carol);
                    let resp = client.request(addr, &req).expect("overload response");
                    if resp.is_overload_shed() {
                        assert_eq!(
                            resp.status,
                            StatusCode::SERVICE_UNAVAILABLE,
                            "shed marker on a non-503"
                        );
                        shed += 1;
                    } else {
                        admitted += 1;
                    }
                }
            })
        })
        .collect();
    let mut admitted = 0usize;
    let mut shed = 0usize;
    for w in workers {
        let (a, s) = w.join().expect("loadgen thread");
        admitted += a;
        shed += s;
    }
    let elapsed = start.elapsed().as_secs_f64();
    stop_health.store(true, Ordering::Relaxed);
    let polls = health.join().expect("health poller");
    assert!(polls > 0, "health poller never ran");

    OverloadPoint {
        multiple,
        target_rps,
        goodput_rps: admitted as f64 / elapsed,
        admitted,
        shed,
    }
}

fn mode_json(name: &str, m: &ModeResult) -> String {
    let latency = if m.latencies_us.is_empty() {
        String::new()
    } else {
        format!(
            ",\n      \"p50_us\": {:.0}, \"p95_us\": {:.0}, \"p99_us\": {:.0}",
            m.percentile(50.0),
            m.percentile(95.0),
            m.percentile(99.0)
        )
    };
    format!(
        "    \"{name}\": {{\n      \"rps\": {:.0},\n      \"client_connections\": {}{latency}\n    }}",
        m.rps, m.client_connections
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let per_thread: usize = if smoke { 6 } else { 600 };

    println!(
        "PROXY THROUGHPUT ({THREADS} client threads x {per_thread} requests, two-hop topology)"
    );
    println!();
    let baseline = run_closed(Transport::WorkerPool, false, per_thread.min(150));
    println!(
        "  baseline  (close + worker pool)   : {:8.0} req/s, {} client connections",
        baseline.rps, baseline.client_connections
    );
    let pooled = run_closed(Transport::WorkerPool, true, per_thread);
    println!(
        "  pooled    (keep-alive, pool)      : {:8.0} req/s, {} client connections, p99 {:.0}us",
        pooled.rps,
        pooled.client_connections,
        pooled.percentile(99.0)
    );
    let reactor = run_closed(Transport::Reactor, true, per_thread);
    println!(
        "  reactor   (keep-alive, epoll)     : {:8.0} req/s, {} client connections, p99 {:.0}us",
        reactor.rps,
        reactor.client_connections,
        reactor.percentile(99.0)
    );
    let pipelined = run_pipelined(per_thread);
    println!(
        "  pipelined (reactor, batch {PIPELINE_BATCH})     : {:8.0} req/s, {} client connections",
        pipelined.rps, pipelined.client_connections
    );

    // Response parity: the transport must not change a single verdict.
    // The baseline runs fewer requests (connection-per-request is slow);
    // compare on the shared prefix, and the faster modes in full.
    for (name, other) in [
        ("pooled", &pooled),
        ("reactor", &reactor),
        ("pipelined", &pipelined),
    ] {
        for t in 0..THREADS {
            let n = baseline.statuses[t].len();
            assert_eq!(
                baseline.statuses[t],
                other.statuses[t][..n],
                "transport changed responses (baseline vs {name}, thread {t})"
            );
        }
    }
    assert_eq!(pooled.statuses, reactor.statuses, "pool vs reactor parity");
    assert_eq!(
        reactor.statuses, pipelined.statuses,
        "pipelining changed responses"
    );
    let response_parity = true;

    // The keep-alive runs must actually have pooled: at most one client
    // connection per thread (plus slack for the shutdown wake-up).
    for (name, m) in [
        ("pooled", &pooled),
        ("reactor", &reactor),
        ("pipelined", &pipelined),
    ] {
        assert!(
            m.client_connections <= (THREADS as u64) + 1,
            "{name} mode leaked connections: {}",
            m.client_connections
        );
    }

    // Open-loop saturation sweep against the reactor topology, rates
    // anchored to the measured closed-loop throughput.
    println!();
    println!("  open-loop sweep (reactor):");
    let topo = Topology::stand_up(Transport::Reactor, true, true);
    let fractions: &[f64] = if smoke { &[0.5] } else { &[0.4, 0.7, 0.9, 1.1] };
    let mut sweep = Vec::new();
    for &f in fractions {
        let target = (reactor.rps * f).max(50.0);
        let total = ((target * 1.2) as usize).clamp(64, 20_000);
        let point = run_open_loop(&topo, target, total);
        println!(
            "    target {:7.0} rps -> achieved {:7.0} rps, p50 {:7.0}us p95 {:7.0}us p99 {:7.0}us",
            point.target_rps, point.achieved_rps, point.p50_us, point.p95_us, point.p99_us
        );
        sweep.push(point);
    }
    topo.tear_down();

    // Overload sweep: drive the single-shard admission-controlled
    // monitor past saturation and trace the goodput curve.
    println!();
    println!(
        "  overload sweep (1 shard, {}ms budget, {OVERLOAD_THREADS} loadgen threads):",
        OVERLOAD_DEADLINE.as_millis()
    );
    let (overload_topo, overload_stats) = stand_up_overload();
    // Saturation anchor: a small closed-loop burst (8 in-flight never
    // builds queue wait near the budget, so nothing sheds here).
    let saturation_rps = {
        let (addr, pid) = (overload_topo.addr, overload_topo.pid);
        let burst = if smoke { 8 } else { 200 };
        let start = Instant::now();
        let probes: Vec<_> = (0..THREADS)
            .map(|t| {
                let alice = overload_topo.alice.clone();
                let carol = overload_topo.carol.clone();
                std::thread::spawn(move || {
                    let client = PooledClient::default();
                    for i in 0..burst {
                        let req = request_for(pid, t, i, &alice, &carol);
                        let resp = client.request(addr, &req).expect("saturation probe");
                        assert!(!resp.is_overload_shed(), "closed-loop probe shed");
                    }
                })
            })
            .collect();
        for p in probes {
            p.join().expect("probe thread");
        }
        (THREADS * burst) as f64 / start.elapsed().as_secs_f64()
    };
    println!("    saturation (closed loop, 1 shard): {saturation_rps:7.0} req/s");
    let multiples: &[f64] = if smoke { &[2.0] } else { &[0.5, 1.0, 1.5, 2.0] };
    let mut curve = Vec::new();
    for &multiple in multiples {
        let target = (saturation_rps * multiple).max(50.0);
        let total = ((target * 1.5) as usize).clamp(96, 20_000);
        let point = run_overload_point(&overload_topo, multiple, target, total);
        println!(
            "    {multiple:3.1}x target {:7.0} rps -> goodput {:7.0} rps, admitted {:6}, shed {:6}",
            point.target_rps, point.goodput_rps, point.admitted, point.shed
        );
        curve.push(point);
    }
    let admin_sheds = overload_stats.shed(Lane::Admin);
    let queue_p99_us = overload_stats.queue_delay.p99().unwrap_or(0) / 1_000;
    overload_topo.tear_down();
    let peak_goodput = curve.iter().map(|p| p.goodput_rps).fold(0.0, f64::max);
    let at_2x = curve
        .iter()
        .find(|p| (p.multiple - 2.0).abs() < 1e-9)
        .expect("2x point in curve");
    let goodput_retention = at_2x.goodput_rps / peak_goodput;
    println!(
        "    goodput at 2x saturation          : {:7.0} rps ({:.0}% of peak), \
         admitted queue p99 {queue_p99_us}us, admin sheds {admin_sheds}",
        at_2x.goodput_rps,
        goodput_retention * 100.0
    );

    let reactor_rps = reactor.rps.max(pipelined.rps);
    let speedup = reactor_rps / PR4_POOLED_BASELINE_RPS;
    let speedup_same_run = reactor_rps / pooled.rps;
    println!();
    println!("  reactor headline                  : {reactor_rps:8.0} req/s");
    println!("  speedup vs PR4 pooled baseline    : {speedup:8.2}x (fixed {PR4_POOLED_BASELINE_RPS:.0} req/s)");
    println!("  speedup vs same-run worker pool   : {speedup_same_run:8.2}x");

    let total = THREADS * per_thread;
    let modes = [
        mode_json("baseline_close_worker_pool", &baseline),
        mode_json("pooled_worker_pool", &pooled),
        mode_json("pooled_reactor", &reactor),
        mode_json("pipelined_reactor", &pipelined),
    ]
    .join(",\n");
    let sweep_json = sweep
        .iter()
        .map(|p| {
            format!(
                "    {{ \"target_rps\": {:.0}, \"achieved_rps\": {:.0}, \"p50_us\": {:.0}, \"p95_us\": {:.0}, \"p99_us\": {:.0} }}",
                p.target_rps, p.achieved_rps, p.p50_us, p.p95_us, p.p99_us
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let curve_json = curve
        .iter()
        .map(|p| {
            format!(
                "      {{ \"multiple\": {:.1}, \"target_rps\": {:.0}, \"goodput_rps\": {:.0}, \
                 \"admitted\": {}, \"shed\": {} }}",
                p.multiple, p.target_rps, p.goodput_rps, p.admitted, p.shed
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let overload_json = format!(
        "  \"overload\": {{\n    \"shards\": 1,\n    \"deadline_ms\": {},\n    \
         \"queue_limit\": {OVERLOAD_QUEUE_LIMIT},\n    \"loadgen_threads\": {OVERLOAD_THREADS},\n    \
         \"saturation_rps\": {saturation_rps:.0},\n    \"peak_goodput_rps\": {peak_goodput:.0},\n    \
         \"goodput_at_2x_rps\": {:.0},\n    \"goodput_retention_at_2x\": {goodput_retention:.2},\n    \
         \"admitted_queue_p99_us\": {queue_p99_us},\n    \"admin_lane_sheds\": {admin_sheds},\n    \
         \"sheds_marked_503\": true,\n    \"curve\": [\n{curve_json}\n    ]\n  }}",
        OVERLOAD_DEADLINE.as_millis(),
        at_2x.goodput_rps,
    );
    let json = format!(
        "{{\n  \"benchmark\": \"proxy_throughput\",\n  \"smoke\": {smoke},\n  \"threads\": {THREADS},\n  \
         \"requests_per_thread\": {per_thread},\n  \"total_requests\": {total},\n  \
         \"pipeline_batch\": {PIPELINE_BATCH},\n  \
         \"monitor_config\": {{ \"mode\": \"enforce\", \"snapshot_policy\": \"scoped\", \
         \"report_states\": false, \"speculative_reads\": true }},\n  \
         \"pr4_pooled_baseline_rps\": {PR4_POOLED_BASELINE_RPS:.0},\n  \
         \"baseline_rps\": {:.0},\n  \"pooled_rps\": {:.0},\n  \"reactor_rps\": {:.0},\n  \
         \"speedup\": {speedup:.2},\n  \"speedup_same_run\": {speedup_same_run:.2},\n  \
         \"response_parity\": {response_parity},\n  \
         \"p50_us\": {:.0},\n  \"p95_us\": {:.0},\n  \"p99_us\": {:.0},\n  \
         \"modes\": {{\n{modes}\n  }},\n  \"open_loop\": [\n{sweep_json}\n  ],\n{overload_json}\n}}\n",
        baseline.rps,
        pooled.rps,
        reactor_rps,
        reactor.percentile(50.0),
        reactor.percentile(95.0),
        reactor.percentile(99.0),
    );
    // Smoke runs land in *.smoke.json (uploaded by CI, gitignored) so
    // shared-runner numbers never shadow the committed artifact.
    let out = if smoke {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_proxy_throughput.smoke.json"
        )
    } else {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_proxy_throughput.json"
        )
    };
    std::fs::write(out, json).expect("write benchmark artifact");
    println!();
    println!("wrote {out}");

    if smoke {
        println!("smoke mode: skipping speedup assertions");
        return;
    }

    assert!(
        speedup >= 3.0,
        "reactor must be at least 3x the PR4 pooled baseline \
         ({PR4_POOLED_BASELINE_RPS:.0} req/s), got {speedup:.2}x"
    );
    assert!(
        reactor_rps >= 24_000.0,
        "reactor headline must clear 24k req/s, got {reactor_rps:.0}"
    );

    // Overload acceptance: the curve must stay flat past saturation.
    assert!(
        at_2x.shed > 0,
        "2x saturation produced no sheds — the sweep never overloaded the shard"
    );
    assert!(
        goodput_retention >= GOODPUT_FLOOR,
        "goodput at 2x saturation fell to {:.0}% of peak (floor {:.0}%)",
        goodput_retention * 100.0,
        GOODPUT_FLOOR * 100.0
    );
    assert_eq!(admin_sheds, 0, "the admin lane must never shed");
    // Admission guarantees every admitted request waited less than its
    // budget; the log2 histogram resolves a percentile to its bucket's
    // upper bound, so allow exactly that much slack.
    assert!(
        queue_p99_us <= 2 * OVERLOAD_DEADLINE.as_micros() as u64,
        "admitted queue-wait p99 {queue_p99_us}us blew the {}ms budget",
        OVERLOAD_DEADLINE.as_millis()
    );
}
