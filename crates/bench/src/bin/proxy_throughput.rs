//! Proxy-throughput experiment — the payoff of the persistent-connection
//! transport.
//!
//! The full network topology of the paper's deployment is stood up twice
//! on loopback TCP — private cloud served over HTTP, generated monitor
//! wrapping it through a remote-service adapter, monitor itself served
//! over HTTP — and hammered by 8 concurrent client threads with a
//! deterministic request mix (authorized read / forbidden delete /
//! unmodelled passthrough):
//!
//! * **baseline** — the historical transport: `Connection: close`
//!   everywhere, a fresh TCP connect per client request *and* per probe
//!   round-trip the monitor makes against the cloud;
//! * **pooled** — HTTP/1.1 keep-alive at both hops: clients reuse
//!   per-thread pooled connections, the monitor's backend adapter rides
//!   a pooled connection and batches each snapshot's probes over it.
//!
//! Every response is recorded per thread and must match byte-for-verdict
//! across the two modes — the transport may only change how fast the
//! answers arrive, never the answers.
//!
//! Results land in `BENCH_proxy_throughput.json` at the repo root. The
//! run fails if the pooled transport is not at least 3x the baseline.
//! `--smoke` runs a handful of requests, writes the artifact to
//! `BENCH_proxy_throughput.smoke.json` instead, and skips the speedup
//! assertion (used by `ci.sh`).

use cm_cloudsim::PrivateCloud;
use cm_core::{cinder_monitor, Mode};
use cm_httpkit::{send, HttpServer, PooledClient, RemoteService, ServerConfig};
use cm_model::HttpMethod;
use cm_rest::{RestRequest, SharedRestService};
use std::sync::Arc;
use std::time::Instant;

const THREADS: usize = 8;

/// The deterministic request mix, same as the concurrency battery's.
fn request_for(pid: u64, t: usize, i: usize, alice: &str, carol: &str) -> RestRequest {
    match (t + i) % 3 {
        0 => RestRequest::new(HttpMethod::Get, format!("/v3/{pid}/volumes/1")).auth_token(alice),
        1 => RestRequest::new(HttpMethod::Delete, format!("/v3/{pid}/volumes/1")).auth_token(carol),
        _ => RestRequest::new(HttpMethod::Get, format!("/unmodelled/{t}/{i}")),
    }
}

struct ModeResult {
    /// Status codes per thread, in issue order — the parity fingerprint.
    statuses: Vec<Vec<u16>>,
    rps: f64,
    client_connections: u64,
}

/// Stand the two-hop topology up and drive it with `THREADS` client
/// threads of `per_thread` requests each.
fn run_mode(pooled: bool, per_thread: usize) -> ModeResult {
    let cloud = PrivateCloud::my_project();
    let pid = cloud.project_id();
    let alice = cloud
        .issue_token("alice", "alice-pw")
        .expect("fixture")
        .token;
    let carol = cloud
        .issue_token("carol", "carol-pw")
        .expect("fixture")
        .token;
    cloud
        .state_mut()
        .create_volume(pid, "seed", 1, false)
        .expect("seed volume");

    let transport = ServerConfig {
        keep_alive: pooled,
        ..ServerConfig::default()
    };
    let cloud = Arc::new(cloud);
    let cloud_handle = Arc::clone(&cloud);
    let cloud_server = HttpServer::bind_with(
        "127.0.0.1:0",
        Arc::new(move |req| cloud_handle.call(&req)),
        transport.clone(),
    )
    .expect("bind cloud server");

    let remote = if pooled {
        RemoteService::new(cloud_server.local_addr())
    } else {
        RemoteService::connection_per_request(cloud_server.local_addr())
    };
    let mut monitor = cinder_monitor(remote)
        .expect("models generate")
        .mode(Mode::Enforce);
    monitor
        .authenticate("alice", "alice-pw")
        .expect("admin authority");
    let monitor = Arc::new(monitor);
    let monitor_handle = Arc::clone(&monitor);
    let monitor_server = HttpServer::bind_with(
        "127.0.0.1:0",
        Arc::new(move |req| monitor_handle.call(&req)),
        transport,
    )
    .expect("bind monitor server");
    let addr = monitor_server.local_addr();

    let start = Instant::now();
    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let alice = alice.clone();
            let carol = carol.clone();
            std::thread::spawn(move || {
                // One pooled client per thread: one live connection each.
                let client = PooledClient::default();
                let mut statuses = Vec::with_capacity(per_thread);
                for i in 0..per_thread {
                    let req = request_for(pid, t, i, &alice, &carol);
                    let resp = if pooled {
                        client.request(addr, &req).expect("pooled response")
                    } else {
                        send(addr, &req).expect("one-shot response")
                    };
                    statuses.push(resp.status.0);
                }
                statuses
            })
        })
        .collect();
    let statuses: Vec<Vec<u16>> = workers
        .into_iter()
        .map(|w| w.join().expect("client thread"))
        .collect();
    let elapsed = start.elapsed().as_secs_f64();
    let total = (THREADS * per_thread) as f64;

    let client_connections = monitor_server.connections_accepted();
    monitor_server.shutdown();
    cloud_server.shutdown();

    ModeResult {
        statuses,
        rps: total / elapsed,
        client_connections,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let per_thread: usize = if smoke { 5 } else { 150 };

    println!(
        "PROXY THROUGHPUT ({THREADS} client threads x {per_thread} requests, two-hop topology)"
    );
    println!();
    let baseline = run_mode(false, per_thread);
    println!(
        "  baseline (connection-per-request) : {:8.0} req/s, {} client connections",
        baseline.rps, baseline.client_connections
    );
    let pooled = run_mode(true, per_thread);
    println!(
        "  pooled   (keep-alive + batching)  : {:8.0} req/s, {} client connections",
        pooled.rps, pooled.client_connections
    );
    let speedup = pooled.rps / baseline.rps;
    println!("  speedup                           : {speedup:8.2}x");

    // Response parity: the transport must not change a single verdict.
    assert_eq!(
        baseline.statuses, pooled.statuses,
        "transport changed responses"
    );
    // The pooled run must actually have pooled: at most one client
    // connection per thread (plus slack for the shutdown wake-up).
    assert!(
        pooled.client_connections <= (THREADS as u64) + 1,
        "pooled mode leaked connections: {}",
        pooled.client_connections
    );

    let total = THREADS * per_thread;
    let json = format!(
        "{{\n  \"benchmark\": \"proxy_throughput\",\n  \"smoke\": {smoke},\n  \"threads\": {THREADS},\n  \
         \"requests_per_thread\": {per_thread},\n  \"total_requests\": {total},\n  \
         \"baseline_rps\": {:.0},\n  \"baseline_client_connections\": {},\n  \
         \"pooled_rps\": {:.0},\n  \"pooled_client_connections\": {},\n  \
         \"speedup\": {speedup:.2},\n  \"response_parity\": true\n}}\n",
        baseline.rps, baseline.client_connections, pooled.rps, pooled.client_connections
    );
    // Smoke runs land in *.smoke.json (uploaded by CI, gitignored) so
    // shared-runner numbers never shadow the committed artifact.
    let out = if smoke {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_proxy_throughput.smoke.json"
        )
    } else {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_proxy_throughput.json"
        )
    };
    std::fs::write(out, json).expect("write benchmark artifact");
    println!();
    println!("wrote {out}");

    if smoke {
        println!("smoke mode: skipping speedup assertion");
        return;
    }

    assert!(
        speedup >= 3.0,
        "pooled transport must be at least 3x the baseline, got {speedup:.2}x"
    );
}
