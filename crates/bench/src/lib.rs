//! # cm-bench — experiment harness for the DSN 2018 reproduction
//!
//! One binary per paper artifact (see `src/bin/`) and one Criterion bench
//! per quantitative question (see `benches/`). This library holds the
//! shared pieces: a synthetic-model generator for the scalability
//! ablation and a ready-made monitored-cloud harness.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use cm_cloudsim::PrivateCloud;
use cm_core::{cinder_monitor, CloudMonitor, Mode};
use cm_model::{BehavioralModel, HttpMethod, State, TransitionBuilder, Trigger};
use cm_ocl::Expr;

/// Parameters of a synthetic behavioural model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyntheticSpec {
    /// Number of states (ring topology).
    pub states: usize,
    /// Transitions per (method, resource) trigger.
    pub transitions_per_trigger: usize,
    /// Conjuncts per state invariant (controls expression size).
    pub invariant_conjuncts: usize,
}

/// Build a synthetic behavioural model of the given size. The model is
/// well-formed (validates cleanly) and uses the same OCL vocabulary as
/// the Cinder model, so contract generation and evaluation costs are
/// representative.
#[must_use]
pub fn synthetic_model(spec: SyntheticSpec) -> BehavioralModel {
    let mut m = BehavioralModel::new("synthetic", "project", "s0");
    for i in 0..spec.states.max(1) {
        let conjuncts: Vec<Expr> = (0..spec.invariant_conjuncts.max(1))
            .map(|j| {
                cm_ocl::parse(&format!("project.volumes->size() >= {}", j.min(1)))
                    .expect("synthetic invariant parses")
            })
            .collect();
        m.state(State::new(format!("s{i}"), Expr::all_of(conjuncts)));
    }
    let n = spec.states.max(1);
    for t in 0..spec.transitions_per_trigger {
        let src = format!("s{}", t % n);
        let dst = format!("s{}", (t + 1) % n);
        m.transition(
            TransitionBuilder::new(
                format!("t{t}"),
                src,
                Trigger::new(HttpMethod::Delete, "volume"),
                dst,
            )
            .guard(
                cm_ocl::parse(&format!(
                    "volume.status <> 'in-use' and user.groups = 'admin' and \
                     project.volumes->size() >= {}",
                    t % 3
                ))
                .expect("synthetic guard parses"),
            )
            .effect(
                cm_ocl::parse("project.volumes->size() < pre(project.volumes->size())")
                    .expect("synthetic effect parses"),
            )
            .security_requirement("1.4")
            .build(),
        );
    }
    m
}

/// A monitored Cinder cloud with one seeded volume and tokens for every
/// fixture user, ready for request benchmarking.
#[derive(Debug)]
pub struct BenchHarness {
    /// The monitor wrapping the simulated cloud.
    pub monitor: CloudMonitor<PrivateCloud>,
    /// Fixture project id.
    pub project_id: u64,
    /// Seeded volume id.
    pub volume_id: u64,
    /// `(user, token)` pairs for alice/bob/carol.
    pub tokens: Vec<(String, String)>,
}

/// Build the bench harness in the given mode.
///
/// # Panics
///
/// Panics when the fixture cannot be constructed (harness bug).
#[must_use]
pub fn bench_harness(mode: Mode) -> BenchHarness {
    let cloud = PrivateCloud::my_project();
    let project_id = cloud.project_id();
    let volume_id = cloud
        .state_mut()
        .create_volume(project_id, "bench", 10, false)
        .expect("quota allows one volume")
        .id;
    let mut tokens = Vec::new();
    for user in ["alice", "bob", "carol"] {
        let t = cloud
            .issue_token(user, &format!("{user}-pw"))
            .expect("fixture credentials");
        tokens.push((user.to_string(), t.token));
    }
    let mut monitor = cinder_monitor(cloud)
        .expect("fixture models generate")
        .mode(mode);
    monitor
        .authenticate("alice", "alice-pw")
        .expect("fixture admin");
    BenchHarness {
        monitor,
        project_id,
        volume_id,
        tokens,
    }
}

/// An *unmonitored* cloud baseline with the same seeded state and tokens,
/// for the Figure 2 interposition-overhead comparison.
#[derive(Debug)]
pub struct BaselineHarness {
    /// The bare simulated cloud.
    pub cloud: PrivateCloud,
    /// Fixture project id.
    pub project_id: u64,
    /// Seeded volume id.
    pub volume_id: u64,
    /// `(user, token)` pairs for alice/bob/carol.
    pub tokens: Vec<(String, String)>,
}

/// Build the unmonitored baseline.
///
/// # Panics
///
/// Panics when the fixture cannot be constructed (harness bug).
#[must_use]
pub fn baseline_harness() -> BaselineHarness {
    let cloud = PrivateCloud::my_project();
    let project_id = cloud.project_id();
    let volume_id = cloud
        .state_mut()
        .create_volume(project_id, "bench", 10, false)
        .expect("quota allows one volume")
        .id;
    let mut tokens = Vec::new();
    for user in ["alice", "bob", "carol"] {
        let t = cloud
            .issue_token(user, &format!("{user}-pw"))
            .expect("fixture credentials");
        tokens.push((user.to_string(), t.token));
    }
    BaselineHarness {
        cloud,
        project_id,
        volume_id,
        tokens,
    }
}

/// Drive `rounds` mixed request triples (authorized GET / forbidden
/// DELETE / unmodelled path) through a fresh monitored harness and
/// render the per-phase latency breakdown the monitor's metrics
/// registry collected — the observability complement to the Figure 2
/// overhead numbers.
///
/// # Panics
///
/// Panics when the fixture cannot be constructed (harness bug).
#[must_use]
pub fn phase_latency_report(mode: Mode, rounds: usize) -> String {
    use cm_rest::{RestRequest, RestService};
    let mut h = bench_harness(mode);
    let pid = h.project_id;
    let vid = h.volume_id;
    let alice = h.tokens[0].1.clone();
    let carol = h.tokens[2].1.clone();
    for _ in 0..rounds.max(1) {
        let _ = h.monitor.handle(
            &RestRequest::new(HttpMethod::Get, format!("/v3/{pid}/volumes/{vid}"))
                .auth_token(&alice),
        );
        let _ = h.monitor.handle(
            &RestRequest::new(HttpMethod::Delete, format!("/v3/{pid}/volumes/{vid}"))
                .auth_token(&carol),
        );
        let _ = h
            .monitor
            .handle(&RestRequest::new(HttpMethod::Get, "/unmodelled/path"));
    }
    format!(
        "phase-latency breakdown ({} rounds x 3 requests, mode {mode:?}):\n{}",
        rounds.max(1),
        h.monitor.metrics().render_text()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_contracts::generate;
    use cm_model::validate_behavioral_model;

    #[test]
    fn synthetic_models_are_well_formed() {
        for spec in [
            SyntheticSpec {
                states: 1,
                transitions_per_trigger: 1,
                invariant_conjuncts: 1,
            },
            SyntheticSpec {
                states: 3,
                transitions_per_trigger: 8,
                invariant_conjuncts: 4,
            },
            SyntheticSpec {
                states: 10,
                transitions_per_trigger: 64,
                invariant_conjuncts: 8,
            },
        ] {
            let m = synthetic_model(spec);
            let report = validate_behavioral_model(&m, None);
            assert!(report.is_valid(), "{spec:?}: {report}");
            let contracts = generate(&m).unwrap();
            assert_eq!(contracts.clause_count(), spec.transitions_per_trigger);
        }
    }

    #[test]
    fn contract_size_scales_with_spec() {
        let small = synthetic_model(SyntheticSpec {
            states: 2,
            transitions_per_trigger: 2,
            invariant_conjuncts: 1,
        });
        let large = synthetic_model(SyntheticSpec {
            states: 2,
            transitions_per_trigger: 16,
            invariant_conjuncts: 1,
        });
        let pre_small = &generate(&small).unwrap().contracts[0].pre;
        let pre_large = &generate(&large).unwrap().contracts[0].pre;
        assert!(pre_large.node_count() > pre_small.node_count() * 4);
    }

    #[test]
    fn harness_serves_requests() {
        use cm_rest::{RestRequest, RestService};
        let mut h = bench_harness(Mode::Enforce);
        let (_, token) = h.tokens[0].clone();
        let resp = h.monitor.handle(
            &RestRequest::new(
                HttpMethod::Get,
                format!("/v3/{}/volumes/{}", h.project_id, h.volume_id),
            )
            .auth_token(token),
        );
        assert!(resp.status.is_success(), "{resp:?}");
    }

    #[test]
    fn phase_latency_report_covers_all_phases() {
        let report = phase_latency_report(Mode::Enforce, 2);
        assert!(report.contains("2 rounds x 3 requests"), "{report}");
        for phase in ["pre_check", "forward", "snapshot", "post_check", "total"] {
            assert!(report.contains(phase), "missing {phase} in:\n{report}");
        }
        // 2 rounds x 3 requests = 6 observations per histogram.
        assert!(report.contains("count=6"), "{report}");
    }

    #[test]
    fn baseline_serves_requests() {
        use cm_rest::{RestRequest, RestService};
        let mut h = baseline_harness();
        let (_, token) = h.tokens[0].clone();
        let resp = h.cloud.handle(
            &RestRequest::new(
                HttpMethod::Get,
                format!("/v3/{}/volumes/{}", h.project_id, h.volume_id),
            )
            .auth_token(token),
        );
        assert!(resp.status.is_success(), "{resp:?}");
    }
}
