//! Bench F2/A2 — the Figure 2 workflow cost: monitor-interposed requests
//! vs. direct cloud requests, per HTTP method, plus the cost split of the
//! monitor's phases (probe, pre-check, post-check).

use cm_bench::{baseline_harness, bench_harness};
use cm_contracts::generate;
use cm_core::{Mode, ProbeTarget, StateProber};
use cm_model::{cinder, HttpMethod, Trigger};
use cm_rest::{RestRequest, RestService};
use criterion::{criterion_group, Criterion};
use std::hint::black_box;

fn direct_vs_monitored(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_direct_vs_monitored");

    // Direct GET against the bare cloud.
    {
        let mut h = baseline_harness();
        let token = h.tokens[0].1.clone();
        let path = format!("/v3/{}/volumes/{}", h.project_id, h.volume_id);
        group.bench_function("GET_direct", |b| {
            b.iter(|| {
                let req = RestRequest::new(HttpMethod::Get, path.clone()).auth_token(&token);
                black_box(h.cloud.handle(&req))
            });
        });
    }

    // Monitored GET (enforce mode: probe + pre + forward + probe + post).
    {
        let mut h = bench_harness(Mode::Enforce);
        let token = h.tokens[0].1.clone();
        let path = format!("/v3/{}/volumes/{}", h.project_id, h.volume_id);
        group.bench_function("GET_monitored", |b| {
            b.iter(|| {
                let req = RestRequest::new(HttpMethod::Get, path.clone()).auth_token(&token);
                black_box(h.monitor.handle(&req))
            });
        });
    }

    // Monitored GET in observe mode.
    {
        let mut h = bench_harness(Mode::Observe);
        let token = h.tokens[0].1.clone();
        let path = format!("/v3/{}/volumes/{}", h.project_id, h.volume_id);
        group.bench_function("GET_observed", |b| {
            b.iter(|| {
                let req = RestRequest::new(HttpMethod::Get, path.clone()).auth_token(&token);
                black_box(h.monitor.handle(&req))
            });
        });
    }

    // Blocked DELETE (pre-violation path: probe + pre only).
    {
        let mut h = bench_harness(Mode::Enforce);
        let carol = h.tokens[2].1.clone();
        let path = format!("/v3/{}/volumes/{}", h.project_id, h.volume_id);
        group.bench_function("DELETE_blocked", |b| {
            b.iter(|| {
                let req = RestRequest::new(HttpMethod::Delete, path.clone()).auth_token(&carol);
                black_box(h.monitor.handle(&req))
            });
        });
    }

    group.finish();
}

fn phase_costs(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_phase_costs");

    // Probe: one full state snapshot.
    {
        let mut h = baseline_harness();
        let target = ProbeTarget {
            project_id: h.project_id,
            volume_id: Some(h.volume_id),
            snapshot_id: None,
            user_token: h.tokens[0].1.clone(),
            monitor_token: h.tokens[0].1.clone(),
        };
        let prober = StateProber::default();
        group.bench_function("state_snapshot", |b| {
            b.iter(|| black_box(prober.snapshot(&mut h.cloud, &target)));
        });
    }

    // Pre-condition evaluation on a materialised snapshot.
    {
        let mut h = baseline_harness();
        let target = ProbeTarget {
            project_id: h.project_id,
            volume_id: Some(h.volume_id),
            snapshot_id: None,
            user_token: h.tokens[0].1.clone(),
            monitor_token: h.tokens[0].1.clone(),
        };
        let prober = StateProber::default();
        let snapshot = prober.snapshot(&mut h.cloud, &target);
        let contracts = generate(&cinder::behavioral_model()).expect("generates");
        let delete = contracts
            .contract_for(&Trigger::new(HttpMethod::Delete, "volume"))
            .expect("modelled")
            .clone();
        group.bench_function("pre_condition_eval", |b| {
            b.iter(|| black_box(delete.evaluate_pre(&snapshot).unwrap()));
        });
        group.bench_function("post_condition_eval", |b| {
            b.iter(|| black_box(delete.evaluate_post(&snapshot, &snapshot).unwrap()));
        });
    }

    group.finish();
}

criterion_group!(benches, direct_vs_monitored, phase_costs);

fn snapshot_policy_costs(c: &mut Criterion) {
    use cm_core::{CloudMonitor, SnapshotPolicy};
    use cm_model::{BehavioralModel, State, TransitionBuilder, Trigger};

    // A model whose only contract references the `project` root: Minimal
    // probing skips the volume/quota/user round-trips.
    fn project_only_model() -> BehavioralModel {
        let mut m = BehavioralModel::new("ProjectReads", "project", "exists");
        m.state(State::new(
            "exists",
            cm_ocl::parse("project.id->size() = 1").expect("parses"),
        ));
        m.transition(
            TransitionBuilder::new(
                "t_get",
                "exists",
                Trigger::new(HttpMethod::Get, "project"),
                "exists",
            )
            .effect(cm_ocl::parse("project.id->size() = pre(project.id->size())").expect("parses"))
            .build(),
        );
        m
    }

    let mut group = c.benchmark_group("snapshot_policy_full_vs_minimal");
    for (name, policy) in [
        ("full", SnapshotPolicy::Full),
        ("minimal", SnapshotPolicy::Minimal),
    ] {
        let base = baseline_harness();
        let token = base.tokens[0].1.clone();
        let pid = base.project_id;
        let monitor_cloud = base.cloud;
        let mut monitor = CloudMonitor::generate(
            &cinder::resource_model(),
            &project_only_model(),
            None,
            monitor_cloud,
        )
        .expect("generates")
        .snapshot_policy(policy);
        monitor.authenticate("alice", "alice-pw").expect("fixture");
        let path = format!("/v3/{pid}");
        group.bench_function(name, |b| {
            b.iter(|| {
                let req = RestRequest::new(HttpMethod::Get, path.clone()).auth_token(&token);
                black_box(monitor.handle(&req))
            });
        });
    }
    group.finish();
}

criterion_group!(policy_benches, snapshot_policy_costs);

fn main() {
    benches();
    policy_benches();
    // The observability complement to the timing numbers above: the same
    // phase split, but measured by the monitor's own metrics registry.
    println!();
    println!("{}", cm_bench::phase_latency_report(Mode::Enforce, 50));
}
