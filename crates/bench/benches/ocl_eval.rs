//! Bench A4 — OCL engine microbenchmarks: lexing/parsing, type checking
//! and evaluation of Listing-1-scale expressions.

use cm_ocl::{check, parse, EvalContext, MapNavigator, ObjRef, PermissiveEnv, Value};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const INVARIANT: &str = "project.id->size()=1 and project.volumes->size()>=1 and \
                         project.volumes->size() < quota_sets.volume";
const GUARD: &str = "volume.status <> 'in-use' and user.groups = 'admin'";
const LISTING1_DISJUNCT: &str = "(project.id->size()=1 and project.volumes->size()>=1 and \
      project.volumes->size() < quota_sets.volume and volume.status <> 'in-use' and \
      user.groups = 'admin') or \
     (project.id->size()=1 and project.volumes->size()>=1 and \
      project.volumes->size() = quota_sets.volume and volume.status <> 'in-use' and \
      user.groups = 'admin')";

fn cinder_env() -> MapNavigator {
    let project = ObjRef::new("project", 4);
    let volume = ObjRef::new("volume", 7);
    let quota = ObjRef::new("quota_sets", 1);
    let user = ObjRef::new("user", 2);
    let mut nav = MapNavigator::new();
    nav.set_variable("project", project.clone())
        .set_variable("volume", volume.clone())
        .set_variable("quota_sets", quota.clone())
        .set_variable("user", user.clone());
    nav.set_attribute(project.clone(), "id", Value::set(vec![Value::Int(4)]))
        .set_attribute(
            project,
            "volumes",
            Value::set(vec![Value::Obj(volume.clone())]),
        )
        .set_attribute(volume, "status", "available")
        .set_attribute(quota, "volume", 10i64)
        .set_attribute(user, "groups", "admin");
    nav
}

fn parse_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ocl_parse");
    group.bench_function("invariant", |b| {
        b.iter(|| black_box(parse(INVARIANT).unwrap()))
    });
    group.bench_function("guard", |b| b.iter(|| black_box(parse(GUARD).unwrap())));
    group.bench_function("listing1_pre", |b| {
        b.iter(|| black_box(parse(LISTING1_DISJUNCT).unwrap()));
    });
    group.finish();
}

fn typecheck_bench(c: &mut Criterion) {
    let expr = parse(LISTING1_DISJUNCT).unwrap();
    c.bench_function("ocl_typecheck/listing1_pre", |b| {
        b.iter(|| black_box(check(&expr, &PermissiveEnv)));
    });
}

fn eval_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ocl_eval");
    let nav = cinder_env();
    for (name, src) in [
        ("invariant", INVARIANT),
        ("guard", GUARD),
        ("listing1_pre", LISTING1_DISJUNCT),
    ] {
        let expr = parse(src).unwrap();
        group.bench_function(name, |b| {
            b.iter(|| black_box(EvalContext::new(&nav).eval_bool(&expr).unwrap()));
        });
    }
    // Post-condition with pre-state snapshot.
    let post = parse("pre(project.volumes->size()) >= project.volumes->size()").unwrap();
    let pre_nav = cinder_env();
    group.bench_function("post_with_snapshot", |b| {
        b.iter(|| {
            black_box(
                EvalContext::with_pre_state(&nav, &pre_nav)
                    .eval_bool(&post)
                    .unwrap(),
            )
        });
    });
    group.finish();
}

criterion_group!(benches, parse_bench, typecheck_bench, eval_bench);
criterion_main!(benches);
