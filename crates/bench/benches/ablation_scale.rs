//! Bench A1 — scalability ablation: contract generation and evaluation
//! cost as the behavioural model grows (transitions per trigger — i.e.
//! disjuncts per contract — and invariant size).

use cm_bench::{synthetic_model, SyntheticSpec};
use cm_contracts::generate;
use cm_ocl::{EvalContext, MapNavigator, ObjRef, Value};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn eval_env() -> MapNavigator {
    let project = ObjRef::new("project", 1);
    let volume = ObjRef::new("volume", 1);
    let user = ObjRef::new("user", 1);
    let mut nav = MapNavigator::new();
    nav.set_variable("project", project.clone())
        .set_variable("volume", volume.clone())
        .set_variable("user", user.clone());
    nav.set_attribute(
        project,
        "volumes",
        Value::set(vec![Value::Obj(volume.clone())]),
    )
    .set_attribute(volume, "status", "available")
    .set_attribute(user, "groups", "admin");
    nav
}

fn generation_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("contract_generation_vs_transitions");
    for transitions in [1usize, 4, 16, 64, 256] {
        let model = synthetic_model(SyntheticSpec {
            states: 4,
            transitions_per_trigger: transitions,
            invariant_conjuncts: 3,
        });
        group.throughput(Throughput::Elements(transitions as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(transitions),
            &model,
            |b, model| b.iter(|| black_box(generate(model).unwrap())),
        );
    }
    group.finish();
}

fn evaluation_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("pre_condition_eval_vs_disjuncts");
    let nav = eval_env();
    for transitions in [1usize, 4, 16, 64, 256] {
        let model = synthetic_model(SyntheticSpec {
            states: 4,
            transitions_per_trigger: transitions,
            invariant_conjuncts: 3,
        });
        let contracts = generate(&model).unwrap();
        let pre = contracts.contracts[0].pre.clone();
        group.throughput(Throughput::Elements(transitions as u64));
        group.bench_with_input(BenchmarkId::from_parameter(transitions), &pre, |b, pre| {
            b.iter(|| black_box(EvalContext::new(&nav).eval_bool(pre).unwrap()));
        });
    }
    group.finish();
}

fn invariant_size_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("pre_condition_eval_vs_invariant_size");
    let nav = eval_env();
    for conjuncts in [1usize, 4, 16, 64] {
        let model = synthetic_model(SyntheticSpec {
            states: 2,
            transitions_per_trigger: 4,
            invariant_conjuncts: conjuncts,
        });
        let contracts = generate(&model).unwrap();
        let pre = contracts.contracts[0].pre.clone();
        group.throughput(Throughput::Elements(conjuncts as u64));
        group.bench_with_input(BenchmarkId::from_parameter(conjuncts), &pre, |b, pre| {
            b.iter(|| black_box(EvalContext::new(&nav).eval_bool(pre).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    generation_scaling,
    evaluation_scaling,
    invariant_size_scaling
);
criterion_main!(benches);
