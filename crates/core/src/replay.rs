//! Differential replay: re-evaluate a recorded audit trace against the
//! *current* contract set.
//!
//! An [`cm_audit::AuditRecord`] carries the serialized pre/post OCL
//! environments the monitor observed, so a trace can be re-judged
//! without a live cloud: [`ReplayEngine`] rebuilds each environment,
//! runs the (possibly updated) compiled contracts over it, and
//! reclassifies with the same decision procedure `CloudMonitor::process`
//! uses. `cmcli audit replay` diffs the result against the recorded
//! verdicts — a changed contract set surfaces *diffs*, never errors.
//!
//! Replay cannot reproduce what was never observed: a record whose
//! context lacks the facts a branch needs (never forwarded, no post
//! snapshot) replays as [`ReplayOutcome::Indeterminate`], which counts
//! as a diff (the new contract set demands evidence the old trace does
//! not hold) rather than a failure.

use crate::monitor::{expected_success_status, MonitorBuildError};
use cm_audit::{AuditRecord, MonitorMode, ReplayContext, VerdictCode};
use cm_contracts::{
    generate_with, CompiledContractSet, ContractSet, GenerateOptions, MethodContract,
};
use cm_model::{BehavioralModel, HttpMethod, Trigger};
use cm_ocl::{EnvView, EvalScratch};
use cm_rbac::SecurityRequirementsTable;
use cm_rest::{Json, StatusCode};

/// What one record replayed to under the current contract set.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayOutcome {
    /// The record carried enough evidence to reach a verdict.
    Verdict {
        /// The re-derived verdict.
        verdict: VerdictCode,
        /// The re-derived requirement attribution.
        requirements: Vec<String>,
    },
    /// The recorded context lacks the facts this branch needs under the
    /// current contracts (e.g. never forwarded, no post snapshot).
    Indeterminate(String),
}

impl ReplayOutcome {
    fn verdict(verdict: VerdictCode, requirements: Vec<String>) -> Self {
        ReplayOutcome::Verdict {
            verdict,
            requirements,
        }
    }

    /// The verdict, when one was reached.
    #[must_use]
    pub fn as_verdict(&self) -> Option<&VerdictCode> {
        match self {
            ReplayOutcome::Verdict { verdict, .. } => Some(verdict),
            ReplayOutcome::Indeterminate(_) => None,
        }
    }
}

/// One record's recorded-vs-replayed comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayEntry {
    /// Monitor admission sequence number of the source record.
    pub seq: u64,
    /// Request method (as recorded).
    pub method: String,
    /// Request path (as recorded).
    pub path: String,
    /// The verdict the monitor reached at record time.
    pub recorded: VerdictCode,
    /// The requirement ids attributed at record time.
    pub recorded_requirements: Vec<String>,
    /// The outcome under the current contract set.
    pub replayed: ReplayOutcome,
}

/// Order-insensitive requirement comparison (attribution order follows
/// clause order, which a regenerated contract set may permute).
fn same_requirements(a: &[String], b: &[String]) -> bool {
    let mut a: Vec<&String> = a.iter().collect();
    let mut b: Vec<&String> = b.iter().collect();
    a.sort();
    a.dedup();
    b.sort();
    b.dedup();
    a == b
}

impl ReplayEntry {
    /// Whether replay disagrees with the record. Indeterminate outcomes
    /// count as diffs: the current contracts demand evidence the trace
    /// does not hold.
    #[must_use]
    pub fn is_diff(&self) -> bool {
        match &self.replayed {
            ReplayOutcome::Verdict {
                verdict,
                requirements,
            } => {
                verdict != &self.recorded
                    || !same_requirements(requirements, &self.recorded_requirements)
            }
            ReplayOutcome::Indeterminate(_) => true,
        }
    }

    /// Render for `cmcli audit replay` output.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let reqs = |rs: &[String]| Json::Array(rs.iter().cloned().map(Json::Str).collect());
        let mut fields = vec![
            (
                "seq",
                Json::Int(i64::try_from(self.seq).unwrap_or(i64::MAX)),
            ),
            ("method", Json::Str(self.method.clone())),
            ("path", Json::Str(self.path.clone())),
            ("recorded", Json::Str(self.recorded.label())),
            ("recorded_requirements", reqs(&self.recorded_requirements)),
        ];
        match &self.replayed {
            ReplayOutcome::Verdict {
                verdict,
                requirements,
            } => {
                fields.push(("replayed", Json::Str(verdict.label())));
                fields.push(("replayed_requirements", reqs(requirements)));
            }
            ReplayOutcome::Indeterminate(reason) => {
                fields.push(("replayed", Json::Str("indeterminate".into())));
                fields.push(("indeterminate_reason", Json::Str(reason.clone())));
            }
        }
        fields.push(("diff", Json::Bool(self.is_diff())));
        Json::object(fields)
    }
}

/// The outcome of replaying a whole trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayReport {
    /// Per-record comparisons, in trace order.
    pub entries: Vec<ReplayEntry>,
}

impl ReplayReport {
    /// Entries where replay disagrees with the record.
    pub fn diffs(&self) -> impl Iterator<Item = &ReplayEntry> {
        self.entries.iter().filter(|e| e.is_diff())
    }

    /// Number of disagreeing entries.
    #[must_use]
    pub fn diff_count(&self) -> usize {
        self.diffs().count()
    }

    /// Number of agreeing entries.
    #[must_use]
    pub fn matched(&self) -> usize {
        self.entries.len() - self.diff_count()
    }

    /// True when every record replayed to its recorded verdict.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diff_count() == 0
    }

    /// Render for `cmcli audit replay` output.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let count = |n: usize| Json::Int(i64::try_from(n).unwrap_or(i64::MAX));
        Json::object(vec![
            ("records", count(self.entries.len())),
            ("matched", count(self.matched())),
            ("diffs", count(self.diff_count())),
            ("clean", Json::Bool(self.is_clean())),
            (
                "entries",
                Json::Array(self.entries.iter().map(ReplayEntry::to_json).collect()),
            ),
        ])
    }
}

/// Re-evaluates recorded audit traces against a contract set, using the
/// same compiled pipeline and decision procedure as the live monitor.
#[derive(Debug)]
pub struct ReplayEngine {
    contracts: ContractSet,
    compiled: CompiledContractSet,
    scratch: EvalScratch,
}

impl ReplayEngine {
    /// Build from an already-generated contract set.
    #[must_use]
    pub fn from_contract_set(contracts: ContractSet) -> Self {
        let compiled = CompiledContractSet::compile(&contracts);
        ReplayEngine {
            contracts,
            compiled,
            scratch: EvalScratch::new(),
        }
    }

    /// Generate and merge contracts from behavioural models, mirroring
    /// `CloudMonitor::generate_multi` (same options, same merge rules),
    /// so replaying against unchanged models reproduces the monitor's
    /// verdicts exactly.
    ///
    /// # Errors
    ///
    /// Contract-generation failures or overlapping triggers.
    pub fn from_behaviors(
        behaviors: &[&BehavioralModel],
        security: Option<&SecurityRequirementsTable>,
    ) -> Result<Self, MonitorBuildError> {
        let mut merged = ContractSet::default();
        for behavior in behaviors {
            let set = generate_with(
                behavior,
                &GenerateOptions {
                    security,
                    simplify: false,
                },
            )
            .map_err(|e| MonitorBuildError { message: e.message })?;
            for contract in set.contracts {
                if merged.contract_for(&contract.trigger).is_some() {
                    return Err(MonitorBuildError {
                        message: format!(
                            "trigger {} is modelled by more than one state machine",
                            contract.trigger
                        ),
                    });
                }
                merged.contracts.push(contract);
            }
            merged.states.extend(set.states);
        }
        Ok(Self::from_contract_set(merged))
    }

    /// The contract set replay judges against.
    #[must_use]
    pub fn contracts(&self) -> &ContractSet {
        &self.contracts
    }

    /// Replay a whole trace in order.
    pub fn replay(&mut self, records: &[AuditRecord]) -> ReplayReport {
        let entries = records
            .iter()
            .map(|r| ReplayEntry {
                seq: r.seq,
                method: r.method.clone(),
                path: r.path.clone(),
                recorded: r.verdict.clone(),
                recorded_requirements: r.requirements.clone(),
                replayed: self.replay_record(r),
            })
            .collect();
        ReplayReport { entries }
    }

    /// The contract governing a record's trigger, if the current set
    /// models it.
    fn contract_for(&self, record: &AuditRecord) -> Option<(usize, &MethodContract)> {
        let (method, resource) = record.trigger.as_ref()?;
        let method: HttpMethod = method.parse().ok()?;
        let trigger = Trigger::new(method, resource.as_str());
        let idx = self.compiled.index_for(&trigger)?;
        Some((idx, &self.contracts.contracts[idx]))
    }

    /// Re-classify one record. Follows `CloudMonitor::process_inner`
    /// branch for branch, with the recorded transport facts standing in
    /// for the live cloud.
    pub fn replay_record(&mut self, record: &AuditRecord) -> ReplayOutcome {
        match &record.context {
            ReplayContext::Unmodelled => {
                ReplayOutcome::verdict(VerdictCode::NotModelled, Vec::new())
            }
            ReplayContext::MethodNotAllowed { enforced: true, .. } => {
                ReplayOutcome::verdict(VerdictCode::PreBlocked, Vec::new())
            }
            ReplayContext::MethodNotAllowed {
                enforced: false,
                cloud_status,
            } => match cloud_status {
                Some(s) if StatusCode(*s).is_success() => {
                    ReplayOutcome::verdict(VerdictCode::WrongAcceptance, Vec::new())
                }
                Some(_) => ReplayOutcome::verdict(VerdictCode::Pass, Vec::new()),
                None => ReplayOutcome::Indeterminate(
                    "no cloud response recorded for forwarded method".into(),
                ),
            },
            ReplayContext::BadTarget => {
                ReplayOutcome::verdict(VerdictCode::ContractError, Vec::new())
            }
            ReplayContext::DegradedPre { .. } | ReplayContext::DegradedForward => {
                // The transport, not the contracts, decided these: the
                // verdict stays Degraded, but attribution follows the
                // *current* contract's requirements.
                match self.contract_for(record) {
                    Some((_, contract)) => ReplayOutcome::verdict(
                        VerdictCode::Degraded,
                        contract.security_requirements.clone(),
                    ),
                    None => ReplayOutcome::verdict(VerdictCode::NotModelled, Vec::new()),
                }
            }
            ReplayContext::Drift { .. } => {
                // A drift record carries no evaluation environment to
                // re-judge — it is the anti-entropy pass's observation,
                // not a contract decision. Attribution follows the
                // current contract set like the degraded arms.
                match self.contract_for(record) {
                    Some((_, contract)) => ReplayOutcome::verdict(
                        VerdictCode::Drift,
                        contract.security_requirements.clone(),
                    ),
                    None => ReplayOutcome::verdict(VerdictCode::Drift, record.requirements.clone()),
                }
            }
            ReplayContext::Checked {
                pre_env,
                post_env,
                post_partial,
                probe_denials,
                forwarded,
                cloud_status,
                // Whether the environment came from the replica or a
                // probe pass does not change how it re-judges.
                provenance: _,
            } => {
                let Some((idx, _)) = self.contract_for(record) else {
                    return ReplayOutcome::verdict(VerdictCode::NotModelled, Vec::new());
                };
                let contract = &self.contracts.contracts[idx];
                let compiled = &self.compiled.contracts()[idx];
                let syms = self.compiled.symbols();
                let scratch = &mut self.scratch;
                let method: HttpMethod = match record.method.parse() {
                    Ok(m) => m,
                    Err(_) => {
                        return ReplayOutcome::Indeterminate(format!(
                            "unknown method {:?}",
                            record.method
                        ))
                    }
                };

                let pre_nav = pre_env.to_navigator();
                let pre_view = EnvView::from_navigator(&pre_nav, syms);
                compiled.begin_pre(scratch);
                let pre_ok = match compiled.evaluate_pre(syms, &pre_view, scratch) {
                    Ok(v) => v,
                    Err(_) => {
                        return ReplayOutcome::verdict(VerdictCode::ContractError, Vec::new())
                    }
                };
                // Same enabled-clause attribution as the monitor's
                // compiled path (memo table still warm from the pre).
                let requirements = compiled
                    .enabled_clause_indices(syms, &pre_view, scratch)
                    .map(|idxs| {
                        let mut out: Vec<String> = Vec::new();
                        for i in idxs {
                            for r in &contract.clauses[i].security_requirements {
                                if !out.contains(r) {
                                    out.push(r.clone());
                                }
                            }
                        }
                        out
                    })
                    .unwrap_or_default();

                if record.mode == MonitorMode::Enforce && !pre_ok {
                    return ReplayOutcome::verdict(
                        VerdictCode::PreBlocked,
                        contract.security_requirements.clone(),
                    );
                }
                if !forwarded {
                    return ReplayOutcome::Indeterminate(
                        "not forwarded in the recorded trace".into(),
                    );
                }
                let Some(status) = *cloud_status else {
                    return ReplayOutcome::Indeterminate("no cloud response recorded".into());
                };
                let status = StatusCode(status);
                let success = status.is_success();

                let verdict = if pre_ok && success {
                    let expected = expected_success_status(method);
                    if status != expected {
                        VerdictCode::WrongStatus {
                            expected: expected.0,
                            actual: status.0,
                        }
                    } else if *post_partial {
                        return ReplayOutcome::verdict(
                            VerdictCode::Degraded,
                            contract.security_requirements.clone(),
                        );
                    } else {
                        let Some(post_env) = post_env else {
                            return ReplayOutcome::Indeterminate("no post-state recorded".into());
                        };
                        let post_nav = post_env.to_navigator();
                        let post_view = EnvView::from_navigator(&post_nav, syms);
                        compiled.begin_post(scratch);
                        match compiled.evaluate_post(syms, &post_view, &pre_view, scratch) {
                            Ok(true) => VerdictCode::Pass,
                            Ok(false) => VerdictCode::PostViolation,
                            Err(_) => VerdictCode::ContractError,
                        }
                    }
                } else if pre_ok && status.is_gateway_error() {
                    // The monitor's gateway disambiguation: only a
                    // holding post-condition convicts; everything else
                    // is indistinguishable from transport weather.
                    let executed = if *post_partial {
                        false
                    } else if let Some(post_env) = post_env {
                        let post_nav = post_env.to_navigator();
                        let post_view = EnvView::from_navigator(&post_nav, syms);
                        compiled.begin_post(scratch);
                        compiled
                            .evaluate_post(syms, &post_view, &pre_view, scratch)
                            .unwrap_or(false)
                    } else {
                        false
                    };
                    if executed {
                        VerdictCode::WrongStatus {
                            expected: expected_success_status(method).0,
                            actual: status.0,
                        }
                    } else {
                        return ReplayOutcome::verdict(
                            VerdictCode::Degraded,
                            contract.security_requirements.clone(),
                        );
                    }
                } else if pre_ok {
                    VerdictCode::WrongDenial
                } else if success {
                    VerdictCode::WrongAcceptance
                } else {
                    VerdictCode::Pass
                };

                // Denied monitor probes surface as wrong denials even on
                // an otherwise-passing request (monitor parity).
                let verdict = if verdict == VerdictCode::Pass && !probe_denials.is_empty() {
                    VerdictCode::WrongDenial
                } else {
                    verdict
                };
                let requirements = if verdict.is_violation() && requirements.is_empty() {
                    contract.security_requirements.clone()
                } else {
                    requirements
                };
                ReplayOutcome::verdict(verdict, requirements)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_audit::EnvSnapshot;
    use cm_model::cinder;
    use cm_ocl::{MapNavigator, ObjRef, Value};

    fn engine() -> ReplayEngine {
        ReplayEngine::from_behaviors(&[&cinder::behavioral_model()], None).unwrap()
    }

    /// Project with `n` volumes (quota 10), addressed volume `status`,
    /// requester role `role` — the canonical contract-test environment.
    fn env(n: i64, role: &str, status: &str) -> EnvSnapshot {
        let project = ObjRef::new("project", 1);
        let quota = ObjRef::new("quota_sets", 1);
        let user = ObjRef::new("user", 1);
        let mut nav = MapNavigator::new();
        let volumes: Vec<Value> = (0..n)
            .map(|i| {
                let v = ObjRef::new("volume", i as u64 + 1);
                nav.set_attribute(v.clone(), "id", Value::set(vec![Value::Int(i + 1)]));
                nav.set_attribute(v.clone(), "status", status);
                Value::Obj(v)
            })
            .collect();
        nav.set_variable("project", project.clone());
        nav.set_variable("quota_sets", quota.clone());
        nav.set_variable("user", user.clone());
        nav.set_variable("volume", ObjRef::new("volume", 1));
        nav.set_attribute(project.clone(), "id", Value::set(vec![Value::Int(1)]));
        nav.set_attribute(project, "volumes", Value::set(volumes));
        nav.set_attribute(quota, "volume", 10i64);
        nav.set_attribute(user, "groups", role);
        EnvSnapshot::capture(&nav)
    }

    fn checked_record(
        verdict: VerdictCode,
        requirements: Vec<String>,
        mode: MonitorMode,
        pre: EnvSnapshot,
        post: Option<EnvSnapshot>,
        forwarded: bool,
        cloud_status: Option<u16>,
    ) -> AuditRecord {
        AuditRecord {
            seq: 1,
            ts_nanos: 0,
            method: "DELETE".into(),
            path: "/v3/1/volumes/1".into(),
            route: Some("/v3/{project_id}/volumes/{volume_id}".into()),
            trigger: Some(("DELETE".into(), "volume".into())),
            mode,
            degraded_policy: "fail-closed".into(),
            verdict,
            requirements,
            status: 204,
            diagnostics: String::new(),
            context: ReplayContext::Checked {
                pre_env: pre,
                post_env: post,
                post_partial: false,
                probe_denials: Vec::new(),
                forwarded,
                cloud_status,
                provenance: cm_audit::EnvProvenance::default(),
            },
        }
    }

    #[test]
    fn successful_delete_replays_to_pass() {
        let rec = checked_record(
            VerdictCode::Pass,
            vec!["1.4".into()],
            MonitorMode::Enforce,
            env(2, "admin", "available"),
            Some(env(1, "admin", "available")),
            true,
            Some(204),
        );
        let report = engine().replay(&[rec]);
        assert!(report.is_clean(), "{:?}", report.entries[0]);
        assert_eq!(
            report.entries[0].replayed,
            ReplayOutcome::Verdict {
                verdict: VerdictCode::Pass,
                requirements: vec!["1.4".into()],
            }
        );
    }

    #[test]
    fn unauthorized_delete_replays_to_pre_blocked_in_enforce() {
        let rec = checked_record(
            VerdictCode::PreBlocked,
            vec!["1.4".into()],
            MonitorMode::Enforce,
            env(2, "user", "available"),
            None,
            false,
            None,
        );
        let report = engine().replay(&[rec]);
        assert!(report.is_clean(), "{:?}", report.entries[0]);
    }

    #[test]
    fn unchanged_post_state_replays_to_post_violation() {
        let rec = checked_record(
            VerdictCode::PostViolation,
            vec!["1.4".into()],
            MonitorMode::Observe,
            env(2, "admin", "available"),
            Some(env(2, "admin", "available")),
            true,
            Some(204),
        );
        let report = engine().replay(&[rec]);
        assert!(report.is_clean(), "{:?}", report.entries[0]);
    }

    #[test]
    fn observe_mode_wrong_acceptance_reproduces() {
        let rec = checked_record(
            VerdictCode::WrongAcceptance,
            vec!["1.4".into()],
            MonitorMode::Observe,
            env(2, "user", "available"),
            Some(env(1, "user", "available")),
            true,
            Some(204),
        );
        let report = engine().replay(&[rec]);
        assert!(report.is_clean(), "{:?}", report.entries[0]);
    }

    #[test]
    fn mutated_contract_set_surfaces_diffs_not_errors() {
        // Record a pass under the real model, then replay against a
        // model whose DELETE guard requires a different role.
        let rec = checked_record(
            VerdictCode::Pass,
            vec!["1.4".into()],
            MonitorMode::Enforce,
            env(2, "admin", "available"),
            Some(env(1, "admin", "available")),
            true,
            Some(204),
        );
        let mut model = cinder::behavioral_model();
        for t in &mut model.transitions {
            if let Some(g) = t.guard.take() {
                // Invert every guard: what was allowed is now blocked.
                t.guard = Some(g.negate());
            }
        }
        let mut engine = ReplayEngine::from_behaviors(&[&model], None).unwrap();
        let report = engine.replay(&[rec]);
        assert_eq!(report.diff_count(), 1);
        let replayed = report.entries[0].replayed.as_verdict().unwrap();
        assert_ne!(replayed, &VerdictCode::Pass);
    }

    #[test]
    fn unmodelled_and_special_contexts_replay_structurally() {
        let mut rec = checked_record(
            VerdictCode::NotModelled,
            Vec::new(),
            MonitorMode::Observe,
            env(1, "admin", "available"),
            None,
            true,
            Some(200),
        );
        rec.context = ReplayContext::Unmodelled;
        let mut e = engine();
        assert_eq!(
            e.replay_record(&rec),
            ReplayOutcome::Verdict {
                verdict: VerdictCode::NotModelled,
                requirements: Vec::new()
            }
        );
        rec.context = ReplayContext::MethodNotAllowed {
            enforced: false,
            cloud_status: Some(201),
        };
        assert_eq!(
            e.replay_record(&rec).as_verdict(),
            Some(&VerdictCode::WrongAcceptance)
        );
        rec.context = ReplayContext::DegradedForward;
        assert_eq!(
            e.replay_record(&rec),
            ReplayOutcome::Verdict {
                verdict: VerdictCode::Degraded,
                requirements: vec!["1.4".into()],
            }
        );
    }

    #[test]
    fn missing_post_state_is_indeterminate_and_a_diff() {
        let rec = checked_record(
            VerdictCode::Pass,
            vec!["1.4".into()],
            MonitorMode::Enforce,
            env(2, "admin", "available"),
            None,
            true,
            Some(204),
        );
        let report = engine().replay(&[rec]);
        assert_eq!(report.diff_count(), 1);
        assert!(matches!(
            report.entries[0].replayed,
            ReplayOutcome::Indeterminate(_)
        ));
    }

    #[test]
    fn report_json_counts_match() {
        let good = checked_record(
            VerdictCode::Pass,
            vec!["1.4".into()],
            MonitorMode::Enforce,
            env(2, "admin", "available"),
            Some(env(1, "admin", "available")),
            true,
            Some(204),
        );
        let bad = checked_record(
            VerdictCode::Pass,
            vec!["1.4".into()],
            MonitorMode::Enforce,
            env(2, "admin", "available"),
            None,
            true,
            Some(204),
        );
        let report = engine().replay(&[good, bad]);
        let json = report.to_json().to_pretty_string();
        assert!(json.contains("\"records\": 2"), "{json}");
        assert!(json.contains("\"matched\": 1"), "{json}");
        assert!(json.contains("\"diffs\": 1"), "{json}");
    }
}
