//! Model-driven state probing: derive the probe plan from the resource
//! model instead of hand-coding it.
//!
//! The paper's generator creates `models.py` — "a local copy of the
//! resource structures" — *from the class diagram*. [`ModelProber`] is the
//! runtime analogue: given the resource model and its derived route table,
//! it knows which GETs to issue and how to bind the JSON bodies into the
//! OCL environment for **any** model of the supported shape, not just the
//! canned Cinder one:
//!
//! * every *normal* resource definition whose route parameters are all
//!   available from the request becomes a bound context variable, its
//!   attributes read from the (conventionally wrapped) JSON body;
//! * every association from a bound definition to a *collection* becomes
//!   a set-valued property (`project.volumes`), each member's attributes
//!   bound from the listing;
//! * the `id` attribute is bound as a one-element set when the GET
//!   returns 200 (the paper's `id->size() = 1` existence idiom) and as
//!   the empty set otherwise;
//! * the requester (`user`) is bound via token introspection exactly as
//!   in the hand-written prober.
//!
//! JSON wrapping convention (matched by the simulator and by OpenStack
//! itself): an item body is `{"<definition>": {…}}`, a collection body is
//! `{"<role>": [{…}, …]}`.

use cm_model::{HttpMethod, ResourceKind, ResourceModel};
use cm_ocl::{MapNavigator, ObjRef, Value};
use cm_rest::{Json, RestRequest, RouteTable, SharedRestService, StatusCode};
use std::collections::HashMap;

/// A prober whose plan is derived from the resource model.
#[derive(Debug, Clone)]
pub struct ModelProber {
    resources: ResourceModel,
    routes: RouteTable,
}

impl ModelProber {
    /// Build a prober for `resources`, deriving routes under `prefix`
    /// (usually `/v3`).
    #[must_use]
    pub fn new(resources: &ResourceModel, prefix: &str) -> Self {
        ModelProber {
            resources: resources.clone(),
            routes: RouteTable::derive(resources, prefix),
        }
    }

    /// Probe the cloud with `monitor_token`, binding every resource whose
    /// route can be rendered from `params` (the path parameters captured
    /// from the monitored request, e.g. `project_id -> "1"`,
    /// `volume_id -> "7"`). `user_token` is the requester's token for the
    /// `user` binding.
    pub fn snapshot(
        &self,
        cloud: &dyn SharedRestService,
        params: &HashMap<String, String>,
        monitor_token: &str,
        user_token: &str,
    ) -> MapNavigator {
        let mut nav = MapNavigator::new();

        for def in &self.resources.definitions {
            if def.kind != ResourceKind::Normal {
                continue;
            }
            let Some(route) = self.routes.route_for(&def.name) else {
                continue;
            };
            let Ok(path) = route.template.render(params) else {
                // Not addressable from this request (e.g. no volume_id on
                // a project-level call): bind an attribute-free object so
                // navigation stays defined.
                let fallback = ObjRef::new(def.name.clone(), 0);
                nav.set_variable(def.name.clone(), fallback);
                continue;
            };
            let own_id: u64 = route
                .template
                .params()
                .last()
                .and_then(|p| params.get(p))
                .and_then(|v| v.parse().ok())
                .unwrap_or(0);
            let obj = ObjRef::new(def.name.clone(), own_id);
            nav.set_variable(def.name.clone(), obj.clone());

            let resp =
                cloud.call(&RestRequest::new(HttpMethod::Get, path).auth_token(monitor_token));
            if resp.status == StatusCode::OK {
                nav.set_attribute(
                    obj.clone(),
                    "id",
                    Value::set(vec![Value::Int(own_id as i64)]),
                );
                if let Some(body) = resp.body.as_ref().and_then(|b| unwrap_item(b, &def.name)) {
                    bind_attributes(&mut nav, &obj, body, &["id"]);
                }
            } else if def.attribute("id").is_some() {
                nav.set_attribute(obj.clone(), "id", Value::set(vec![]));
            }

            // Collection-valued association ends of this definition.
            for assoc in self.resources.outgoing(&def.name) {
                let Some(target) = self.resources.definition(&assoc.target) else {
                    continue;
                };
                if target.kind != ResourceKind::Collection {
                    continue;
                }
                let Some(contained) = self.resources.contained_of(&target.name) else {
                    continue;
                };
                let Some(coll_route) = self.routes.route_for(&target.name) else {
                    continue;
                };
                let Ok(coll_path) = coll_route.template.render(params) else {
                    nav.set_attribute(obj.clone(), assoc.role.clone(), Value::set(vec![]));
                    continue;
                };
                let resp = cloud
                    .call(&RestRequest::new(HttpMethod::Get, coll_path).auth_token(monitor_token));
                let mut members = Vec::new();
                if resp.status == StatusCode::OK {
                    if let Some(items) = resp
                        .body
                        .as_ref()
                        .and_then(|b| b.get(&assoc.role))
                        .and_then(Json::as_array)
                    {
                        for item in items {
                            let id = item.get("id").and_then(Json::as_int).unwrap_or_default();
                            let member = ObjRef::new(contained.name.clone(), id as u64);
                            nav.set_attribute(
                                member.clone(),
                                "id",
                                Value::set(vec![Value::Int(id)]),
                            );
                            bind_attributes(&mut nav, &member, item, &["id"]);
                            members.push(Value::Obj(member));
                        }
                    }
                }
                nav.set_attribute(obj.clone(), assoc.role.clone(), Value::set(members));
            }
        }

        // The requester, via token introspection (identity convention).
        let resp = cloud.call(
            &RestRequest::new(HttpMethod::Get, format!("/identity/tokens/{user_token}"))
                .auth_token(monitor_token),
        );
        if let Some(tok) = resp.body.as_ref().and_then(|b| b.get("token")) {
            let uid = tok.get("user_id").and_then(Json::as_int).unwrap_or(0);
            let user = ObjRef::new("user", uid as u64);
            nav.set_variable("user", user.clone());
            nav.set_attribute(user.clone(), "id", Value::set(vec![Value::Int(uid)]));
            let roles: Vec<Value> = tok
                .get("roles")
                .and_then(Json::as_array)
                .map(|rs| {
                    rs.iter()
                        .filter_map(Json::as_str)
                        .map(|s| Value::Str(s.to_string()))
                        .collect()
                })
                .unwrap_or_default();
            if let Some(Value::Str(primary)) = roles.first() {
                nav.set_attribute(user.clone(), "groups", primary.clone());
            }
            nav.set_attribute(user, "roles", Value::set(roles));
        } else {
            nav.set_variable("user", ObjRef::new("user", 0));
        }

        nav
    }
}

/// Unwrap the OpenStack-style item envelope: `{"<name>": {…}}`, a
/// single-key envelope with any key (OpenStack uses singular forms like
/// `quota_set` for the `quota_sets` path), or the bare object itself.
fn unwrap_item<'a>(body: &'a Json, name: &str) -> Option<&'a Json> {
    if let Some(inner) = body.get(name) {
        return Some(inner);
    }
    if let Json::Object(members) = body {
        if let [(_, inner @ Json::Object(_))] = members.as_slice() {
            return Some(inner);
        }
    }
    matches!(body, Json::Object(_)).then_some(body)
}

/// Bind the members of a JSON object as attributes on `obj`, skipping the
/// names in `except` (already handled specially).
fn bind_attributes(nav: &mut MapNavigator, obj: &ObjRef, body: &Json, except: &[&str]) {
    let Json::Object(members) = body else { return };
    for (key, value) in members {
        if except.contains(&key.as_str()) {
            continue;
        }
        let bound = match value {
            Json::Str(s) => Value::Str(s.clone()),
            Json::Int(v) => Value::Int(*v),
            Json::Float(v) => Value::Real(*v),
            Json::Bool(b) => Value::Bool(*b),
            Json::Null | Json::Array(_) | Json::Object(_) => continue,
        };
        nav.set_attribute(obj.clone(), key.clone(), bound);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_cloudsim::PrivateCloud;
    use cm_model::cinder;
    use cm_ocl::{parse, EvalContext};

    fn setup() -> (PrivateCloud, String, String, HashMap<String, String>) {
        let cloud = PrivateCloud::my_project();
        let pid = cloud.project_id();
        let admin = cloud.issue_token("alice", "alice-pw").unwrap().token;
        let carol = cloud.issue_token("carol", "carol-pw").unwrap().token;
        let vid = cloud
            .state_mut()
            .create_volume(pid, "mv", 7, false)
            .unwrap()
            .id;
        let mut params = HashMap::new();
        params.insert("project_id".to_string(), pid.to_string());
        params.insert("volume_id".to_string(), vid.to_string());
        (cloud, admin, carol, params)
    }

    #[test]
    fn derived_probe_satisfies_the_paper_invariants() {
        let (cloud, admin, carol, params) = setup();
        let prober = ModelProber::new(&cinder::resource_model(), "/v3");
        let nav = prober.snapshot(&cloud, &params, &admin, &carol);
        for check in [
            "project.id->size() = 1",
            "project.volumes->size() = 1",
            "project.volumes->size() < quota_sets.volume",
            "volume.status = 'available'",
            "volume.size = 7",
            "user.groups = 'user'",
        ] {
            let e = parse(check).unwrap();
            assert!(
                EvalContext::new(&nav).eval_bool(&e).unwrap(),
                "failed: {check}"
            );
        }
    }

    #[test]
    fn derived_probe_agrees_with_hand_written_prober_on_contracts() {
        use crate::probe::{ProbeTarget, StateProber};
        use cm_contracts::generate;
        use cm_model::Trigger;

        let (cloud, admin, carol, params) = setup();
        let model_nav = ModelProber::new(&cinder::resource_model(), "/v3")
            .snapshot(&cloud, &params, &admin, &carol);
        let hand_nav = StateProber::default().snapshot(
            &cloud,
            &ProbeTarget {
                project_id: params["project_id"].parse().unwrap(),
                volume_id: Some(params["volume_id"].parse().unwrap()),
                snapshot_id: None,
                user_token: carol,
                monitor_token: admin,
            },
        );
        // Both environments give every Cinder contract the same verdict.
        let set = generate(&cinder::behavioral_model()).unwrap();
        for method in HttpMethod::ALL {
            let Some(contract) = set.contract_for(&Trigger::new(method, "volume")) else {
                continue;
            };
            assert_eq!(
                contract.evaluate_pre(&model_nav).unwrap(),
                contract.evaluate_pre(&hand_nav).unwrap(),
                "{method} disagrees"
            );
        }
    }

    #[test]
    fn derived_probe_handles_the_snapshot_extension_unchanged() {
        // The point of model-driven probing: the snapshot resource works
        // without writing any new probe code.
        let (cloud, admin, carol, mut params) = setup();
        let pid: u64 = params["project_id"].parse().unwrap();
        let vid: u64 = params["volume_id"].parse().unwrap();
        let sid = cloud
            .state_mut()
            .create_snapshot(pid, vid, "ms")
            .unwrap()
            .id;
        params.insert("snapshot_id".to_string(), sid.to_string());

        let prober = ModelProber::new(&cinder::extended_resource_model(), "/v3");
        let nav = prober.snapshot(&cloud, &params, &admin, &carol);
        for check in [
            "volume.snapshots->size() = 1",
            "snapshot.id->size() = 1",
            "snapshot.status = 'available'",
            "volume.id->size() = 1",
        ] {
            let e = parse(check).unwrap();
            assert!(
                EvalContext::new(&nav).eval_bool(&e).unwrap(),
                "failed: {check}"
            );
        }
    }

    #[test]
    fn unaddressable_resources_are_bound_but_empty() {
        let (cloud, admin, carol, mut params) = setup();
        params.remove("volume_id");
        let prober = ModelProber::new(&cinder::resource_model(), "/v3");
        let nav = prober.snapshot(&cloud, &params, &admin, &carol);
        // No volume_id: the variable exists, its attributes are undefined.
        let e = parse("volume.status.oclIsUndefined()").unwrap();
        assert!(EvalContext::new(&nav).eval_bool(&e).unwrap());
        // The project side is unaffected.
        let e2 = parse("project.volumes->size() = 1").unwrap();
        assert!(EvalContext::new(&nav).eval_bool(&e2).unwrap());
    }

    #[test]
    fn absent_resource_yields_empty_id_set() {
        let (cloud, admin, carol, mut params) = setup();
        params.insert("volume_id".to_string(), "999".to_string());
        let prober = ModelProber::new(&cinder::resource_model(), "/v3");
        let nav = prober.snapshot(&cloud, &params, &admin, &carol);
        let e = parse("volume.id->size() = 0").unwrap();
        assert!(EvalContext::new(&nav).eval_bool(&e).unwrap());
    }
}
