//! The shadow state replica: snapshot-free monitoring.
//!
//! Under [`crate::SnapshotPolicy::Replica`] the monitor keeps a
//! model-derived **shadow copy** of each project's observable state —
//! exactly the attribute set the [`crate::StateProber`] would bind —
//! seeded from one full probe pass and thereafter advanced purely from
//! the request/response pairs flowing through the monitor. Steady-state
//! contract evaluation then binds its environment from the replica with
//! **zero** probe round-trips (the only possible network touch is a
//! token introspection, and that is served by the identity cache).
//!
//! The replica is sound because the monitor serializes every monitored
//! mutation of a project behind that project's shard lock: between two
//! checked requests, the only way the cloud's observable state can
//! change without the replica seeing it is an **out-of-band** mutation —
//! precisely the thing the paper's probing monitor can only ever see
//! implicitly. Anti-entropy reconciliation makes it explicit: a
//! periodic (and on-demand, after any uncertainty) probe pass diffs the
//! replica against the cloud, repairs the replica, and surfaces every
//! divergence as a [`crate::Verdict::Drift`] detection carrying the
//! mutated attributes and the security requirements whose contracts
//! read them.
//!
//! ## Knowledge model
//!
//! The replica only ever claims what it has observed. Three kinds of
//! uncertainty force a request back onto the probe path (a *miss*):
//! the replica is not yet seeded; it was marked **stale** (a transport
//! fault, an unexpected response shape, or an unmodelled mutation
//! slipped past the state machine); or the contract needs the snapshot
//! listing of a volume whose snapshots the replica has never observed.
//! A miss is self-healing — the probe pass that serves it re-seeds the
//! replica.

use crate::monitor::expected_success_status;
use crate::probe::{PROJECT_CLASS, QUOTA_CLASS, SNAPSHOT_CLASS, USER_CLASS, VOLUME_CLASS};
use cm_model::HttpMethod;
use cm_ocl::{MapNavigator, Navigator, ObjRef, Value};
use cm_rest::{Json, RestResponse};
use std::collections::BTreeMap;
use std::sync::Arc;

/// What the replica believes about one volume.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VolumeRec {
    /// `volume.name`, when the listing carried one.
    pub name: Option<String>,
    /// `volume.size`.
    pub size: Option<i64>,
    /// `volume.status`.
    pub status: Option<String>,
}

/// What the replica believes about one snapshot of a volume.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SnapRec {
    /// Snapshot id.
    pub id: u64,
    /// `snapshot.name`.
    pub name: Option<String>,
    /// `snapshot.status`.
    pub status: Option<String>,
}

/// One attribute on which the replica and the cloud disagreed during an
/// anti-entropy pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DriftEntry {
    /// Context root the attribute hangs off (`project`, `volume`, …).
    pub root: String,
    /// The diverged attribute.
    pub attr: String,
    /// Human-readable replica-vs-cloud detail.
    pub detail: String,
}

impl std::fmt::Display for DriftEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{} ({})", self.root, self.attr, self.detail)
    }
}

/// The shadow replica of one project's observable cloud state.
///
/// Field-for-field this mirrors what a full-granularity probe pass
/// binds: project existence and name, the detailed volume listing, the
/// volume quota, and — per volume actually observed — the snapshot
/// listing. [`ProjectReplica::build_nav`] reproduces the prober's
/// binding semantics exactly, which is what makes replica and probe
/// verdicts coincide.
#[derive(Debug, Clone, Default)]
pub struct ProjectReplica {
    /// At least one full probe pass has been absorbed.
    seeded: bool,
    /// The replica may be wrong (uncertainty observed); serve nothing
    /// until the next probe pass re-seeds it.
    stale: bool,
    /// `GET {prefix}/{pid}` answered 200 on the last observation.
    project_exists: bool,
    /// `project.name` from the project body.
    project_name: Option<String>,
    /// Volume id → believed attributes (the detailed listing).
    volumes: BTreeMap<u64, VolumeRec>,
    /// Volume id → believed snapshot listing. Key **presence** encodes
    /// knowledge: a volume absent from this map has simply never had
    /// its snapshots observed.
    snapshots: BTreeMap<u64, Vec<SnapRec>>,
    /// `quota_sets.volume`, when the quota body carried one.
    quota: Option<i64>,
    /// Replica-served requests since the last probe pass (anti-entropy
    /// scheduling).
    requests_since_sync: u64,
}

impl ProjectReplica {
    /// A fresh, unseeded replica.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Can the replica serve pre-states at all?
    #[must_use]
    pub fn ready(&self) -> bool {
        self.seeded && !self.stale
    }

    /// Invalidate the replica: something happened whose effect on cloud
    /// state the model cannot predict. The next request probes.
    pub fn mark_stale(&mut self) {
        self.stale = true;
    }

    /// Does the replica know the snapshot listing for `vid`? A volume
    /// the replica believes absent is trivially known (its listing
    /// 404s, which the prober binds as the empty set).
    #[must_use]
    pub fn knows_snapshots(&self, vid: u64) -> bool {
        !self.volumes.contains_key(&vid) || self.snapshots.contains_key(&vid)
    }

    /// Count one replica-served request; returns true when a scheduled
    /// anti-entropy pass is due (`every` = 0 disables scheduling).
    pub fn note_request(&mut self, every: u64) -> bool {
        self.requests_since_sync += 1;
        every > 0 && self.requests_since_sync >= every
    }

    /// Absorb one full-granularity probe snapshot: the replica now
    /// believes exactly what the cloud just answered. Clears staleness
    /// and the anti-entropy clock.
    pub fn absorb(&mut self, pid: u64, vid: Option<u64>, nav: &MapNavigator) {
        let project = ObjRef::new(Arc::clone(&PROJECT_CLASS), pid);
        let quota = ObjRef::new(Arc::clone(&QUOTA_CLASS), pid);
        self.project_exists = nav
            .attribute(&project, "id")
            .and_then(|v| v.as_collection().map(|c| !c.is_empty()))
            .unwrap_or(false);
        self.project_name = nav
            .attribute(&project, "name")
            .and_then(|v| v.as_str().map(str::to_string));
        self.quota = nav.attribute(&quota, "volume").and_then(|v| v.as_int());
        let mut volumes = BTreeMap::new();
        if let Some(Value::Coll(_, refs)) = nav.attribute(&project, "volumes") {
            for vref in refs {
                let Value::Obj(obj) = vref else { continue };
                volumes.insert(
                    obj.id,
                    VolumeRec {
                        name: nav
                            .attribute(&obj, "name")
                            .and_then(|v| v.as_str().map(str::to_string)),
                        size: nav.attribute(&obj, "size").and_then(|v| v.as_int()),
                        status: nav
                            .attribute(&obj, "status")
                            .and_then(|v| v.as_str().map(str::to_string)),
                    },
                );
            }
        }
        self.volumes = volumes;
        // Snapshot listings are only probed for the addressed volume;
        // knowledge about other volumes' snapshots survives as long as
        // those volumes do.
        self.snapshots
            .retain(|vid, _| self.volumes.contains_key(vid));
        if let Some(vid) = vid {
            let volume = ObjRef::new(Arc::clone(&VOLUME_CLASS), vid);
            if let Some(Value::Coll(_, refs)) = nav.attribute(&volume, "snapshots") {
                let list = refs
                    .into_iter()
                    .filter_map(|r| match r {
                        Value::Obj(obj) => Some(SnapRec {
                            id: obj.id,
                            name: nav
                                .attribute(&obj, "name")
                                .and_then(|v| v.as_str().map(str::to_string)),
                            status: nav
                                .attribute(&obj, "status")
                                .and_then(|v| v.as_str().map(str::to_string)),
                        }),
                        _ => None,
                    })
                    .collect();
                if self.volumes.contains_key(&vid) {
                    self.snapshots.insert(vid, list);
                }
            }
        }
        self.seeded = true;
        self.stale = false;
        self.requests_since_sync = 0;
    }

    /// Diff the replica's belief against a fresh full probe snapshot.
    /// Every divergence is an attribute the cloud mutated **out of
    /// band** — no monitored request changed it, yet it changed. Only
    /// meaningful when the replica is [`ProjectReplica::ready`].
    #[must_use]
    pub fn diff(&self, pid: u64, vid: Option<u64>, nav: &MapNavigator) -> Vec<DriftEntry> {
        let mut drift = Vec::new();
        let project = ObjRef::new(Arc::clone(&PROJECT_CLASS), pid);
        let quota = ObjRef::new(Arc::clone(&QUOTA_CLASS), pid);
        let entry = |root: &str, attr: &str, detail: String| DriftEntry {
            root: root.to_string(),
            attr: attr.to_string(),
            detail,
        };
        let cloud_exists = nav
            .attribute(&project, "id")
            .and_then(|v| v.as_collection().map(|c| !c.is_empty()))
            .unwrap_or(false);
        if cloud_exists != self.project_exists {
            drift.push(entry(
                "project",
                "id",
                format!(
                    "replica exists={} cloud={cloud_exists}",
                    self.project_exists
                ),
            ));
        }
        let cloud_name = nav
            .attribute(&project, "name")
            .and_then(|v| v.as_str().map(str::to_string));
        if cloud_name != self.project_name {
            drift.push(entry(
                "project",
                "name",
                format!("replica {:?} cloud {cloud_name:?}", self.project_name),
            ));
        }
        let cloud_quota = nav.attribute(&quota, "volume").and_then(|v| v.as_int());
        if cloud_quota != self.quota {
            drift.push(entry(
                "quota_sets",
                "volume",
                format!("replica {:?} cloud {cloud_quota:?}", self.quota),
            ));
        }
        let mut cloud_volumes: BTreeMap<u64, VolumeRec> = BTreeMap::new();
        if let Some(Value::Coll(_, refs)) = nav.attribute(&project, "volumes") {
            for vref in refs {
                let Value::Obj(obj) = vref else { continue };
                cloud_volumes.insert(
                    obj.id,
                    VolumeRec {
                        name: nav
                            .attribute(&obj, "name")
                            .and_then(|v| v.as_str().map(str::to_string)),
                        size: nav.attribute(&obj, "size").and_then(|v| v.as_int()),
                        status: nav
                            .attribute(&obj, "status")
                            .and_then(|v| v.as_str().map(str::to_string)),
                    },
                );
            }
        }
        let replica_ids: Vec<u64> = self.volumes.keys().copied().collect();
        let cloud_ids: Vec<u64> = cloud_volumes.keys().copied().collect();
        if replica_ids != cloud_ids {
            drift.push(entry(
                "project",
                "volumes",
                format!("replica ids {replica_ids:?} cloud ids {cloud_ids:?}"),
            ));
        }
        for (id, mine) in &self.volumes {
            let Some(theirs) = cloud_volumes.get(id) else {
                continue;
            };
            for (attr, differs, detail) in [
                (
                    "name",
                    mine.name != theirs.name,
                    format!(
                        "volume {id}: replica {:?} cloud {:?}",
                        mine.name, theirs.name
                    ),
                ),
                (
                    "size",
                    mine.size != theirs.size,
                    format!(
                        "volume {id}: replica {:?} cloud {:?}",
                        mine.size, theirs.size
                    ),
                ),
                (
                    "status",
                    mine.status != theirs.status,
                    format!(
                        "volume {id}: replica {:?} cloud {:?}",
                        mine.status, theirs.status
                    ),
                ),
            ] {
                if differs {
                    drift.push(entry("volume", attr, detail));
                }
            }
        }
        if let Some(vid) = vid {
            if let Some(mine) = self.snapshots.get(&vid) {
                let volume = ObjRef::new(Arc::clone(&VOLUME_CLASS), vid);
                if let Some(Value::Coll(_, refs)) = nav.attribute(&volume, "snapshots") {
                    let theirs: Vec<SnapRec> = refs
                        .into_iter()
                        .filter_map(|r| match r {
                            Value::Obj(obj) => Some(SnapRec {
                                id: obj.id,
                                name: nav
                                    .attribute(&obj, "name")
                                    .and_then(|v| v.as_str().map(str::to_string)),
                                status: nav
                                    .attribute(&obj, "status")
                                    .and_then(|v| v.as_str().map(str::to_string)),
                            }),
                            _ => None,
                        })
                        .collect();
                    if mine != &theirs {
                        drift.push(entry(
                            "volume",
                            "snapshots",
                            format!(
                                "volume {vid}: replica {:?} cloud {:?}",
                                mine.iter().map(|s| s.id).collect::<Vec<_>>(),
                                theirs.iter().map(|s| s.id).collect::<Vec<_>>()
                            ),
                        ));
                    }
                }
            }
        }
        drift
    }

    /// Materialise the evaluation environment from the replica,
    /// reproducing the prober's full-granularity binding semantics
    /// exactly (minus the `user` context, which the caller binds from
    /// the cached token introspection):
    ///
    /// * `project.id` — `Set{pid}` iff the project exists, else `Set{}`;
    /// * `project.volumes` — refs of every believed volume, each with
    ///   its `id`/`name`/`size`/`status`;
    /// * the addressed `volume` variable bound regardless (attributes
    ///   only when the volume is believed to exist);
    /// * `volume.snapshots` — only for the *addressed* volume (probes
    ///   never list other volumes' snapshots), with each snapshot's
    ///   attributes;
    /// * `quota_sets.volume` when known.
    #[must_use]
    pub fn build_nav(&self, pid: u64, vid: Option<u64>, sid: Option<u64>) -> MapNavigator {
        let mut nav = MapNavigator::new();
        let project = ObjRef::new(Arc::clone(&PROJECT_CLASS), pid);
        let quota = ObjRef::new(Arc::clone(&QUOTA_CLASS), pid);
        nav.set_variable("project", project.clone());
        nav.set_variable("quota_sets", quota.clone());
        nav.set_variable(
            "volume",
            ObjRef::new(Arc::clone(&VOLUME_CLASS), vid.unwrap_or(0)),
        );
        nav.set_variable(
            "snapshot",
            ObjRef::new(Arc::clone(&SNAPSHOT_CLASS), sid.unwrap_or(0)),
        );
        let id = if self.project_exists {
            Value::set(vec![Value::Int(pid as i64)])
        } else {
            Value::set(vec![])
        };
        nav.set_attribute(project.clone(), "id", id);
        if let Some(name) = &self.project_name {
            nav.set_attribute(project.clone(), "name", name.as_str());
        }
        let mut volume_refs = Vec::new();
        for (id, rec) in &self.volumes {
            let obj = ObjRef::new(Arc::clone(&VOLUME_CLASS), *id);
            nav.set_attribute(obj.clone(), "id", Value::set(vec![Value::Int(*id as i64)]));
            if let Some(name) = &rec.name {
                nav.set_attribute(obj.clone(), "name", name.as_str());
            }
            if let Some(size) = rec.size {
                nav.set_attribute(obj.clone(), "size", size);
            }
            if let Some(status) = &rec.status {
                nav.set_attribute(obj.clone(), "status", status.as_str());
            }
            volume_refs.push(Value::Obj(obj));
        }
        nav.set_attribute(project, "volumes", Value::set(volume_refs));
        if let Some(q) = self.quota {
            nav.set_attribute(quota, "volume", q);
        }
        if let Some(vid) = vid {
            let volume = ObjRef::new(Arc::clone(&VOLUME_CLASS), vid);
            let mut snapshot_refs = Vec::new();
            for snap in self.snapshots.get(&vid).map(Vec::as_slice).unwrap_or(&[]) {
                let obj = ObjRef::new(Arc::clone(&SNAPSHOT_CLASS), snap.id);
                nav.set_attribute(
                    obj.clone(),
                    "id",
                    Value::set(vec![Value::Int(snap.id as i64)]),
                );
                if let Some(name) = &snap.name {
                    nav.set_attribute(obj.clone(), "name", name.as_str());
                }
                if let Some(status) = &snap.status {
                    nav.set_attribute(obj.clone(), "status", status.as_str());
                }
                snapshot_refs.push(Value::Obj(obj));
            }
            nav.set_attribute(volume, "snapshots", Value::set(snapshot_refs));
        }
        nav
    }

    /// Advance the replica's state machine from one observed
    /// request/response pair — the model-derived transition function.
    /// Returns `false` (and marks the replica stale) when the response
    /// does not fit any modelled transition: an unexpected success
    /// shape, a gateway status, or an unparseable body all mean the
    /// cloud's state can no longer be predicted.
    ///
    /// Denials (4xx) are no-ops: the uniform interface specifies they
    /// leave state unchanged. Transitions are applied for **every**
    /// successful response, whether or not the monitor's pre-verdict
    /// approved the request — a wrongly-accepted mutation still changed
    /// the cloud, and the replica tracks the cloud, not the contract.
    pub fn observe_response(
        &mut self,
        resource: &str,
        method: HttpMethod,
        vid: Option<u64>,
        sid: Option<u64>,
        response: &RestResponse,
    ) -> bool {
        if response.status.is_gateway_error() {
            self.mark_stale();
            return false;
        }
        if !response.status.is_success() {
            return true;
        }
        if response.status != expected_success_status(method) {
            self.mark_stale();
            return false;
        }
        let applied = match (resource, method) {
            (_, HttpMethod::Get) => true,
            ("volume", HttpMethod::Post) => self.apply_volume_create(response),
            ("volume", HttpMethod::Put) => {
                vid.is_some_and(|v| self.apply_volume_update(v, response))
            }
            ("volume", HttpMethod::Delete) => vid.is_some_and(|v| {
                self.volumes.remove(&v);
                self.snapshots.remove(&v);
                true
            }),
            ("snapshot", HttpMethod::Post) => {
                vid.is_some_and(|v| self.apply_snapshot_create(v, response))
            }
            ("snapshot", HttpMethod::Delete) => match (vid, sid) {
                (Some(v), Some(s)) => {
                    if let Some(list) = self.snapshots.get_mut(&v) {
                        list.retain(|snap| snap.id != s);
                    }
                    true
                }
                _ => false,
            },
            // A successful mutation of a resource the transition
            // function does not model: no prediction possible.
            _ => false,
        };
        if !applied {
            self.mark_stale();
        }
        applied
    }

    /// `POST …/volumes` → 201 with the created volume's body.
    fn apply_volume_create(&mut self, response: &RestResponse) -> bool {
        let Some(v) = response.body.as_ref().and_then(|b| b.get("volume")) else {
            return false;
        };
        let Some(id) = v.get("id").and_then(Json::as_int) else {
            return false;
        };
        self.volumes.insert(
            id as u64,
            VolumeRec {
                name: v.get("name").and_then(Json::as_str).map(str::to_string),
                size: v.get("size").and_then(Json::as_int),
                status: v.get("status").and_then(Json::as_str).map(str::to_string),
            },
        );
        // A volume that did not exist a moment ago has no snapshots:
        // that knowledge is free.
        self.snapshots.insert(id as u64, Vec::new());
        self.project_exists = true;
        true
    }

    /// `PUT …/volumes/{vid}` → 200 with the updated body.
    fn apply_volume_update(&mut self, vid: u64, response: &RestResponse) -> bool {
        let Some(rec) = self.volumes.get_mut(&vid) else {
            // The cloud updated a volume the replica does not believe
            // exists — belief and cloud have already diverged.
            return false;
        };
        let Some(v) = response.body.as_ref().and_then(|b| b.get("volume")) else {
            return false;
        };
        if let Some(name) = v.get("name").and_then(Json::as_str) {
            rec.name = Some(name.to_string());
        }
        if let Some(size) = v.get("size").and_then(Json::as_int) {
            rec.size = Some(size);
        }
        if let Some(status) = v.get("status").and_then(Json::as_str) {
            rec.status = Some(status.to_string());
        }
        true
    }

    /// `POST …/volumes/{vid}/snapshots` → 201 with the snapshot body.
    fn apply_snapshot_create(&mut self, vid: u64, response: &RestResponse) -> bool {
        if !self.volumes.contains_key(&vid) {
            return false;
        }
        let Some(snap) = response.body.as_ref().and_then(|b| b.get("snapshot")) else {
            return false;
        };
        let Some(id) = snap.get("id").and_then(Json::as_int) else {
            return false;
        };
        let rec = SnapRec {
            id: id as u64,
            name: snap.get("name").and_then(Json::as_str).map(str::to_string),
            status: snap
                .get("status")
                .and_then(Json::as_str)
                .map(str::to_string),
        };
        match self.snapshots.get_mut(&vid) {
            Some(list) => {
                list.push(rec);
                true
            }
            // The volume's snapshot listing was never observed: adding
            // one element to an unknown set keeps it unknown, which is
            // fine — the listing stays unknown, nothing turned wrong.
            None => true,
        }
    }

    /// Bind the `user` context exactly as the prober would, from a
    /// token-introspection response (cached or fresh).
    pub fn bind_identity(nav: &mut MapNavigator, introspection: &RestResponse) {
        crate::probe::bind_user(nav, introspection);
    }

    /// Bind an attribute-free `user` variable (probe plans that skip
    /// the user context do the same).
    pub fn bind_no_identity(nav: &mut MapNavigator) {
        nav.set_variable("user", ObjRef::new(Arc::clone(&USER_CLASS), 0));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::{ProbeTarget, StateProber};
    use cm_cloudsim::PrivateCloud;
    use cm_rest::StatusCode;

    fn seeded(cloud: &PrivateCloud, vid: Option<u64>) -> (ProjectReplica, ProbeTarget) {
        let admin = cloud.issue_token("alice", "alice-pw").unwrap();
        let carol = cloud.issue_token("carol", "carol-pw").unwrap();
        let target = ProbeTarget {
            project_id: cloud.project_id(),
            volume_id: vid,
            snapshot_id: None,
            user_token: carol.token,
            monitor_token: admin.token,
        };
        let snap = StateProber::default().snapshot_checked(cloud, &target);
        assert!(!snap.is_partial());
        let mut replica = ProjectReplica::new();
        replica.absorb(target.project_id, vid, &snap.nav);
        (replica, target)
    }

    /// The replica-built navigator must agree with a fresh probe-built
    /// one on every binding except `user` (bound separately).
    fn assert_nav_parity(replica: &ProjectReplica, cloud: &PrivateCloud, target: &ProbeTarget) {
        let probed = StateProber::default().snapshot_checked(cloud, target);
        let mut built = replica.build_nav(target.project_id, target.volume_id, target.snapshot_id);
        // Graft the probe's user bindings onto the replica nav so the
        // comparison covers only replica-owned bindings.
        if let Some(user) = probed.nav.variable("user") {
            built.set_variable("user", user.clone());
            if let Value::Obj(user) = user {
                for attr in ["id", "name", "groups", "roles"] {
                    if let Some(v) = probed.nav.attribute(&user, attr) {
                        built.set_attribute(user.clone(), attr, v);
                    }
                }
            }
        }
        assert_eq!(built, probed.nav, "replica nav diverged from probe nav");
    }

    #[test]
    fn absorb_then_build_matches_probe_nav() {
        let cloud = PrivateCloud::my_project();
        let pid = cloud.project_id();
        let vid = cloud
            .state_mut()
            .create_volume(pid, "v1", 10, false)
            .unwrap()
            .id;
        let (replica, target) = seeded(&cloud, Some(vid));
        assert!(replica.ready());
        assert_nav_parity(&replica, &cloud, &target);
    }

    #[test]
    fn empty_project_parity_and_missing_volume() {
        let cloud = PrivateCloud::my_project();
        let (replica, mut target) = seeded(&cloud, None);
        assert_nav_parity(&replica, &cloud, &target);
        // A volume id the cloud never allocated: both sides bind the
        // variable but no attributes, and snapshots are the empty set.
        target.volume_id = Some(999);
        let (replica, target) = {
            let snap = StateProber::default().snapshot_checked(&cloud, &target);
            let mut r = ProjectReplica::new();
            r.absorb(target.project_id, target.volume_id, &snap.nav);
            (r, target)
        };
        assert!(replica.knows_snapshots(999));
        assert_nav_parity(&replica, &cloud, &target);
    }

    #[test]
    fn create_update_delete_transitions_track_the_cloud() {
        let cloud = PrivateCloud::my_project();
        let (mut replica, mut target) = seeded(&cloud, None);
        // Create through the "observed traffic" path: mutate the cloud
        // and hand the replica the response the monitor would see.
        let pid = target.project_id;
        let (vid, status) = {
            let mut state = cloud.state_mut();
            let vol = state.create_volume(pid, "obs", 7, false).unwrap();
            (vol.id, vol.status)
        };
        let body = Json::object(vec![(
            "volume",
            Json::object(vec![
                ("id", Json::Int(vid as i64)),
                ("name", Json::Str("obs".into())),
                ("size", Json::Int(7)),
                ("status", Json::Str(status.as_str().into())),
            ]),
        )]);
        let resp = RestResponse::created(body);
        assert!(replica.observe_response("volume", HttpMethod::Post, None, None, &resp));
        target.volume_id = Some(vid);
        assert_nav_parity(&replica, &cloud, &target);

        // Delete: cloud first, then the observed 204.
        cloud.state_mut().delete_volume(pid, vid, false).unwrap();
        let resp = RestResponse::no_content();
        assert!(replica.observe_response("volume", HttpMethod::Delete, Some(vid), None, &resp));
        assert_nav_parity(&replica, &cloud, &target);
    }

    #[test]
    fn unexpected_shapes_mark_stale_never_wrong() {
        let cloud = PrivateCloud::my_project();
        let (mut replica, _) = seeded(&cloud, None);
        // Gateway status: could have executed, could not have — stale.
        let gw = RestResponse::error(StatusCode::BAD_GATEWAY, "weather");
        assert!(!replica.observe_response("volume", HttpMethod::Post, None, None, &gw));
        assert!(!replica.ready());
        // 4xx denial on a ready replica: state unchanged, still ready.
        let (mut replica, _) = seeded(&cloud, None);
        let denied = RestResponse::error(StatusCode::FORBIDDEN, "no");
        assert!(replica.observe_response("volume", HttpMethod::Post, None, None, &denied));
        assert!(replica.ready());
        // Wrong success status (200 for a POST): unpredictable — stale.
        let odd = RestResponse::ok(Json::object(Vec::<(&str, Json)>::new()));
        assert!(!replica.observe_response("volume", HttpMethod::Post, None, None, &odd));
        assert!(!replica.ready());
    }

    #[test]
    fn diff_pinpoints_out_of_band_mutation() {
        let cloud = PrivateCloud::my_project();
        let pid = cloud.project_id();
        let vid = cloud
            .state_mut()
            .create_volume(pid, "v1", 10, false)
            .unwrap()
            .id;
        let (replica, target) = seeded(&cloud, Some(vid));
        // Clean diff first.
        let snap = StateProber::default().snapshot_checked(&cloud, &target);
        assert!(replica.diff(pid, Some(vid), &snap.nav).is_empty());
        // Out-of-band: flip the volume's status behind the monitor.
        cloud.state_mut().volume_mut(pid, vid).unwrap().status = cm_cloudsim::VolumeStatus::Error;
        let snap = StateProber::default().snapshot_checked(&cloud, &target);
        let drift = replica.diff(pid, Some(vid), &snap.nav);
        assert_eq!(drift.len(), 1, "{drift:?}");
        assert_eq!(drift[0].root, "volume");
        assert_eq!(drift[0].attr, "status");
        assert!(drift[0].detail.contains("error"));
    }

    #[test]
    fn anti_entropy_clock_counts_replica_serves() {
        let mut replica = ProjectReplica::new();
        replica.absorb(1, None, &MapNavigator::new());
        assert!(!replica.note_request(0));
        assert!(!replica.note_request(0), "0 disables scheduling");
        assert!(!replica.note_request(4));
        assert!(replica.note_request(4), "4th serve since sync is due");
        replica.absorb(1, None, &MapNavigator::new());
        assert!(!replica.note_request(4), "absorb resets the clock");
    }
}
