//! The automated test oracle (the paper's user story 4).
//!
//! "An automated testing script … uses CM as a test oracle and invokes the
//! cloud implementation through the cloud monitor to validate the
//! authorization policy for all the resources. The invocation results can
//! be logged for further fault localization" (Section III-B).
//!
//! [`TestOracle::run`] executes a fixed scenario suite — every user role ×
//! every method on the volume resource, plus the quota, in-use and
//! boundary scenarios of Figure 3 — against a fresh cloud per scenario,
//! through an [`Mode::Observe`] monitor. A correct cloud produces zero
//! violation verdicts; any violation kills the cloud-under-test (the
//! mutation campaign in `cm-mutation` is built on this).

use crate::monitor::{cinder_monitor, Mode, Verdict};
use cm_cloudsim::{PrivateCloud, DEFAULT_VOLUME_QUOTA};
use cm_model::HttpMethod;
use cm_rest::{Json, RestRequest, RestService};
use std::fmt;

/// Result of one oracle scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioResult {
    /// Scenario name, e.g. `DELETE volume as bob`.
    pub name: String,
    /// RBAC role of the acting user (`no role` for the unprivileged
    /// principal, `admin` for the boundary scenarios run as alice).
    pub role: String,
    /// The monitor's verdict.
    pub verdict: Verdict,
    /// Security requirements exercised.
    pub requirements: Vec<String>,
    /// Diagnostics from the monitor log.
    pub diagnostics: String,
}

/// The oracle's report over the whole suite.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OracleReport {
    /// Per-scenario results, in suite order.
    pub scenarios: Vec<ScenarioResult>,
}

impl OracleReport {
    /// Scenarios whose verdict indicates a cloud fault.
    #[must_use]
    pub fn violations(&self) -> Vec<&ScenarioResult> {
        self.scenarios
            .iter()
            .filter(|s| s.verdict.is_violation())
            .collect()
    }

    /// True when at least one scenario detected a fault — the
    /// cloud-under-test (mutant) is *killed*.
    #[must_use]
    pub fn killed(&self) -> bool {
        !self.violations().is_empty()
    }

    /// Scenarios the monitor could not check (transport faults surfaced
    /// as [`Verdict::Degraded`]) — explicitly *not* violations, but the
    /// kill matrix accounts for them separately so a detection that
    /// silently turns into a degraded non-verdict is visible.
    #[must_use]
    pub fn degraded(&self) -> Vec<&ScenarioResult> {
        self.scenarios
            .iter()
            .filter(|s| s.verdict == Verdict::Degraded)
            .collect()
    }

    /// Number of scenarios run.
    #[must_use]
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// True when no scenarios were run.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }
}

impl fmt::Display for OracleReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.scenarios {
            writeln!(f, "{:<44} {}", s.name, s.verdict)?;
        }
        writeln!(
            f,
            "-- {} scenario(s), {} violation(s): {}",
            self.scenarios.len(),
            self.violations().len(),
            if self.killed() { "KILLED" } else { "survived" }
        )
    }
}

/// The test oracle: a factory-driven scenario suite.
#[derive(Debug, Clone, Copy, Default)]
pub struct TestOracle;

/// The fixture users with their Table I roles; `mallory` is authenticated
/// but holds no role (observes policy-widening faults).
const USERS: [(&str, &str); 4] = [
    ("alice", "admin"),
    ("bob", "member"),
    ("carol", "user"),
    ("mallory", "no role"),
];

impl TestOracle {
    /// Run the suite; `factory` builds a fresh cloud-under-test per
    /// scenario (so scenarios cannot contaminate each other).
    ///
    /// # Panics
    ///
    /// Panics if the fixture cloud rejects the fixture credentials —
    /// that is a harness bug, not a cloud-under-test fault.
    pub fn run<F: Fn() -> PrivateCloud>(&self, factory: F) -> OracleReport {
        let mut report = OracleReport::default();

        // Per-user method scenarios on a project holding one volume.
        for (user, role) in USERS {
            for method in HttpMethod::ALL {
                let name = format!("{method} volume as {user} ({role})");
                let result = Self::scenario(&factory, &name, role, |cloud| {
                    let pid = cloud.project_id();
                    let vid = cloud
                        .state_mut()
                        .create_volume(pid, "seed", 5, false)
                        .unwrap()
                        .id;
                    let path = match method {
                        HttpMethod::Post => format!("/v3/{pid}/volumes"),
                        _ => format!("/v3/{pid}/volumes/{vid}"),
                    };
                    let mut req = RestRequest::new(method, path);
                    if method == HttpMethod::Post {
                        req = req.json(volume_body("created", 1));
                    } else if method == HttpMethod::Put {
                        req = req.json(volume_body("renamed", 5));
                    }
                    (user.to_string(), req)
                });
                report.scenarios.push(result);
            }
        }

        // Boundary: POST into an empty project (t_post_1 path).
        report.scenarios.push(Self::scenario(
            &factory,
            "POST first volume as alice (admin)",
            "admin",
            |cloud| {
                let pid = cloud.project_id();
                (
                    "alice".to_string(),
                    RestRequest::new(HttpMethod::Post, format!("/v3/{pid}/volumes"))
                        .json(volume_body("first", 1)),
                )
            },
        ));

        // Boundary: POST at full quota must be refused (no enabled clause).
        report.scenarios.push(Self::scenario(
            &factory,
            "POST volume at full quota as alice (admin)",
            "admin",
            |cloud| {
                let pid = cloud.project_id();
                for i in 0..DEFAULT_VOLUME_QUOTA {
                    cloud
                        .state_mut()
                        .create_volume(pid, format!("fill{i}"), 1, false)
                        .unwrap();
                }
                (
                    "alice".to_string(),
                    RestRequest::new(HttpMethod::Post, format!("/v3/{pid}/volumes"))
                        .json(volume_body("overflow", 1)),
                )
            },
        ));

        // Boundary: DELETE an in-use volume must be refused.
        report.scenarios.push(Self::scenario(
            &factory,
            "DELETE in-use volume as alice (admin)",
            "admin",
            |cloud| {
                let pid = cloud.project_id();
                let vid = cloud
                    .state_mut()
                    .create_volume(pid, "busy", 1, false)
                    .unwrap()
                    .id;
                let iid = cloud.state_mut().create_instance(pid, "srv").unwrap();
                cloud.state_mut().attach(pid, iid, vid).unwrap();
                (
                    "alice".to_string(),
                    RestRequest::new(HttpMethod::Delete, format!("/v3/{pid}/volumes/{vid}")),
                )
            },
        ));

        // Boundary: DELETE the last volume (t_del_1 path).
        report.scenarios.push(Self::scenario(
            &factory,
            "DELETE last volume as alice (admin)",
            "admin",
            |cloud| {
                let pid = cloud.project_id();
                let vid = cloud
                    .state_mut()
                    .create_volume(pid, "only", 1, false)
                    .unwrap()
                    .id;
                (
                    "alice".to_string(),
                    RestRequest::new(HttpMethod::Delete, format!("/v3/{pid}/volumes/{vid}")),
                )
            },
        ));

        // Boundary: DELETE a nonexistent volume must be refused.
        report.scenarios.push(Self::scenario(
            &factory,
            "DELETE nonexistent volume as alice (admin)",
            "admin",
            |cloud| {
                let pid = cloud.project_id();
                cloud
                    .state_mut()
                    .create_volume(pid, "other", 1, false)
                    .unwrap();
                (
                    "alice".to_string(),
                    RestRequest::new(HttpMethod::Delete, format!("/v3/{pid}/volumes/999")),
                )
            },
        ));

        report
    }

    /// Run one scenario: build the cloud, apply `setup` (which prepares
    /// state and names the acting user and the request), wrap in an
    /// Observe monitor, authenticate both parties through the monitor,
    /// send, and record the verdict.
    fn scenario<F: Fn() -> PrivateCloud>(
        factory: &F,
        name: &str,
        role: &str,
        setup: impl FnOnce(&mut PrivateCloud) -> (String, RestRequest),
    ) -> ScenarioResult {
        let mut cloud = factory();
        let (user, request) = setup(&mut cloud);
        let mut monitor = cinder_monitor(cloud)
            .expect("fixture models generate")
            .mode(Mode::Observe);
        monitor
            .authenticate("alice", "alice-pw")
            .expect("fixture admin credentials");

        // The acting user authenticates *through* the monitor (transparent
        // pass-through of the unmodelled identity API).
        let auth = monitor.handle(
            &RestRequest::new(HttpMethod::Post, "/identity/auth/tokens").json(Json::object(vec![
                (
                    "auth",
                    Json::object(vec![
                        ("user", Json::Str(user.clone())),
                        ("password", Json::Str(format!("{user}-pw"))),
                    ]),
                ),
            ])),
        );
        let token = auth
            .body
            .as_ref()
            .and_then(|b| b.get("token"))
            .and_then(|t| t.get("id"))
            .and_then(Json::as_str)
            .expect("fixture user authenticates")
            .to_string();

        let outcome = monitor.process(&request.auth_token(token));
        let diagnostics = monitor
            .log()
            .last()
            .map(|r| r.diagnostics.clone())
            .unwrap_or_default();
        ScenarioResult {
            name: name.to_string(),
            role: role.to_string(),
            verdict: outcome.verdict,
            requirements: outcome.requirements,
            diagnostics,
        }
    }
}

fn volume_body(name: &str, size: i64) -> Json {
    Json::object(vec![(
        "volume",
        Json::object(vec![
            ("name", Json::Str(name.into())),
            ("size", Json::Int(size)),
        ]),
    )])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correct_cloud_survives_the_suite() {
        let report = TestOracle.run(PrivateCloud::my_project);
        assert!(
            !report.killed(),
            "false positives on a correct cloud:\n{report}"
        );
        // The suite is non-trivial.
        assert!(report.len() >= 17, "suite has {} scenarios", report.len());
    }

    #[test]
    fn suite_exercises_all_requirements() {
        let report = TestOracle.run(PrivateCloud::my_project);
        let mut reqs: Vec<&str> = report
            .scenarios
            .iter()
            .flat_map(|s| s.requirements.iter().map(String::as_str))
            .collect();
        reqs.sort_unstable();
        reqs.dedup();
        assert_eq!(reqs, vec!["1.1", "1.2", "1.3", "1.4"]);
    }

    #[test]
    fn report_display_summarises() {
        let report = TestOracle.run(PrivateCloud::my_project);
        let text = report.to_string();
        assert!(text.contains("scenario(s)"));
        assert!(text.contains("survived"));
    }

    #[test]
    fn paper_mutant_wrong_delete_role_is_killed() {
        use cm_cloudsim::{Fault, FaultPlan};
        use cm_rbac::Rule;
        let report = TestOracle.run(|| {
            PrivateCloud::my_project().with_faults(FaultPlan::single(Fault::PolicyOverride {
                action: "volume:delete".into(),
                rule: Rule::any_role(["admin", "member"]),
            }))
        });
        assert!(report.killed(), "mutant survived:\n{report}");
        // The killing scenario is bob's DELETE.
        assert!(report
            .violations()
            .iter()
            .any(|s| s.name.contains("DELETE volume as bob")));
    }
}

impl TestOracle {
    /// Run the extended suite: the volume scenarios of [`TestOracle::run`]
    /// plus snapshot-lifecycle scenarios, through a monitor generated from
    /// *both* behavioural state machines (volumes + snapshots).
    ///
    /// # Panics
    ///
    /// As [`TestOracle::run`].
    pub fn run_extended<F: Fn() -> PrivateCloud>(&self, factory: F) -> OracleReport {
        let mut report = self.run(&factory);

        for (user, role) in USERS {
            for (method, name_suffix) in [
                (HttpMethod::Get, "snapshot"),
                (HttpMethod::Post, "snapshot"),
                (HttpMethod::Delete, "snapshot"),
            ] {
                let name = format!("{method} {name_suffix} as {user} ({role})");
                let result = Self::scenario_extended(&factory, &name, role, |cloud| {
                    let pid = cloud.project_id();
                    let vid = cloud
                        .state_mut()
                        .create_volume(pid, "vol", 1, false)
                        .unwrap()
                        .id;
                    let sid = cloud
                        .state_mut()
                        .create_snapshot(pid, vid, "seed")
                        .unwrap()
                        .id;
                    let path = match method {
                        HttpMethod::Post => {
                            format!("/v3/{pid}/volumes/{vid}/snapshots")
                        }
                        _ => format!("/v3/{pid}/volumes/{vid}/snapshots/{sid}"),
                    };
                    let mut req = RestRequest::new(method, path);
                    if method == HttpMethod::Post {
                        req = req.json(Json::object(vec![(
                            "snapshot",
                            Json::object(vec![("name", Json::Str("new".into()))]),
                        )]));
                    }
                    (user.to_string(), req)
                });
                report.scenarios.push(result);
            }
        }

        // Boundary: first snapshot of a fresh volume (t_snap_post_1).
        report.scenarios.push(Self::scenario_extended(
            &factory,
            "POST first snapshot as alice (admin)",
            "admin",
            |cloud| {
                let pid = cloud.project_id();
                let vid = cloud
                    .state_mut()
                    .create_volume(pid, "vol", 1, false)
                    .unwrap()
                    .id;
                (
                    "alice".to_string(),
                    RestRequest::new(
                        HttpMethod::Post,
                        format!("/v3/{pid}/volumes/{vid}/snapshots"),
                    )
                    .json(Json::object(vec![(
                        "snapshot",
                        Json::object(vec![("name", Json::Str("first".into()))]),
                    )])),
                )
            },
        ));

        // Boundary: DELETE a nonexistent snapshot must be refused.
        report.scenarios.push(Self::scenario_extended(
            &factory,
            "DELETE nonexistent snapshot as alice (admin)",
            "admin",
            |cloud| {
                let pid = cloud.project_id();
                let vid = cloud
                    .state_mut()
                    .create_volume(pid, "vol", 1, false)
                    .unwrap()
                    .id;
                (
                    "alice".to_string(),
                    RestRequest::new(
                        HttpMethod::Delete,
                        format!("/v3/{pid}/volumes/{vid}/snapshots/999"),
                    ),
                )
            },
        ));

        report
    }

    /// As `scenario`, but with the extended (volumes + snapshots) monitor.
    fn scenario_extended<F: Fn() -> PrivateCloud>(
        factory: &F,
        name: &str,
        role: &str,
        setup: impl FnOnce(&mut PrivateCloud) -> (String, RestRequest),
    ) -> ScenarioResult {
        use crate::monitor::cinder_monitor_extended;
        let mut cloud = factory();
        let (user, request) = setup(&mut cloud);
        let mut monitor = cinder_monitor_extended(cloud)
            .expect("fixture models generate")
            .mode(Mode::Observe);
        monitor
            .authenticate("alice", "alice-pw")
            .expect("fixture admin credentials");
        let auth = monitor.handle(
            &RestRequest::new(HttpMethod::Post, "/identity/auth/tokens").json(Json::object(vec![
                (
                    "auth",
                    Json::object(vec![
                        ("user", Json::Str(user.clone())),
                        ("password", Json::Str(format!("{user}-pw"))),
                    ]),
                ),
            ])),
        );
        let token = auth
            .body
            .as_ref()
            .and_then(|b| b.get("token"))
            .and_then(|t| t.get("id"))
            .and_then(Json::as_str)
            .expect("fixture user authenticates")
            .to_string();
        let outcome = monitor.process(&request.auth_token(token));
        let diagnostics = monitor
            .log()
            .last()
            .map(|r| r.diagnostics.clone())
            .unwrap_or_default();
        ScenarioResult {
            name: name.to_string(),
            role: role.to_string(),
            verdict: outcome.verdict,
            requirements: outcome.requirements,
            diagnostics,
        }
    }
}

#[cfg(test)]
mod extended_oracle_tests {
    use super::*;

    #[test]
    fn extended_suite_is_clean_on_correct_cloud() {
        let report = TestOracle.run_extended(PrivateCloud::my_project);
        assert!(!report.killed(), "false positives:\n{report}");
        // Volume suite + snapshot scenarios.
        assert!(report.len() >= 30, "got {}", report.len());
    }

    #[test]
    fn extended_suite_covers_snapshot_requirements() {
        let report = TestOracle.run_extended(PrivateCloud::my_project);
        let mut reqs: Vec<&str> = report
            .scenarios
            .iter()
            .flat_map(|s| s.requirements.iter().map(String::as_str))
            .collect();
        reqs.sort_unstable();
        reqs.dedup();
        assert_eq!(reqs, vec!["1.1", "1.2", "1.3", "1.4", "2.1", "2.2", "2.3"]);
    }

    #[test]
    fn snapshot_policy_mutant_killed_by_extended_suite() {
        use cm_cloudsim::{Fault, FaultPlan};
        use cm_rbac::Rule;
        let report = TestOracle.run_extended(|| {
            PrivateCloud::my_project().with_faults(FaultPlan::single(Fault::PolicyOverride {
                action: "snapshot:delete".into(),
                rule: Rule::Always,
            }))
        });
        assert!(report.killed(), "{report}");
        assert!(report
            .violations()
            .iter()
            .any(|s| s.name.contains("DELETE snapshot")));
    }
}
