//! State probing: building the OCL evaluation environment through the
//! cloud's own REST API.
//!
//! The paper's monitor keeps "a local copy of the resource structures"
//! (models.py) and evaluates invariants whose atoms are defined in terms
//! of REST observations — `project.id->size() = 1` *means* "GET on the
//! project returned 200". The prober realises that semantics directly: it
//! issues GETs against the monitored cloud and materialises a
//! [`MapNavigator`] binding the context variables (`project`, `volume`,
//! `quota_sets`, `user`) the generated contracts navigate. Probing before
//! the monitored call produces the `pre(...)` snapshot; probing after it
//! produces the post-state.

use cm_model::HttpMethod;
use cm_ocl::{AttrScope, MapNavigator, ObjRef, Value};
use cm_rest::{Json, RestRequest, RestResponse, SharedRestService, StatusCode};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, LazyLock, Mutex};
use std::time::{Duration, Instant};

/// How much of the evaluation environment a snapshot materialises.
#[derive(Debug, Clone, Copy)]
enum ProbeScope<'a> {
    /// Every probe request.
    Full,
    /// Whole context roots (the `SnapshotPolicy::Minimal` granularity).
    Roots(&'a [String]),
    /// Individual `(root, attribute)` pairs from the compile-time
    /// analysis (the `SnapshotPolicy::Scoped` granularity).
    Attrs(&'a AttrScope),
}

impl ProbeScope<'_> {
    /// Does the contract read `root.attr`?
    fn needs(self, root: &str, attr: &str) -> bool {
        match self {
            ProbeScope::Full => true,
            ProbeScope::Roots(roots) => roots.iter().any(|r| r == root),
            ProbeScope::Attrs(s) => s.contains(root, attr),
        }
    }

    /// Does the contract read any attribute of `root` besides `excluded`?
    fn needs_other_than(self, root: &str, excluded: &str) -> bool {
        match self {
            ProbeScope::Full => true,
            ProbeScope::Roots(roots) => roots.iter().any(|r| r == root),
            ProbeScope::Attrs(s) => s.contains_other_than(root, excluded),
        }
    }

    /// Does the contract read any attribute of `root` at all?
    fn needs_any(self, root: &str) -> bool {
        match self {
            ProbeScope::Full => true,
            ProbeScope::Roots(roots) => roots.iter().any(|r| r == root),
            ProbeScope::Attrs(s) => s.mentions_root(root),
        }
    }
}

/// Which REST probes one snapshot issues, resolved from the scope in a
/// single pass *before* any request goes out. Two jobs: the scope
/// queries (indexed, but still not free) run once per snapshot instead
/// of once per attribute, and the full probe list is known up front so
/// it can be issued as **one batch** over a single pooled backend
/// connection ([`SharedRestService::call_batch`]).
#[derive(Debug, Clone, Copy)]
struct ProbePlan {
    /// `GET {prefix}/{pid}` — binds `project.id` / `project.name`.
    project: bool,
    /// `GET {prefix}/{pid}/volumes` — binds `project.volumes` and the
    /// listed volumes' attributes.
    volumes: bool,
    /// `GET {prefix}/{pid}/volumes/{vid}` — binds the addressed volume.
    volume_item: bool,
    /// `GET …/volumes/{vid}/snapshots` — binds `volume.snapshots`.
    snapshots: bool,
    /// `GET …/snapshots/{sid}` — binds the addressed snapshot.
    snapshot_item: bool,
    /// `GET {prefix}/{pid}/quota_sets` — binds `quota_sets.volume`.
    quota: bool,
    /// `GET /identity/tokens/{token}` — binds the `user` context.
    user: bool,
}

impl ProbePlan {
    fn new(scope: ProbeScope<'_>, target: &ProbeTarget) -> ProbePlan {
        let volumes = scope.needs("project", "volumes");
        // The volumes listing is a *detailed* listing: it binds every
        // listed volume's `id`/`name`/`size`/`status` — exactly the
        // attribute set `bind_volume_item` binds (and a volume absent
        // from the listing gets no bindings either way). Whenever the
        // listing is already in the plan the item GET is therefore
        // redundant and elided: one fewer round-trip per snapshot. The
        // `Full` (audit) granularity keeps the item probe anyway — its
        // per-item denial signal catches a cloud that denies item reads
        // while allowing listings, which the mutation campaigns rely on.
        let listing_covers_item = volumes && !matches!(scope, ProbeScope::Full);
        // The listing carries the project-existence signal too (404 iff
        // the project is absent), which is all `project.id` encodes — so
        // when only the id is read, the dedicated project GET is equally
        // redundant beside the listing. `project.name` still needs the
        // project body, and `Full` keeps the direct probe: it is the
        // only probe that cross-checks the identity registry against
        // the block-storage state (a divergence a mutant can introduce).
        ProbePlan {
            project: scope.needs("project", "name")
                || (scope.needs("project", "id") && !listing_covers_item),
            volumes,
            volume_item: target.volume_id.is_some()
                && !listing_covers_item
                && scope.needs_other_than("volume", "snapshots"),
            snapshots: target.volume_id.is_some() && scope.needs("volume", "snapshots"),
            snapshot_item: target.volume_id.is_some()
                && target.snapshot_id.is_some()
                && scope.needs_any("snapshot"),
            quota: scope.needs_any("quota_sets"),
            user: scope.needs_any("user"),
        }
    }
}

/// One probe GET that the *transport* failed to deliver: the response
/// was synthesised by the client layer (marked with
/// `X-CM-Transport-Fault`) or carries a gateway status (502/503/504).
///
/// A fault is categorically different from a probe *denial* (403/409
/// from the cloud itself): a denial is an observation about the cloud's
/// authorization behaviour, while a fault means the snapshot is simply
/// missing data — any contract evaluated over it would be judging the
/// transport, not the cloud. Faults therefore route to
/// `Verdict::Degraded`, never to a violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeFault {
    /// The probe request that failed, e.g. `GET /v3/1/volumes`.
    pub probe: String,
    /// The synthesised gateway status (502, 503 or 504).
    pub status: u16,
    /// The transport's error message, when one was attached.
    pub reason: String,
}

impl std::fmt::Display for ProbeFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} -> {} ({})", self.probe, self.status, self.reason)
    }
}

/// The outcome of one snapshot: the evaluation environment plus the
/// anomalies encountered while building it.
#[derive(Debug)]
pub struct Snapshot {
    /// The evaluation environment (partially filled when faults occurred).
    pub nav: MapNavigator,
    /// Anomalous probe denials: non-404 failures of the monitor's own
    /// admin-authority GETs, answered by the *cloud itself*.
    pub denials: Vec<String>,
    /// Probes the transport failed to deliver — the snapshot is partial
    /// and must not be evaluated against a contract.
    pub faults: Vec<ProbeFault>,
}

impl Snapshot {
    /// True when at least one probe never reached the cloud: the
    /// environment is missing bindings through no fault of the cloud.
    #[must_use]
    pub fn is_partial(&self) -> bool {
        !self.faults.is_empty()
    }
}

/// Identifies the slice of cloud state a contract evaluation needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeTarget {
    /// Project the request is scoped to.
    pub project_id: u64,
    /// Specific volume addressed by the request, if any.
    pub volume_id: Option<u64>,
    /// Specific snapshot addressed by the request, if any.
    pub snapshot_id: Option<u64>,
    /// The requester's auth token (probes run with the requester's own
    /// authority is *not* wanted — see `monitor_token`).
    pub user_token: String,
    /// Token the monitor itself uses for probing (an admin-ish identity so
    /// probes are not rejected when the *requester* is unauthorized).
    pub monitor_token: String,
}

/// How long a token-introspection answer stays valid in the prober's
/// identity cache. Keystone tokens are immutable for their lifetime
/// (only expiry or explicit revocation ends them), so re-introspecting
/// the same token on every snapshot mostly re-reads the same answer;
/// OpenStack's own `keystonemiddleware` ships the same cache for the
/// same reason. The TTL bounds how long a *revocation* can go unnoticed.
pub const DEFAULT_IDENTITY_TTL: Duration = Duration::from_secs(60);

/// token → (cached-at, shared introspection response).
type IdentityCache = HashMap<String, (Instant, Arc<RestResponse>)>;

/// Default number of entries the identity cache holds before it is
/// wholesale cleared — a bound against unauthenticated traffic spraying
/// unique junk tokens. Override with
/// [`StateProber::identity_capacity`].
pub const DEFAULT_IDENTITY_CAP: usize = 4096;

/// Shared hit/miss counter handles for the identity cache, wired by the
/// monitor so cache effectiveness shows up under `/-/metrics`. Plain
/// atomics (not a metrics-registry reference) keep the prober free of
/// any observability-layer coupling.
#[derive(Debug, Clone)]
struct IdentityCounters {
    hit: Arc<AtomicU64>,
    miss: Arc<AtomicU64>,
}

/// The prober. `prefix` is the block-storage API prefix (usually `/v3`).
#[derive(Debug, Clone)]
pub struct StateProber {
    /// API prefix for the block-storage service.
    pub prefix: String,
    /// TTL for cached token introspections; zero disables the cache.
    identity_ttl: Duration,
    /// Entries held before the cache is wholesale cleared.
    identity_cap: usize,
    /// Cache hit/miss tallies, when the owner wants them surfaced.
    identity_counters: Option<IdentityCounters>,
    /// token → (cached-at, introspection response). Shared across
    /// clones so every shard of one monitor sees the same cache; the
    /// response itself is shared too, so a hit is a refcount bump
    /// rather than a deep clone of the introspection body.
    identity_cache: Arc<Mutex<IdentityCache>>,
}

impl Default for StateProber {
    fn default() -> Self {
        StateProber {
            prefix: "/v3".to_string(),
            identity_ttl: DEFAULT_IDENTITY_TTL,
            identity_cap: DEFAULT_IDENTITY_CAP,
            identity_counters: None,
            identity_cache: Arc::new(Mutex::new(HashMap::new())),
        }
    }
}

impl StateProber {
    /// Create a prober with the given API prefix.
    #[must_use]
    pub fn new(prefix: impl Into<String>) -> Self {
        StateProber {
            prefix: prefix.into(),
            ..StateProber::default()
        }
    }

    /// Set the identity-cache TTL (builder style). `Duration::ZERO`
    /// disables caching: every snapshot re-introspects the token.
    #[must_use]
    pub fn identity_ttl(mut self, ttl: Duration) -> Self {
        self.identity_ttl = ttl;
        self
    }

    /// Set the identity-cache capacity (builder style): entries held
    /// before the cache is wholesale cleared. A capacity of zero keeps
    /// nothing (every insert immediately clears), which is effectively
    /// the same as a zero TTL.
    #[must_use]
    pub fn identity_capacity(mut self, capacity: usize) -> Self {
        self.identity_cap = capacity;
        self
    }

    /// Attach hit/miss counter handles for the identity cache (builder
    /// style); the monitor wires these to its metrics registry so cache
    /// effectiveness is visible at `/-/metrics`.
    #[must_use]
    pub fn identity_counter_handles(mut self, hit: Arc<AtomicU64>, miss: Arc<AtomicU64>) -> Self {
        self.identity_counters = Some(IdentityCounters { hit, miss });
        self
    }

    /// Count one identity-cache lookup outcome.
    fn count_identity(&self, hit: bool) {
        if let Some(counters) = &self.identity_counters {
            let counter = if hit { &counters.hit } else { &counters.miss };
            counter.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A still-fresh cached introspection for `token`, if any. Expired
    /// entries are evicted on the way.
    fn cached_identity(&self, token: &str) -> Option<Arc<RestResponse>> {
        if self.identity_ttl.is_zero() {
            return None;
        }
        let mut cache = self
            .identity_cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        match cache.get(token) {
            Some((at, resp)) if at.elapsed() < self.identity_ttl => Some(resp.clone()),
            Some(_) => {
                cache.remove(token);
                None
            }
            None => None,
        }
    }

    /// Remember an introspection answer (callers skip transport faults:
    /// a synthesised response says nothing about the token).
    fn remember_identity(&self, token: &str, resp: &RestResponse) {
        if self.identity_ttl.is_zero() {
            return;
        }
        let mut cache = self
            .identity_cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if cache.len() >= self.identity_cap && !cache.contains_key(token) {
            cache.clear();
        }
        cache.insert(token.to_string(), (Instant::now(), Arc::new(resp.clone())));
    }

    /// Introspect one token (`GET /identity/tokens/{token}`) through
    /// the identity cache: a fresh cached answer is returned without
    /// touching the cloud; otherwise one GET runs and the (non-fault)
    /// answer is cached. This is the *only* round-trip a replica-mode
    /// request may need in steady state — the shadow replica supplies
    /// every other binding locally.
    ///
    /// # Errors
    ///
    /// Returns the [`ProbeFault`] when the transport failed to deliver
    /// the introspection (a 404 for an unknown token is a legitimate
    /// *answer*, not a fault).
    pub fn identity(
        &self,
        cloud: &dyn SharedRestService,
        token: &str,
    ) -> Result<Arc<RestResponse>, ProbeFault> {
        if let Some(cached) = self.cached_identity(token) {
            self.count_identity(true);
            return Ok(cached);
        }
        self.count_identity(false);
        let path = format!("/identity/tokens/{token}");
        let resp = cloud.call(&RestRequest::new(HttpMethod::Get, path.clone()));
        if resp.is_transport_fault() || resp.status.is_gateway_error() {
            return Err(ProbeFault {
                probe: format!("GET {path}"),
                status: resp.status.0,
                reason: resp
                    .error_message()
                    .unwrap_or("transport fault")
                    .to_string(),
            });
        }
        self.remember_identity(token, &resp);
        Ok(Arc::new(resp))
    }

    /// Probe the cloud and build the evaluation environment as a
    /// [`Snapshot`]: the navigator plus anomalous probe denials
    /// (non-404 failures of the monitor's own GETs, answered by the
    /// cloud — a wrong-authorization signal the monitor reports) plus
    /// transport faults (probes the path to the cloud failed to
    /// deliver, making the snapshot partial).
    pub fn snapshot_checked(
        &self,
        cloud: &dyn SharedRestService,
        target: &ProbeTarget,
    ) -> Snapshot {
        self.snapshot_impl(cloud, target, ProbeScope::Full, None).1
    }

    /// Forward `lead` to the cloud and take a full-granularity
    /// post-state snapshot in the *same* pipelined batch
    /// ([`SharedRestService::call_batch`]). The backend serves a batch
    /// in order over one connection, so the probes observe the state
    /// *after* the lead call executed — semantically the sequential
    /// forward-then-snapshot, minus one full round of backend
    /// round-trips. Returns the lead's response plus the snapshot.
    pub fn snapshot_checked_after(
        &self,
        cloud: &dyn SharedRestService,
        lead: &RestRequest,
        target: &ProbeTarget,
    ) -> (RestResponse, Snapshot) {
        let (resp, snap) = self.snapshot_impl(cloud, target, ProbeScope::Full, Some(lead));
        (resp.expect("lead response present"), snap)
    }

    /// Like [`StateProber::snapshot_checked`], but probes only the context
    /// roots in `scope` — the minimal set a contract actually navigates
    /// (see `MethodContract::referenced_roots`). The paper's monitor
    /// stores "only the values that constitute the guards and invariants";
    /// scoped probing realises that: a contract that never mentions
    /// `quota_sets` costs one fewer REST round-trip per snapshot.
    pub fn snapshot_scoped(
        &self,
        cloud: &dyn SharedRestService,
        target: &ProbeTarget,
        scope: &[String],
    ) -> Snapshot {
        self.snapshot_impl(cloud, target, ProbeScope::Roots(scope), None)
            .1
    }

    /// [`StateProber::snapshot_checked_after`] at root granularity.
    pub fn snapshot_scoped_after(
        &self,
        cloud: &dyn SharedRestService,
        lead: &RestRequest,
        target: &ProbeTarget,
        scope: &[String],
    ) -> (RestResponse, Snapshot) {
        let (resp, snap) = self.snapshot_impl(cloud, target, ProbeScope::Roots(scope), Some(lead));
        (resp.expect("lead response present"), snap)
    }

    /// Like [`StateProber::snapshot_scoped`], but at *attribute*
    /// granularity: probe requests are issued only when some
    /// `(root, attribute)` pair they would bind is in `scope` — the pairs
    /// the compiled contract's `pre()`/invariant analysis recorded. A
    /// contract that reads `project.volumes` but never `project.id` skips
    /// the project GET entirely; one that never mentions
    /// `volume.snapshots` skips the snapshots listing even though it
    /// reads the volume item.
    pub fn snapshot_attrs(
        &self,
        cloud: &dyn SharedRestService,
        target: &ProbeTarget,
        scope: &AttrScope,
    ) -> Snapshot {
        self.snapshot_impl(cloud, target, ProbeScope::Attrs(scope), None)
            .1
    }

    /// [`StateProber::snapshot_checked_after`] at attribute granularity.
    pub fn snapshot_attrs_after(
        &self,
        cloud: &dyn SharedRestService,
        lead: &RestRequest,
        target: &ProbeTarget,
        scope: &AttrScope,
    ) -> (RestResponse, Snapshot) {
        let (resp, snap) = self.snapshot_impl(cloud, target, ProbeScope::Attrs(scope), Some(lead));
        (resp.expect("lead response present"), snap)
    }

    /// Full-granularity speculative sandwich: `[pre-probes…, lead,
    /// post-probes…]` in one pipelined batch (see `sandwich_impl`).
    /// Returns `(pre-snapshot, lead response, post-snapshot)`. Only
    /// sound for *safe* (read-only) lead methods.
    pub fn snapshot_sandwich_checked(
        &self,
        cloud: &dyn SharedRestService,
        lead: &RestRequest,
        target: &ProbeTarget,
    ) -> (Snapshot, RestResponse, Snapshot) {
        self.sandwich_impl(cloud, lead, target, ProbeScope::Full, ProbeScope::Full)
    }

    /// [`StateProber::snapshot_sandwich_checked`] at root granularity.
    pub fn snapshot_sandwich_scoped(
        &self,
        cloud: &dyn SharedRestService,
        lead: &RestRequest,
        target: &ProbeTarget,
        scope: &[String],
    ) -> (Snapshot, RestResponse, Snapshot) {
        self.sandwich_impl(
            cloud,
            lead,
            target,
            ProbeScope::Roots(scope),
            ProbeScope::Roots(scope),
        )
    }

    /// [`StateProber::snapshot_sandwich_checked`] at attribute
    /// granularity, with separate pre- and post-phase scopes.
    pub fn snapshot_sandwich_attrs(
        &self,
        cloud: &dyn SharedRestService,
        lead: &RestRequest,
        target: &ProbeTarget,
        pre_scope: &AttrScope,
        post_scope: &AttrScope,
    ) -> (Snapshot, RestResponse, Snapshot) {
        self.sandwich_impl(
            cloud,
            lead,
            target,
            ProbeScope::Attrs(pre_scope),
            ProbeScope::Attrs(post_scope),
        )
    }

    /// Probe the cloud and build the evaluation environment.
    ///
    /// Bindings follow the paper's addressable-resource semantics:
    ///
    /// * `project.id` — `Set{id}` when `GET {prefix}/{pid}` returns 200,
    ///   otherwise the empty set (so `->size() = 1` captures existence);
    /// * `project.volumes` — set of volume object refs from the volumes
    ///   listing (empty when the listing fails);
    /// * each listed volume's `id`, `name`, `size`, `status` attributes;
    /// * `volume` — the specific volume addressed by the request (its
    ///   attributes stay undefined when it does not exist);
    /// * `quota_sets.volume` — the project's volume quota;
    /// * `user.groups` — the requester's *role* (the paper's Figure 3
    ///   guards use role names as group labels), `user.roles` — the full
    ///   role set, `user.id` — the user id.
    pub fn snapshot(&self, cloud: &dyn SharedRestService, target: &ProbeTarget) -> MapNavigator {
        self.snapshot_impl(cloud, target, ProbeScope::Full, None)
            .1
            .nav
    }

    fn snapshot_impl(
        &self,
        cloud: &dyn SharedRestService,
        target: &ProbeTarget,
        scope: ProbeScope<'_>,
        lead: Option<&RestRequest>,
    ) -> (Option<RestResponse>, Snapshot) {
        let mut asm = self.assemble(target, scope);
        // A lead request (the monitored call itself) rides at the head
        // of the probe batch: the backend answers a pipelined batch in
        // order, so the probes still observe the post-lead state. The
        // lead is spliced in head position and taken back out of the
        // response vector, so the probe zip in `bind_snapshot` never
        // sees it.
        let mut responses = if let Some(lead) = lead {
            asm.requests.insert(0, lead.clone());
            let responses = cloud.call_batch(&asm.requests);
            asm.requests.remove(0);
            debug_assert!(!responses.is_empty());
            responses
        } else {
            cloud.call_batch(&asm.requests)
        };
        let lead_response = lead.map(|_| responses.remove(0));
        debug_assert_eq!(responses.len(), asm.requests.len());
        let snapshot = self.bind_snapshot(
            &asm.plan,
            &asm.kinds,
            &asm.requests,
            asm.cached_user,
            responses,
            target,
        );
        (lead_response, snapshot)
    }

    /// Issue `[pre-probes…, lead, post-probes…]` as ONE pipelined batch
    /// and bind both snapshots. The backend serves a batch in order over
    /// a single connection, so the pre-probes observe the state *before*
    /// the lead executed and the post-probes the state *after* — exactly
    /// the sequential three-phase exchange, minus two full rounds of
    /// backend round-trips.
    ///
    /// The caller is responsible for only sandwiching *safe* methods
    /// (RFC 7231 §4.2.1: GET/HEAD): the lead reaches the cloud before
    /// any verdict on the pre-state is computed, which is only sound
    /// when the lead cannot change state.
    fn sandwich_impl(
        &self,
        cloud: &dyn SharedRestService,
        lead: &RestRequest,
        target: &ProbeTarget,
        pre_scope: ProbeScope<'_>,
        post_scope: ProbeScope<'_>,
    ) -> (Snapshot, RestResponse, Snapshot) {
        let pre = self.assemble(target, pre_scope);
        let post = self.assemble(target, post_scope);
        let pre_len = pre.requests.len();
        let mut all = pre.requests;
        all.push(lead.clone());
        all.extend(post.requests);
        let mut responses = cloud.call_batch(&all);
        debug_assert_eq!(responses.len(), all.len());
        let post_responses = responses.split_off(pre_len + 1);
        let lead_response = responses.pop().expect("lead response present");
        let pre_snapshot = self.bind_snapshot(
            &pre.plan,
            &pre.kinds,
            &all[..pre_len],
            pre.cached_user,
            responses,
            target,
        );
        let post_snapshot = self.bind_snapshot(
            &post.plan,
            &post.kinds,
            &all[pre_len + 1..],
            post.cached_user,
            post_responses,
            target,
        );
        (pre_snapshot, lead_response, post_snapshot)
    }

    /// Assemble every probe GET for `scope` up front so they can be
    /// issued as one batch: a network-backed cloud serves the whole
    /// snapshot over a single pooled keep-alive connection instead of
    /// one TCP connect per probe.
    fn assemble(&self, target: &ProbeTarget, scope: ProbeScope<'_>) -> AssembledProbes {
        let plan = ProbePlan::new(scope, target);
        let pid = target.project_id;
        let mut kinds: Vec<Probe> = Vec::with_capacity(7);
        let mut requests: Vec<RestRequest> = Vec::with_capacity(7);
        let add =
            |kinds: &mut Vec<Probe>, requests: &mut Vec<RestRequest>, kind: Probe, path: String| {
                kinds.push(kind);
                requests.push(
                    RestRequest::new(HttpMethod::Get, path).auth_token(&target.monitor_token),
                );
            };
        if plan.project {
            add(
                &mut kinds,
                &mut requests,
                Probe::Project,
                format!("{}/{pid}", self.prefix),
            );
        }
        if plan.volumes {
            add(
                &mut kinds,
                &mut requests,
                Probe::Volumes,
                format!("{}/{pid}/volumes", self.prefix),
            );
        }
        if let Some(vid) = target.volume_id {
            if plan.volume_item {
                add(
                    &mut kinds,
                    &mut requests,
                    Probe::VolumeItem,
                    format!("{}/{pid}/volumes/{vid}", self.prefix),
                );
            }
            if plan.snapshots {
                add(
                    &mut kinds,
                    &mut requests,
                    Probe::Snapshots,
                    format!("{}/{pid}/volumes/{vid}/snapshots", self.prefix),
                );
            }
            if let Some(sid) = target.snapshot_id.filter(|_| plan.snapshot_item) {
                add(
                    &mut kinds,
                    &mut requests,
                    Probe::SnapshotItem,
                    format!("{}/{pid}/volumes/{vid}/snapshots/{sid}", self.prefix),
                );
            }
        }
        if plan.quota {
            add(
                &mut kinds,
                &mut requests,
                Probe::Quota,
                format!("{}/{pid}/quota_sets", self.prefix),
            );
        }
        // The user context rarely changes within a token's lifetime:
        // serve it from the identity cache when fresh and skip the
        // introspection round-trip.
        let cached_user = if plan.user {
            let cached = self.cached_identity(&target.user_token);
            self.count_identity(cached.is_some());
            cached
        } else {
            None
        };
        if plan.user && cached_user.is_none() {
            add(
                &mut kinds,
                &mut requests,
                Probe::User,
                format!("/identity/tokens/{}", target.user_token),
            );
        }
        AssembledProbes {
            plan,
            kinds,
            requests,
            cached_user,
        }
    }

    /// Bind one snapshot's probe responses into an evaluation
    /// environment. `requests` must align index-for-index with `kinds`
    /// and `responses`.
    fn bind_snapshot(
        &self,
        plan: &ProbePlan,
        kinds: &[Probe],
        requests: &[RestRequest],
        cached_user: Option<Arc<RestResponse>>,
        responses: Vec<RestResponse>,
        target: &ProbeTarget,
    ) -> Snapshot {
        let mut denials = Vec::new();
        let mut faults = Vec::new();
        let pid = target.project_id;

        // Bind the context variables first; probes fill in attributes.
        let mut nav = MapNavigator::new();
        let project = ObjRef::new(Arc::clone(&PROJECT_CLASS), pid);
        let quota = ObjRef::new(Arc::clone(&QUOTA_CLASS), pid);
        nav.set_variable("project", project.clone());
        nav.set_variable("quota_sets", quota.clone());
        let volume = ObjRef::new(Arc::clone(&VOLUME_CLASS), target.volume_id.unwrap_or(0));
        nav.set_variable("volume", volume.clone());
        let snapshot = ObjRef::new(Arc::clone(&SNAPSHOT_CLASS), target.snapshot_id.unwrap_or(0));
        nav.set_variable("snapshot", snapshot.clone());
        if !plan.user {
            nav.set_variable("user", ObjRef::new(Arc::clone(&USER_CLASS), 0));
        } else if let Some(resp) = &cached_user {
            bind_user(&mut nav, resp);
        }

        for ((kind, request), resp) in kinds.iter().zip(requests).zip(responses) {
            // A response the transport synthesised (or a gateway status)
            // means this probe never reached the cloud: record the fault
            // and skip binding — a half-bound root would let a contract
            // "observe" state that was never actually read. All probe
            // kinds count, including the denial-exempt ones: a missing
            // user binding is just as much a hole in the environment.
            if resp.is_transport_fault() || resp.status.is_gateway_error() {
                faults.push(ProbeFault {
                    probe: format!("GET {}", request.path),
                    status: resp.status.0,
                    reason: resp
                        .error_message()
                        .unwrap_or("transport fault")
                        .to_string(),
                });
                continue;
            }
            // The monitor probes with its own (admin-authority) token, so
            // any denial other than a plain 404 is anomalous: either the
            // monitor is misconfigured or the cloud wrongly denies
            // authorized reads. Snapshot and token probes are exempt — a
            // cloud without the snapshots extension 404s there, and token
            // introspection legitimately fails for unauthenticated
            // requesters.
            if kind.tracks_errors()
                && !resp.status.is_success()
                && resp.status != StatusCode::NOT_FOUND
            {
                denials.push(format!("probe GET {} -> {}", request.path, resp.status));
            }
            match kind {
                Probe::Project => bind_project(&mut nav, &project, pid, &resp),
                Probe::Volumes => {
                    // With the project GET elided, the listing's status
                    // carries the existence signal `project.id` encodes.
                    // When the project probe IS planned, it stays the
                    // sole authority for the id binding.
                    if !plan.project {
                        let id = if resp.status == StatusCode::OK {
                            Value::set(vec![Value::Int(pid as i64)])
                        } else {
                            Value::set(vec![])
                        };
                        nav.set_attribute(project.clone(), "id", id);
                    }
                    bind_volumes(&mut nav, project.clone(), &resp);
                }
                Probe::VolumeItem => bind_volume_item(&mut nav, &volume, &resp),
                Probe::Snapshots => bind_snapshots(&mut nav, volume.clone(), &resp),
                Probe::SnapshotItem => bind_snapshot_item(&mut nav, &snapshot, &resp),
                Probe::Quota => bind_quota(&mut nav, quota.clone(), &resp),
                Probe::User => {
                    // Reached the cloud (faults `continue` above), so
                    // the answer is authoritative and cacheable.
                    self.remember_identity(&target.user_token, &resp);
                    bind_user(&mut nav, &resp);
                }
            }
        }

        Snapshot {
            nav,
            denials,
            faults,
        }
    }
}

/// Probe requests assembled for one snapshot, before any of them is
/// issued: the plan they follow, the probe kind and request at each
/// batch index, and the identity-cache hit (if any) that stands in for
/// an elided introspection probe.
struct AssembledProbes {
    plan: ProbePlan,
    kinds: Vec<Probe>,
    requests: Vec<RestRequest>,
    cached_user: Option<Arc<RestResponse>>,
}

/// Interned class names for the cinder context variables: snapshots
/// mint many `ObjRef`s per request, and a shared name makes each one a
/// refcount bump instead of a fresh string allocation. Shared with the
/// replica module so replica-built navigators use identical object
/// identities.
pub(crate) static PROJECT_CLASS: LazyLock<Arc<str>> = LazyLock::new(|| Arc::from("project"));
pub(crate) static QUOTA_CLASS: LazyLock<Arc<str>> = LazyLock::new(|| Arc::from("quota_sets"));
pub(crate) static VOLUME_CLASS: LazyLock<Arc<str>> = LazyLock::new(|| Arc::from("volume"));
pub(crate) static SNAPSHOT_CLASS: LazyLock<Arc<str>> = LazyLock::new(|| Arc::from("snapshot"));
pub(crate) static USER_CLASS: LazyLock<Arc<str>> = LazyLock::new(|| Arc::from("user"));

/// One probe request kind within a snapshot batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Probe {
    Project,
    Volumes,
    VolumeItem,
    Snapshots,
    SnapshotItem,
    Quota,
    User,
}

impl Probe {
    /// Probes whose non-404 failures count as anomalous denials.
    fn tracks_errors(self) -> bool {
        !matches!(self, Probe::Snapshots | Probe::SnapshotItem | Probe::User)
    }
}

/// `project.id`: `Set{pid}` iff GET project → 200 (plus `project.name`).
fn bind_project(nav: &mut MapNavigator, project: &ObjRef, pid: u64, resp: &RestResponse) {
    if resp.status == StatusCode::OK {
        nav.set_attribute(
            project.clone(),
            "id",
            Value::set(vec![Value::Int(pid as i64)]),
        );
        if let Some(name) = resp
            .body
            .as_ref()
            .and_then(|b| b.get("project"))
            .and_then(|p| p.get("name"))
            .and_then(Json::as_str)
        {
            nav.set_attribute(project.clone(), "name", name);
        }
    } else {
        nav.set_attribute(project.clone(), "id", Value::set(vec![]));
    }
}

/// `project.volumes`: refs from the listing; volume attributes (the
/// listing binds the element attributes too, so a contract reading
/// `project.volumes->forAll(v | v.status …)` needs only this pair).
fn bind_volumes(nav: &mut MapNavigator, project: ObjRef, resp: &RestResponse) {
    let mut volume_refs = Vec::new();
    if resp.status == StatusCode::OK {
        if let Some(volumes) = resp
            .body
            .as_ref()
            .and_then(|b| b.get("volumes"))
            .and_then(Json::as_array)
        {
            for v in volumes {
                let Some(id) = v.get("id").and_then(Json::as_int) else {
                    continue;
                };
                let obj = ObjRef::new(Arc::clone(&VOLUME_CLASS), id as u64);
                nav.set_attribute(obj.clone(), "id", Value::set(vec![Value::Int(id)]));
                if let Some(name) = v.get("name").and_then(Json::as_str) {
                    nav.set_attribute(obj.clone(), "name", name);
                }
                if let Some(size) = v.get("size").and_then(Json::as_int) {
                    nav.set_attribute(obj.clone(), "size", size);
                }
                if let Some(status) = v.get("status").and_then(Json::as_str) {
                    nav.set_attribute(obj.clone(), "status", status);
                }
                volume_refs.push(Value::Obj(obj));
            }
        }
    }
    nav.set_attribute(project, "volumes", Value::set(volume_refs));
}

/// The specific volume addressed by the request. The variable is bound
/// regardless (see `snapshot_impl`); attributes appear only on a 200.
fn bind_volume_item(nav: &mut MapNavigator, volume: &ObjRef, resp: &RestResponse) {
    if resp.status != StatusCode::OK {
        return;
    }
    let Some(v) = resp.body.as_ref().and_then(|b| b.get("volume")) else {
        return;
    };
    nav.set_attribute(
        volume.clone(),
        "id",
        Value::set(vec![Value::Int(volume.id as i64)]),
    );
    if let Some(status) = v.get("status").and_then(Json::as_str) {
        nav.set_attribute(volume.clone(), "status", status);
    }
    if let Some(size) = v.get("size").and_then(Json::as_int) {
        nav.set_attribute(volume.clone(), "size", size);
    }
    if let Some(name) = v.get("name").and_then(Json::as_str) {
        nav.set_attribute(volume.clone(), "name", name);
    }
}

/// `volume.snapshots` + the listed snapshots' attributes (extended model).
fn bind_snapshots(nav: &mut MapNavigator, volume: ObjRef, resp: &RestResponse) {
    let mut snapshot_refs = Vec::new();
    if resp.status == StatusCode::OK {
        if let Some(snaps) = resp
            .body
            .as_ref()
            .and_then(|b| b.get("snapshots"))
            .and_then(Json::as_array)
        {
            for snap in snaps {
                let Some(id) = snap.get("id").and_then(Json::as_int) else {
                    continue;
                };
                let obj = ObjRef::new(Arc::clone(&SNAPSHOT_CLASS), id as u64);
                nav.set_attribute(obj.clone(), "id", Value::set(vec![Value::Int(id)]));
                if let Some(name) = snap.get("name").and_then(Json::as_str) {
                    nav.set_attribute(obj.clone(), "name", name);
                }
                if let Some(status) = snap.get("status").and_then(Json::as_str) {
                    nav.set_attribute(obj.clone(), "status", status);
                }
                snapshot_refs.push(Value::Obj(obj));
            }
        }
    }
    nav.set_attribute(volume, "snapshots", Value::set(snapshot_refs));
}

/// The addressed snapshot (attribute-free when absent).
fn bind_snapshot_item(nav: &mut MapNavigator, snapshot: &ObjRef, resp: &RestResponse) {
    if resp.status != StatusCode::OK {
        return;
    }
    let Some(snap) = resp.body.as_ref().and_then(|b| b.get("snapshot")) else {
        return;
    };
    nav.set_attribute(
        snapshot.clone(),
        "id",
        Value::set(vec![Value::Int(snapshot.id as i64)]),
    );
    if let Some(name) = snap.get("name").and_then(Json::as_str) {
        nav.set_attribute(snapshot.clone(), "name", name);
    }
    if let Some(status) = snap.get("status").and_then(Json::as_str) {
        nav.set_attribute(snapshot.clone(), "status", status);
    }
}

/// `quota_sets.volume`.
fn bind_quota(nav: &mut MapNavigator, quota: ObjRef, resp: &RestResponse) {
    if let Some(q) = resp
        .body
        .as_ref()
        .and_then(|b| b.get("quota_set"))
        .and_then(|q| q.get("volume"))
        .and_then(Json::as_int)
    {
        nav.set_attribute(quota, "volume", q);
    }
}

/// The `user` context from token introspection. Introspection 404s for
/// unauthenticated requesters; that is a legitimate outcome, and the
/// `user` variable is bound attribute-free so guards evaluate to false
/// rather than erroring on an unknown variable. Shared with the replica
/// module: a replica-built environment binds `user` from the same
/// introspection answer a probe-built one would.
pub(crate) fn bind_user(nav: &mut MapNavigator, resp: &RestResponse) {
    if let Some(tok) = resp.body.as_ref().and_then(|b| b.get("token")) {
        let uid = tok.get("user_id").and_then(Json::as_int).unwrap_or(0);
        let user = ObjRef::new(Arc::clone(&USER_CLASS), uid as u64);
        nav.set_variable("user", user.clone());
        nav.set_attribute(user.clone(), "id", Value::set(vec![Value::Int(uid)]));
        if let Some(name) = tok.get("user").and_then(Json::as_str) {
            nav.set_attribute(user.clone(), "name", name);
        }
        let roles: Vec<Value> = tok
            .get("roles")
            .and_then(Json::as_array)
            .map(|rs| {
                rs.iter()
                    .filter_map(Json::as_str)
                    .map(|s| Value::Str(s.to_string()))
                    .collect()
            })
            .unwrap_or_default();
        // Figure 3 guard vocabulary: `user.groups = 'admin'` compares
        // against the primary role label.
        if let Some(Value::Str(primary)) = roles.first() {
            nav.set_attribute(user.clone(), "groups", primary.clone());
        }
        nav.set_attribute(user, "roles", Value::set(roles));
    } else {
        nav.set_variable("user", ObjRef::new(Arc::clone(&USER_CLASS), 0));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_cloudsim::PrivateCloud;
    use cm_ocl::{parse, EvalContext};

    fn setup() -> (PrivateCloud, ProbeTarget) {
        let cloud = PrivateCloud::my_project();
        let admin = cloud.issue_token("alice", "alice-pw").unwrap();
        let carol = cloud.issue_token("carol", "carol-pw").unwrap();
        let pid = cloud.project_id();
        (
            cloud,
            ProbeTarget {
                project_id: pid,
                volume_id: None,
                snapshot_id: None,
                user_token: carol.token,
                monitor_token: admin.token,
            },
        )
    }

    #[test]
    fn empty_project_matches_no_volume_invariant() {
        let (cloud, target) = setup();
        let nav = StateProber::default().snapshot(&cloud, &target);
        let inv = parse("project.id->size()=1 and project.volumes->size()=0").unwrap();
        assert!(EvalContext::new(&nav).eval_bool(&inv).unwrap());
    }

    #[test]
    fn volumes_and_quota_are_visible() {
        let (cloud, mut target) = setup();
        let pid = target.project_id;
        let vid = cloud
            .state_mut()
            .create_volume(pid, "v1", 10, false)
            .unwrap()
            .id;
        target.volume_id = Some(vid);
        let nav = StateProber::default().snapshot(&cloud, &target);
        let checks = [
            "project.volumes->size() = 1",
            "project.volumes->size() < quota_sets.volume",
            "volume.status = 'available'",
            "volume.size = 10",
        ];
        for c in checks {
            let e = parse(c).unwrap();
            assert!(
                EvalContext::new(&nav).eval_bool(&e).unwrap(),
                "check failed: {c}"
            );
        }
    }

    #[test]
    fn user_view_reflects_roles() {
        let (cloud, target) = setup();
        let nav = StateProber::default().snapshot(&cloud, &target);
        // carol is role `user`.
        let e = parse("user.groups = 'user'").unwrap();
        assert!(EvalContext::new(&nav).eval_bool(&e).unwrap());
        let e2 = parse("user.roles->includes('user')").unwrap();
        assert!(EvalContext::new(&nav).eval_bool(&e2).unwrap());
        let e3 = parse("user.groups = 'admin'").unwrap();
        assert!(!EvalContext::new(&nav).eval_bool(&e3).unwrap());
    }

    #[test]
    fn missing_volume_attributes_are_undefined() {
        let (cloud, mut target) = setup();
        target.volume_id = Some(999);
        let nav = StateProber::default().snapshot(&cloud, &target);
        let e = parse("volume.status.oclIsUndefined()").unwrap();
        assert!(EvalContext::new(&nav).eval_bool(&e).unwrap());
    }

    #[test]
    fn nonexistent_project_has_empty_id_set() {
        let (cloud, mut target) = setup();
        target.project_id = 999;
        // The admin token is scoped to project 1, so GET /v3/999 is 403 →
        // the project is unobservable → id set empty.
        let nav = StateProber::default().snapshot(&cloud, &target);
        let e = parse("project.id->size() = 0").unwrap();
        assert!(EvalContext::new(&nav).eval_bool(&e).unwrap());
    }

    #[test]
    fn invalid_user_token_yields_attribute_free_user() {
        let (cloud, mut target) = setup();
        target.user_token = "tok-bogus".to_string();
        let nav = StateProber::default().snapshot(&cloud, &target);
        let e = parse("user.groups = 'admin'").unwrap();
        // groups is undefined; equality with a string is false.
        assert!(!EvalContext::new(&nav).eval_bool(&e).unwrap());
    }

    #[test]
    fn transport_faults_are_reported_not_bound() {
        // A "cloud" whose volume listing is answered by the transport
        // layer (marked fault): the snapshot must record the hole and
        // must not bind `project.volumes` to a phantom empty set.
        struct FlakyListing {
            inner: PrivateCloud,
        }
        impl SharedRestService for FlakyListing {
            fn call(&self, request: &RestRequest) -> RestResponse {
                if request.path.ends_with("/volumes") {
                    RestResponse::transport_fault(
                        StatusCode::BAD_GATEWAY,
                        "connection reset by peer",
                    )
                } else {
                    self.inner.call(request)
                }
            }
        }
        let (cloud, target) = setup();
        let flaky = FlakyListing { inner: cloud };
        let snap = StateProber::default().snapshot_checked(&flaky, &target);
        assert!(snap.is_partial());
        assert_eq!(snap.faults.len(), 1);
        let fault = &snap.faults[0];
        assert!(fault.probe.contains("/volumes"), "{fault}");
        assert_eq!(fault.status, 502);
        assert_eq!(fault.reason, "connection reset by peer");
        // The fault is not a denial, and the unreachable binding stays
        // undefined instead of masquerading as an empty listing.
        assert!(snap.denials.is_empty());
        let e = parse("project.volumes.oclIsUndefined()").unwrap();
        assert!(EvalContext::new(&snap.nav).eval_bool(&e).unwrap());
    }

    #[test]
    fn unmarked_gateway_statuses_also_count_as_faults() {
        struct Gateway504 {
            inner: PrivateCloud,
        }
        impl SharedRestService for Gateway504 {
            fn call(&self, request: &RestRequest) -> RestResponse {
                if request.path.contains("quota_sets") {
                    RestResponse::error(StatusCode::GATEWAY_TIMEOUT, "upstream timed out")
                } else {
                    self.inner.call(request)
                }
            }
        }
        let (cloud, target) = setup();
        let snap = StateProber::default().snapshot_checked(&Gateway504 { inner: cloud }, &target);
        assert_eq!(snap.faults.len(), 1);
        assert_eq!(snap.faults[0].status, 504);
        assert!(snap.denials.is_empty());
    }

    #[test]
    fn pre_and_post_snapshots_differ_after_delete() {
        let (cloud, mut target) = setup();
        let pid = target.project_id;
        let vid = cloud
            .state_mut()
            .create_volume(pid, "v1", 10, false)
            .unwrap()
            .id;
        target.volume_id = Some(vid);
        let prober = StateProber::default();
        let pre = prober.snapshot(&cloud, &target);
        cloud.state_mut().delete_volume(pid, vid, false).unwrap();
        let post = prober.snapshot(&cloud, &target);
        let e = parse("project.volumes->size() < pre(project.volumes->size())").unwrap();
        assert!(EvalContext::with_pre_state(&post, &pre)
            .eval_bool(&e)
            .unwrap());
    }
}

#[cfg(test)]
mod scoped_tests {
    use super::*;
    use cm_cloudsim::PrivateCloud;
    use cm_ocl::{parse, EvalContext};

    /// A counting wrapper so tests can assert how many probe requests a
    /// snapshot issues. Counts atomically — the prober only sees a shared
    /// reference.
    struct Counting<S> {
        inner: S,
        requests: std::sync::atomic::AtomicUsize,
    }

    impl<S: SharedRestService> SharedRestService for Counting<S> {
        fn call(&self, request: &RestRequest) -> cm_rest::RestResponse {
            self.requests
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.inner.call(request)
        }
    }

    fn setup() -> (Counting<PrivateCloud>, ProbeTarget) {
        let cloud = PrivateCloud::my_project();
        let pid = cloud.project_id();
        let admin = cloud.issue_token("alice", "alice-pw").unwrap();
        let vid = cloud
            .state_mut()
            .create_volume(pid, "v", 1, false)
            .unwrap()
            .id;
        let target = ProbeTarget {
            project_id: pid,
            volume_id: Some(vid),
            snapshot_id: None,
            user_token: admin.token.clone(),
            monitor_token: admin.token,
        };
        (
            Counting {
                inner: cloud,
                requests: std::sync::atomic::AtomicUsize::new(0),
            },
            target,
        )
    }

    #[test]
    fn full_snapshot_probes_all_roots() {
        let (cloud, target) = setup();
        let prober = StateProber::default();
        let _ = prober.snapshot(&cloud, &target);
        // project + volumes + volume item + snapshots listing + quota +
        // token introspection.
        assert_eq!(cloud.requests.load(std::sync::atomic::Ordering::Relaxed), 6);
    }

    #[test]
    fn scoped_snapshot_skips_unreferenced_roots() {
        let (cloud, target) = setup();
        let prober = StateProber::default();
        let snap = prober.snapshot_scoped(&cloud, &target, &["project".to_string()]);
        assert!(snap.denials.is_empty());
        assert!(!snap.is_partial());
        let nav = snap.nav;
        // Only project + volumes listing.
        assert_eq!(cloud.requests.load(std::sync::atomic::Ordering::Relaxed), 2);
        let e = parse("project.volumes->size() = 1").unwrap();
        assert!(EvalContext::new(&nav).eval_bool(&e).unwrap());
        // Out-of-scope roots are still *bound* (variables resolve) but
        // attribute-free, so guards over them evaluate, not error.
        let q = parse("quota_sets.volume.oclIsUndefined()").unwrap();
        assert!(EvalContext::new(&nav).eval_bool(&q).unwrap());
    }

    #[test]
    fn attr_scoped_snapshot_skips_unreferenced_attributes() {
        let (cloud, target) = setup();
        let prober = StateProber::default();
        let scope = cm_ocl::AttrScope::new(
            vec![
                ("project".to_string(), "volumes".to_string()),
                ("user".to_string(), "groups".to_string()),
            ],
            true,
        );
        let snap = prober.snapshot_attrs(&cloud, &target, &scope);
        assert!(snap.denials.is_empty());
        let nav = snap.nav;
        // Volumes listing + token introspection only: no project GET, no
        // volume item (the target names one!), no snapshots, no quota.
        assert_eq!(cloud.requests.load(std::sync::atomic::Ordering::Relaxed), 2);
        let e = parse("project.volumes->size() = 1 and user.groups = 'admin'").unwrap();
        assert!(EvalContext::new(&nav).eval_bool(&e).unwrap());
        // Unprobed attributes are undefined, not errors.
        let q = parse("quota_sets.volume.oclIsUndefined()").unwrap();
        assert!(EvalContext::new(&nav).eval_bool(&q).unwrap());
    }

    #[test]
    fn attr_scope_on_volume_splits_item_from_snapshots_listing() {
        let (cloud, target) = setup();
        let prober = StateProber::default();
        // Only volume.status: the volume item GET runs, the snapshots
        // listing does not.
        let scope =
            cm_ocl::AttrScope::new(vec![("volume".to_string(), "status".to_string())], true);
        let _ = prober.snapshot_attrs(&cloud, &target, &scope);
        assert_eq!(cloud.requests.load(std::sync::atomic::Ordering::Relaxed), 1);

        // Only volume.snapshots: the listing runs, the item GET does not.
        let (cloud2, target2) = setup();
        let scope2 =
            cm_ocl::AttrScope::new(vec![("volume".to_string(), "snapshots".to_string())], true);
        let nav = prober.snapshot_attrs(&cloud2, &target2, &scope2).nav;
        assert_eq!(
            cloud2.requests.load(std::sync::atomic::Ordering::Relaxed),
            1
        );
        let e = parse("volume.snapshots->size() = 0").unwrap();
        assert!(EvalContext::new(&nav).eval_bool(&e).unwrap());
    }

    #[test]
    fn attr_wildcard_scope_probes_the_whole_root() {
        let (cloud, target) = setup();
        let prober = StateProber::default();
        let scope = cm_ocl::AttrScope::wildcard(&["volume".to_string()]);
        let _ = prober.snapshot_attrs(&cloud, &target, &scope);
        // Wildcard volume = item GET + snapshots listing, like Roots.
        assert_eq!(cloud.requests.load(std::sync::atomic::Ordering::Relaxed), 2);
    }

    #[test]
    fn scoped_snapshot_with_all_roots_equals_full() {
        let (cloud, target) = setup();
        let prober = StateProber::default();
        let full = prober.snapshot(&cloud, &target);
        let scoped = prober.snapshot_scoped(
            &cloud,
            &target,
            &[
                "project".to_string(),
                "volume".to_string(),
                "quota_sets".to_string(),
                "user".to_string(),
            ],
        );
        assert_eq!(full, scoped.nav);
    }
}
