//! Security-requirement coverage tracking.
//!
//! "This also allows the security experts to observe the coverage of the
//! security requirements during the testing phase" (Section I). The
//! tracker counts, per requirement id, how often the requirement was
//! exercised and how often a violation verdict was recorded while it was
//! in play.

use crate::monitor::MonitorRecord;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Counters for one requirement (a point-in-time snapshot of the
/// tracker's live atomic cells).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RequirementCoverage {
    /// Times a request exercised the requirement.
    pub exercised: u64,
    /// Times the verdict was a violation while this requirement was
    /// exercised.
    pub violations: u64,
}

/// Live counters for one requirement.
#[derive(Debug, Default)]
struct CovCell {
    exercised: AtomicU64,
    violations: AtomicU64,
}

impl CovCell {
    fn snapshot(&self) -> RequirementCoverage {
        RequirementCoverage {
            exercised: self.exercised.load(Ordering::Relaxed),
            violations: self.violations.load(Ordering::Relaxed),
        }
    }
}

/// Coverage across all specified requirements.
///
/// Recording is lock-free in the common case: each requirement's counters
/// are atomics, and the cell list is behind a read-write lock taken for
/// writing only when a request exercises a requirement id never seen
/// before. Many monitor shards can therefore record concurrently through
/// a shared reference.
#[derive(Debug, Default)]
pub struct CoverageTracker {
    cells: RwLock<Vec<(String, Arc<CovCell>)>>,
    total_requests: AtomicU64,
    total_violations: AtomicU64,
}

impl Clone for CoverageTracker {
    fn clone(&self) -> Self {
        let cells = self
            .cells
            .read()
            .unwrap()
            .iter()
            .map(|(id, cell)| {
                let snap = cell.snapshot();
                (
                    id.clone(),
                    Arc::new(CovCell {
                        exercised: AtomicU64::new(snap.exercised),
                        violations: AtomicU64::new(snap.violations),
                    }),
                )
            })
            .collect();
        CoverageTracker {
            cells: RwLock::new(cells),
            total_requests: AtomicU64::new(self.total_requests.load(Ordering::Relaxed)),
            total_violations: AtomicU64::new(self.total_violations.load(Ordering::Relaxed)),
        }
    }
}

impl CoverageTracker {
    /// Create a tracker pre-seeded with the specified requirement ids (so
    /// never-exercised requirements still show up in the report).
    #[must_use]
    pub fn new(specified: &[String]) -> Self {
        CoverageTracker {
            cells: RwLock::new(
                specified
                    .iter()
                    .map(|id| (id.clone(), Arc::new(CovCell::default())))
                    .collect(),
            ),
            total_requests: AtomicU64::new(0),
            total_violations: AtomicU64::new(0),
        }
    }

    /// The live cell for `req`, creating it when first exercised.
    fn cell(&self, req: &str) -> Arc<CovCell> {
        if let Some(cell) = self
            .cells
            .read()
            .unwrap()
            .iter()
            .find(|(id, _)| id == req)
            .map(|(_, c)| Arc::clone(c))
        {
            return cell;
        }
        let mut cells = self.cells.write().unwrap();
        // Another thread may have inserted it between our read and write.
        if let Some(cell) = cells
            .iter()
            .find(|(id, _)| id == req)
            .map(|(_, c)| Arc::clone(c))
        {
            return cell;
        }
        let cell = Arc::new(CovCell::default());
        cells.push((req.to_string(), Arc::clone(&cell)));
        cell
    }

    /// Record one monitor log entry.
    pub fn record(&self, record: &MonitorRecord) {
        self.total_requests.fetch_add(1, Ordering::Relaxed);
        let violation = record.verdict.is_violation();
        if violation {
            self.total_violations.fetch_add(1, Ordering::Relaxed);
        }
        for req in &record.requirements {
            let cell = self.cell(req);
            cell.exercised.fetch_add(1, Ordering::Relaxed);
            if violation {
                cell.violations.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Coverage for one requirement (a snapshot of its counters).
    #[must_use]
    pub fn requirement(&self, id: &str) -> Option<RequirementCoverage> {
        self.cells
            .read()
            .unwrap()
            .iter()
            .find(|(i, _)| i == id)
            .map(|(_, c)| c.snapshot())
    }

    /// Requirement ids never exercised so far.
    #[must_use]
    pub fn unexercised(&self) -> Vec<String> {
        self.cells
            .read()
            .unwrap()
            .iter()
            .filter(|(_, c)| c.exercised.load(Ordering::Relaxed) == 0)
            .map(|(id, _)| id.clone())
            .collect()
    }

    /// Total requests seen.
    #[must_use]
    pub fn total_requests(&self) -> u64 {
        self.total_requests.load(Ordering::Relaxed)
    }

    /// Total violation verdicts seen.
    #[must_use]
    pub fn total_violations(&self) -> u64 {
        self.total_violations.load(Ordering::Relaxed)
    }

    /// Fraction of specified requirements exercised at least once
    /// (`1.0` when nothing is specified).
    #[must_use]
    pub fn coverage_ratio(&self) -> f64 {
        let cells = self.cells.read().unwrap();
        if cells.is_empty() {
            return 1.0;
        }
        let hit = cells
            .iter()
            .filter(|(_, c)| c.exercised.load(Ordering::Relaxed) > 0)
            .count();
        hit as f64 / cells.len() as f64
    }
}

impl fmt::Display for CoverageTracker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "requirement coverage: {:.0}% ({} requests, {} violations)",
            self.coverage_ratio() * 100.0,
            self.total_requests(),
            self.total_violations()
        )?;
        for (id, cell) in self.cells.read().unwrap().iter() {
            let e = cell.snapshot();
            writeln!(
                f,
                "  SecReq {id}: exercised {} time(s), {} violation(s)",
                e.exercised, e.violations
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::Verdict;
    use cm_model::{HttpMethod, Trigger};
    use cm_rest::StatusCode;

    fn record(reqs: &[&str], verdict: Verdict) -> MonitorRecord {
        MonitorRecord {
            seq: 0,
            method: HttpMethod::Delete,
            path: "/v3/1/volumes/1".into(),
            trigger: Some(Trigger::new(HttpMethod::Delete, "volume")),
            verdict,
            requirements: reqs.iter().map(|s| s.to_string()).collect(),
            status: StatusCode::NO_CONTENT,
            diagnostics: String::new(),
        }
    }

    #[test]
    fn tracks_exercised_and_violations() {
        let t = CoverageTracker::new(&["1.1".into(), "1.4".into()]);
        t.record(&record(&["1.4"], Verdict::Pass));
        t.record(&record(&["1.4"], Verdict::WrongAcceptance));
        assert_eq!(t.requirement("1.4").unwrap().exercised, 2);
        assert_eq!(t.requirement("1.4").unwrap().violations, 1);
        assert_eq!(t.total_requests(), 2);
        assert_eq!(t.total_violations(), 1);
        assert_eq!(t.unexercised(), vec!["1.1"]);
        assert!((t.coverage_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn unknown_requirements_are_added() {
        let t = CoverageTracker::new(&[]);
        t.record(&record(&["9.9"], Verdict::Pass));
        assert_eq!(t.requirement("9.9").unwrap().exercised, 1);
        assert!((t.coverage_ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn display_mentions_each_requirement() {
        let t = CoverageTracker::new(&["1.1".into()]);
        t.record(&record(&["1.1"], Verdict::PostViolation));
        let text = t.to_string();
        assert!(text.contains("SecReq 1.1"));
        assert!(text.contains("1 violation"));
    }
}
