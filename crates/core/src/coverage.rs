//! Security-requirement coverage tracking.
//!
//! "This also allows the security experts to observe the coverage of the
//! security requirements during the testing phase" (Section I). The
//! tracker counts, per requirement id, how often the requirement was
//! exercised and how often a violation verdict was recorded while it was
//! in play.

use crate::monitor::MonitorRecord;
use std::fmt;

/// Counters for one requirement.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RequirementCoverage {
    /// Times a request exercised the requirement.
    pub exercised: u64,
    /// Times the verdict was a violation while this requirement was
    /// exercised.
    pub violations: u64,
}

/// Coverage across all specified requirements.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoverageTracker {
    entries: Vec<(String, RequirementCoverage)>,
    total_requests: u64,
    total_violations: u64,
}

impl CoverageTracker {
    /// Create a tracker pre-seeded with the specified requirement ids (so
    /// never-exercised requirements still show up in the report).
    #[must_use]
    pub fn new(specified: &[String]) -> Self {
        CoverageTracker {
            entries: specified
                .iter()
                .map(|id| (id.clone(), RequirementCoverage::default()))
                .collect(),
            total_requests: 0,
            total_violations: 0,
        }
    }

    /// Record one monitor log entry.
    pub fn record(&mut self, record: &MonitorRecord) {
        self.total_requests += 1;
        let violation = record.verdict.is_violation();
        if violation {
            self.total_violations += 1;
        }
        for req in &record.requirements {
            let entry = match self.entries.iter_mut().find(|(id, _)| id == req) {
                Some((_, e)) => e,
                None => {
                    self.entries
                        .push((req.clone(), RequirementCoverage::default()));
                    &mut self.entries.last_mut().expect("just pushed").1
                }
            };
            entry.exercised += 1;
            if violation {
                entry.violations += 1;
            }
        }
    }

    /// Coverage for one requirement.
    #[must_use]
    pub fn requirement(&self, id: &str) -> Option<&RequirementCoverage> {
        self.entries.iter().find(|(i, _)| i == id).map(|(_, e)| e)
    }

    /// Requirement ids never exercised so far.
    #[must_use]
    pub fn unexercised(&self) -> Vec<&str> {
        self.entries
            .iter()
            .filter(|(_, e)| e.exercised == 0)
            .map(|(id, _)| id.as_str())
            .collect()
    }

    /// Total requests seen.
    #[must_use]
    pub fn total_requests(&self) -> u64 {
        self.total_requests
    }

    /// Total violation verdicts seen.
    #[must_use]
    pub fn total_violations(&self) -> u64 {
        self.total_violations
    }

    /// Fraction of specified requirements exercised at least once
    /// (`1.0` when nothing is specified).
    #[must_use]
    pub fn coverage_ratio(&self) -> f64 {
        if self.entries.is_empty() {
            return 1.0;
        }
        let hit = self.entries.iter().filter(|(_, e)| e.exercised > 0).count();
        hit as f64 / self.entries.len() as f64
    }
}

impl fmt::Display for CoverageTracker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "requirement coverage: {:.0}% ({} requests, {} violations)",
            self.coverage_ratio() * 100.0,
            self.total_requests,
            self.total_violations
        )?;
        for (id, e) in &self.entries {
            writeln!(
                f,
                "  SecReq {id}: exercised {} time(s), {} violation(s)",
                e.exercised, e.violations
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::Verdict;
    use cm_model::{HttpMethod, Trigger};
    use cm_rest::StatusCode;

    fn record(reqs: &[&str], verdict: Verdict) -> MonitorRecord {
        MonitorRecord {
            method: HttpMethod::Delete,
            path: "/v3/1/volumes/1".into(),
            trigger: Some(Trigger::new(HttpMethod::Delete, "volume")),
            verdict,
            requirements: reqs.iter().map(|s| s.to_string()).collect(),
            status: StatusCode::NO_CONTENT,
            diagnostics: String::new(),
        }
    }

    #[test]
    fn tracks_exercised_and_violations() {
        let mut t = CoverageTracker::new(&["1.1".into(), "1.4".into()]);
        t.record(&record(&["1.4"], Verdict::Pass));
        t.record(&record(&["1.4"], Verdict::WrongAcceptance));
        assert_eq!(t.requirement("1.4").unwrap().exercised, 2);
        assert_eq!(t.requirement("1.4").unwrap().violations, 1);
        assert_eq!(t.total_requests(), 2);
        assert_eq!(t.total_violations(), 1);
        assert_eq!(t.unexercised(), vec!["1.1"]);
        assert!((t.coverage_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn unknown_requirements_are_added() {
        let mut t = CoverageTracker::new(&[]);
        t.record(&record(&["9.9"], Verdict::Pass));
        assert_eq!(t.requirement("9.9").unwrap().exercised, 1);
        assert!((t.coverage_ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn display_mentions_each_requirement() {
        let mut t = CoverageTracker::new(&["1.1".into()]);
        t.record(&record(&["1.1"], Verdict::PostViolation));
        let text = t.to_string();
        assert!(text.contains("SecReq 1.1"));
        assert!(text.contains("1 violation"));
    }
}
