//! # cm-core — the generated Cloud Monitor
//!
//! The primary contribution of the DSN 2018 paper, reproduced as a Rust
//! library: a **contract-checking proxy** generated from UML/OCL design
//! models that validates a private cloud's functional and security
//! behaviour at run time.
//!
//! * [`CloudMonitor`] — the Figure 2 workflow: resolve the request against
//!   model-derived routes, check the generated pre-condition, forward,
//!   interpret the response code, check the post-condition against the
//!   pre-state snapshot;
//! * [`Mode::Enforce`] blocks violating requests; [`Mode::Observe`] turns
//!   the monitor into the paper's *test oracle*, classifying wrong
//!   acceptances (privilege escalation) and wrong denials;
//! * [`StateProber`] — materialises the OCL evaluation environment through
//!   the cloud's own REST API (`project.id->size() = 1` ⇔ "GET returned
//!   200");
//! * [`CoverageTracker`] — security-requirement coverage observation;
//! * [`TestOracle`] — the automated testing script of Section III-B,
//!   used by the mutation campaign to reproduce Section VI-D.
//!
//! ## Example
//!
//! ```
//! use cm_cloudsim::PrivateCloud;
//! use cm_core::{cinder_monitor, Mode, Verdict};
//! use cm_model::HttpMethod;
//! use cm_rest::{RestRequest, RestService};
//!
//! // Wrap the simulated private cloud with a generated monitor.
//! let mut cloud = PrivateCloud::my_project();
//! let carol = cloud.issue_token("carol", "carol-pw")?; // role: user
//! let pid = cloud.project_id();
//! let mut monitor = cinder_monitor(cloud)?.mode(Mode::Enforce);
//! monitor.authenticate("alice", "alice-pw")?;
//!
//! // carol tries to DELETE a volume: SecReq 1.4 forbids it, so the
//! // monitor blocks the request before the cloud ever sees it.
//! let outcome = monitor.process(
//!     &RestRequest::new(HttpMethod::Delete, format!("/v3/{pid}/volumes/1"))
//!         .auth_token(&carol.token),
//! );
//! assert_eq!(outcome.verdict, Verdict::PreBlocked);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod coverage;
pub mod model_probe;
pub mod monitor;
pub mod oracle;
pub mod probe;
pub mod replay;
pub mod replica;

pub use coverage::{CoverageTracker, RequirementCoverage};
pub use model_probe::ModelProber;
pub use monitor::{
    cinder_monitor, cinder_monitor_extended, expected_success_status, BrownoutConfig,
    BrownoutController, CloudMonitor, DegradedPolicy, EvalStrategy, Mode, MonitorBuildError,
    MonitorOutcome, MonitorRecord, SnapshotPolicy, Verdict, ANTI_ENTROPY_STRETCH,
    DEFAULT_EVENT_CAPACITY,
};
pub use oracle::{OracleReport, ScenarioResult, TestOracle};
pub use probe::{ProbeFault, ProbeTarget, Snapshot, StateProber, DEFAULT_IDENTITY_CAP};
pub use replay::{ReplayEngine, ReplayEntry, ReplayOutcome, ReplayReport};
pub use replica::{DriftEntry, ProjectReplica};
